//! Slice sampling helpers.

use crate::{Rng, RngCore};

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chooses one element, or `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = Rng::gen_range(&mut &mut *rng, 0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = Rng::gen_range(&mut &mut *rng, 0..self.len());
            Some(&self[i])
        }
    }
}
