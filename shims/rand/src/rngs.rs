//! Named generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard seeded generator.
///
/// Backed by xoshiro256++ rather than upstream `StdRng`'s ChaCha12 —
/// deterministic and statistically solid, but its byte stream differs
/// from real `rand`'s `StdRng` for the same seed.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *word = u64::from_le_bytes(b);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0x6A09_E667_F3BC_C909,
                0xBB67_AE85_84CA_A73B,
                0x3C6E_F372_FE94_F82B,
            ];
        }
        Self { s }
    }
}
