//! Offline shim for `rand` 0.8: the trait/method subset this workspace
//! uses. All generators are deterministic given a seed; there is no
//! OS-entropy path at all, which doubles as a guard against accidental
//! non-reproducibility in tests.

pub mod rngs;
pub mod seq;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
    // Forward the remaining methods too: falling back to the trait
    // defaults would consume the underlying stream differently than the
    // unboxed generator (e.g. ChaCha8Rng::next_u32 takes one keystream
    // word, the default takes two), breaking seed reproducibility.
    fn next_u32(&mut self) -> u32 {
        R::next_u32(self)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        R::fill_bytes(self, dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits to a uniform float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range from which a single value can be drawn uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128 + self.start as i128;
                v as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128 * span) >> 64) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64`, expanding it with SplitMix64
    /// (the same construction real `rand` uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}
