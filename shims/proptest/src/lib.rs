//! Offline shim for `proptest`: random-input property testing with the
//! upstream macro/trait surface this workspace uses, plus value-tree
//! shrinking for the numeric, tuple, vec and `prop_map` strategies.
//!
//! Each `proptest!` test derives its RNG seed from the test's module
//! path and name via FNV-1a, then runs `ProptestConfig::cases`
//! deterministic cases through [`rand_chacha::ChaCha8Rng`], so failures
//! reproduce exactly across runs and machines. When a case fails, the
//! runner greedily re-runs [`strategy::ValueTree::shrink`] candidates
//! (integers and floats walk toward their range's lower bound — floats
//! also try the truncated integral value — tuples shrink one component
//! at a time, vecs cut length then elements, `prop_map` shrinks the
//! pre-map draw and re-maps it) and re-raises the panic on the simplest
//! input that still fails, printing that input first. `hash_set` draws
//! but does not shrink (no canonical simplification order).

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub mod __rt {
    //! Re-exports used by the `proptest!` expansion, reachable through
    //! `$crate` so calling crates need no direct rand dependencies.
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Seeds a test's RNG from its fully-qualified name (FNV-1a 64).
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: `cases` deterministic generate-and-run rounds,
/// and on the first failure a greedy [`strategy::minimize`] search that
/// re-raises the panic on the simplest input that still fails (with the
/// original input's panic already printed and the probe panics silenced).
///
/// This is the engine behind the `proptest!` macro; it is public so the
/// shim can test its shrink-and-rerun behaviour directly.
pub fn run_property<S: strategy::Strategy>(
    name: &str,
    cases: u32,
    base: u64,
    strategy: &S,
    body: impl Fn(S::Value),
) {
    use rand::SeedableRng;
    use std::panic::{catch_unwind, set_hook, take_hook, AssertUnwindSafe};
    // The panic hook is process-global; concurrently failing properties
    // must serialise their silence-search-restore windows or the last
    // restorer could reinstall another search's silent hook for good.
    // (An unrelated test that fails *during* someone's shrink window
    // still fails — only its backtrace printout is suppressed.)
    static HOOK_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
    for case in 0..cases as u64 {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(base ^ case);
        let tree = strategy.new_tree(&mut rng);
        let values = strategy::ValueTree::current(&tree);
        if catch_unwind(AssertUnwindSafe(|| body(values))).is_ok() {
            continue;
        }
        // The case failed (its panic message has already printed).
        // Search for a simpler failing input with the panic hook
        // silenced, then re-run the minimal case outside catch_unwind so
        // the test fails with the real message.
        let (minimal, steps) = {
            let _guard = HOOK_GUARD.lock().unwrap_or_else(|e| e.into_inner());
            let hook = take_hook();
            set_hook(Box::new(|_| {}));
            let result = strategy::minimize(tree, |v| {
                catch_unwind(AssertUnwindSafe(|| body(v.clone()))).is_err()
            });
            set_hook(hook);
            result
        };
        eprintln!(
            "proptest: {name} case {case} (base seed {base:#x}) failed; \
             minimal failing input after {steps} shrink step(s): {minimal:?}"
        );
        body(minimal.clone());
        // A nondeterministic property can fail once and then pass on
        // every re-run (wall-clock timing, thread interleaving). Fail
        // loudly with the input instead of pretending success.
        panic!(
            "proptest: {name} case {case} failed originally but its minimal input \
             {minimal:?} passed when re-run — the property is nondeterministic"
        );
    }
}

/// Asserts a condition inside a property; panics with case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Divergence from upstream proptest: a rejected case is simply skipped
/// (early return), not redrawn, and there is no global rejection cap —
/// a property whose assumption almost never holds runs fewer effective
/// cases than `ProptestConfig::cases` without failing. Keep assumptions
/// cheap to satisfy.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                // All bound strategies as one tuple strategy, so the
                // shrinker can simplify any variable of a failing case.
                let strategy = ($(($strat),)+);
                $crate::run_property(
                    stringify!($name),
                    config.cases,
                    base,
                    &strategy,
                    |values| {
                        let ($($pat,)+) = values;
                        $body
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn passing_property_runs_all_cases_silently() {
        let mut ran = 0u32;
        let counter = std::cell::RefCell::new(&mut ran);
        crate::run_property("ok", 16, crate::seed_for("ok"), &(0u64..100,), |(v,)| {
            **counter.borrow_mut() += 1;
            assert!(v < 100);
        });
        assert_eq!(ran, 16);
    }

    #[test]
    fn failing_property_re_raises_on_the_minimal_input() {
        // The property fails for v >= 17; whatever the RNG first draws,
        // the shrinker must walk it down and re-raise at exactly 17.
        let result = std::panic::catch_unwind(|| {
            crate::run_property("demo", 8, crate::seed_for("demo"), &(0u64..1000,), |(v,)| {
                assert!(v < 17, "boom {v}");
            });
        });
        let payload = result.expect_err("property must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("boom 17"),
            "expected minimal panic, got: {msg}"
        );
    }
}
