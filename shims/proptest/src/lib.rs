//! Offline shim for `proptest`: random-input property testing with the
//! upstream macro/trait surface this workspace uses, minus shrinking.
//!
//! Each `proptest!` test derives its RNG seed from the test's module
//! path and name via FNV-1a, then runs `ProptestConfig::cases`
//! deterministic cases through [`rand_chacha::ChaCha8Rng`], so failures
//! reproduce exactly across runs and machines. On failure the offending
//! case index and seed are printed by the panic message.

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[doc(hidden)]
pub mod __rt {
    //! Re-exports used by the `proptest!` expansion, reachable through
    //! `$crate` so calling crates need no direct rand dependencies.
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Seeds a test's RNG from its fully-qualified name (FNV-1a 64).
pub fn seed_for(test_path: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Asserts a condition inside a property; panics with case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// Divergence from upstream proptest: a rejected case is simply skipped
/// (early return), not redrawn, and there is no global rejection cap —
/// a property whose assumption almost never holds runs fewer effective
/// cases than `ProptestConfig::cases` without failing. Keep assumptions
/// cheap to satisfy.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares deterministic property tests.
///
/// Supports the upstream form used in this workspace: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test]`
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases as u64 {
                    let mut rng = <$crate::__rt::ChaCha8Rng as $crate::__rt::SeedableRng>::
                        seed_from_u64(base ^ case);
                    let mut one_case = |rng: &mut $crate::__rt::ChaCha8Rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                    };
                    one_case(&mut rng);
                }
            }
        )*
    };
}
