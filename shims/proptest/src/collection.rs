//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::strategy::{NoShrink, Strategy, ValueTree};

/// Size bounds for a generated collection (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    type Tree = VecTree<S::Tree>;

    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
        let n = self.size.sample(rng);
        VecTree {
            elems: (0..n).map(|_| self.element.new_tree(rng)).collect(),
            min: self.size.min,
        }
    }
}

/// Tree produced by [`vec()`]: per-element subtrees plus the minimum
/// length the strategy may shrink down to.
#[derive(Clone)]
pub struct VecTree<T> {
    elems: Vec<T>,
    min: usize,
}

impl<T: ValueTree> ValueTree for VecTree<T> {
    type Value = Vec<T::Value>;

    fn current(&self) -> Self::Value {
        self.elems.iter().map(ValueTree::current).collect()
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Length first (the aggressive cut to the minimum, then one
        // element off the tail), then element-wise shrinks — capped at
        // two candidates per slot to bound the branching factor.
        if self.elems.len() > self.min {
            out.push(Self {
                elems: self.elems[..self.min].to_vec(),
                min: self.min,
            });
            let mut one_less = self.elems.clone();
            one_less.pop();
            if one_less.len() > self.min {
                out.push(Self {
                    elems: one_less,
                    min: self.min,
                });
            }
        }
        for (i, elem) in self.elems.iter().enumerate() {
            for candidate in elem.shrink().into_iter().take(2) {
                let mut next = self.clone();
                next.elems[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
///
/// Duplicate draws are retried a bounded number of times; if the element
/// domain is too small to reach the requested size the set is returned
/// short (upstream proptest rejects such cases similarly).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    type Tree = NoShrink<HashSet<S::Value>>;

    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
        // Sets have no canonical simplification order here; they draw but
        // do not shrink.
        NoShrink(self.draw(rng))
    }
}

impl<S> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    fn draw(&self, rng: &mut ChaCha8Rng) -> HashSet<S::Value> {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while out.len() < n && attempts < n * 50 + 100 {
            out.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            out.len() >= self.size.min,
            "hash_set strategy could not reach minimum size {} (domain too small?)",
            self.size.min
        );
        out
    }
}
