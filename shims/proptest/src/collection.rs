//! Collection strategies (`vec`, `hash_set`).

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::strategy::{Strategy, ValueTree};

/// Size bounds for a generated collection (inclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut ChaCha8Rng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    type Tree = VecTree<S::Tree>;

    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
        let n = self.size.sample(rng);
        VecTree {
            elems: (0..n).map(|_| self.element.new_tree(rng)).collect(),
            min: self.size.min,
        }
    }
}

/// Tree produced by [`vec()`]: per-element subtrees plus the minimum
/// length the strategy may shrink down to.
#[derive(Clone)]
pub struct VecTree<T> {
    elems: Vec<T>,
    min: usize,
}

impl<T: ValueTree> ValueTree for VecTree<T> {
    type Value = Vec<T::Value>;

    fn current(&self) -> Self::Value {
        self.elems.iter().map(ValueTree::current).collect()
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Length first (the aggressive cut to the minimum, then one
        // element off the tail), then element-wise shrinks — capped at
        // two candidates per slot to bound the branching factor.
        if self.elems.len() > self.min {
            out.push(Self {
                elems: self.elems[..self.min].to_vec(),
                min: self.min,
            });
            let mut one_less = self.elems.clone();
            one_less.pop();
            if one_less.len() > self.min {
                out.push(Self {
                    elems: one_less,
                    min: self.min,
                });
            }
        }
        for (i, elem) in self.elems.iter().enumerate() {
            for candidate in elem.shrink().into_iter().take(2) {
                let mut next = self.clone();
                next.elems[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
///
/// Duplicate draws are retried a bounded number of times; if the element
/// domain is too small to reach the requested size the set is returned
/// short (upstream proptest rejects such cases similarly).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy produced by [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    type Tree = HashSetTree<S::Tree>;

    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
        let n = self.size.sample(rng);
        let mut elems: Vec<S::Tree> = Vec::with_capacity(n);
        let mut seen: HashSet<S::Value> = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        while seen.len() < n && attempts < n * 50 + 100 {
            let tree = self.element.new_tree(rng);
            if seen.insert(tree.current()) {
                elems.push(tree);
            }
            attempts += 1;
        }
        assert!(
            seen.len() >= self.size.min,
            "hash_set strategy could not reach minimum size {} (domain too small?)",
            self.size.min
        );
        HashSetTree {
            elems,
            min: self.size.min,
        }
    }
}

/// Tree produced by [`hash_set`]: per-element subtrees (distinct at draw
/// time) plus the minimum size the strategy may shrink down to. Mirrors
/// [`VecTree`], with one extra wrinkle: element-wise shrinks can make
/// two subtrees collide on the same value, so every candidate is checked
/// against the minimum *after* deduplication.
#[derive(Clone)]
pub struct HashSetTree<T> {
    elems: Vec<T>,
    min: usize,
}

impl<T> ValueTree for HashSetTree<T>
where
    T: ValueTree,
    T::Value: Eq + Hash,
{
    type Value = HashSet<T::Value>;

    fn current(&self) -> Self::Value {
        self.elems.iter().map(ValueTree::current).collect()
    }

    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        // Size first (the aggressive cut to the minimum, then one
        // element off the tail), then element-wise shrinks — capped at
        // two candidates per slot to bound the branching factor.
        if self.elems.len() > self.min {
            out.push(Self {
                elems: self.elems[..self.min].to_vec(),
                min: self.min,
            });
            let mut one_less = self.elems.clone();
            one_less.pop();
            if one_less.len() > self.min {
                out.push(Self {
                    elems: one_less,
                    min: self.min,
                });
            }
        }
        for (i, elem) in self.elems.iter().enumerate() {
            for candidate in elem.shrink().into_iter().take(2) {
                let mut next = self.clone();
                next.elems[i] = candidate;
                out.push(next);
            }
        }
        out.retain(|t| t.current().len() >= t.min);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::minimize;
    use rand::SeedableRng;

    #[test]
    fn hash_set_draws_distinct_elements_within_size() {
        let strat = hash_set(0i64..1000, 3..=8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..50 {
            let set = strat.new_tree(&mut rng).current();
            assert!((3..=8).contains(&set.len()));
        }
    }

    #[test]
    fn hash_set_minimizes_to_the_boundary_element() {
        // Fails whenever the set contains an element >= 17: the shrinker
        // must cut the set down and walk the offending element to 17.
        let strat = hash_set(0i64..1000, 1..=8);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tree = loop {
            let t = strat.new_tree(&mut rng);
            if t.current().iter().any(|&v| v >= 34) {
                break t;
            }
        };
        let (min, steps) = minimize(tree, |set| set.iter().any(|&v| v >= 17));
        assert!(steps > 0, "the draw must shrink at least once");
        // The offending element lands near the boundary (the two-candidate
        // cap per slot can stop it a step short of exactly 17); everything
        // else shrinks to the lower bound and dedups away.
        assert!(
            min.iter().filter(|&&v| (17..34).contains(&v)).count() == 1,
            "one near-boundary element must survive: {min:?}"
        );
        assert!(
            min.iter().all(|&v| v == 0 || (17..34).contains(&v)),
            "non-failing elements must shrink to the lower bound: {min:?}"
        );
    }

    #[test]
    fn hash_set_shrink_never_dedups_below_min_size() {
        // Element-wise shrinks can collide two slots onto one value; no
        // candidate may present fewer distinct elements than the minimum.
        let strat = hash_set(0i64..6, 3..=5);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..50 {
            let tree = strat.new_tree(&mut rng);
            let mut frontier = vec![tree];
            for _ in 0..3 {
                frontier = frontier.iter().flat_map(ValueTree::shrink).collect();
                for t in &frontier {
                    assert!(
                        t.current().len() >= 3,
                        "shrunk below min: {:?}",
                        t.current()
                    );
                }
            }
        }
    }
}
