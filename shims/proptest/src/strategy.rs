//! Value-generation strategies, with value-tree shrinking.

use std::sync::Arc;

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A generated value plus the recipe to simplify it.
///
/// Unlike upstream proptest's persistent trees, a tree here is just the
/// drawn value and whatever context shrinking needs (the range's lower
/// bound, the per-element subtrees of a vec, the mapping closure of a
/// `prop_map`). [`minimize`] walks [`ValueTree::shrink`] candidates when
/// a case fails, so failures are reported at (close to) their minimal
/// reproduction instead of whatever the RNG drew first. Carrying the
/// tree — not just the value — is what lets `prop_map` shrink: the
/// *input* tree simplifies and the output is re-mapped, which a
/// value-only API cannot do because the mapping is not invertible.
pub trait ValueTree: Clone {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// The value this tree currently represents.
    fn current(&self) -> Self::Value;

    /// Simpler candidate trees, most aggressive first. Candidates must
    /// stay inside the originating strategy's domain. The default is no
    /// shrinking.
    fn shrink(&self) -> Vec<Self>
    where
        Self: Sized,
    {
        Vec::new()
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// The tree type carrying shrink context for drawn values.
    type Tree: ValueTree<Value = Self::Value>;

    /// Draws one value together with its shrink context.
    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree;

    /// Draws one value (discarding shrink context).
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
        self.new_tree(rng).current()
    }

    /// Maps generated values through `f`. Shrinking simplifies the inner
    /// strategy's draw and re-maps it.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
        O: Clone + std::fmt::Debug,
    {
        Map {
            inner: self,
            f: Arc::new(f),
        }
    }
}

/// Greedily walks [`ValueTree::shrink`] candidates while `still_fails`
/// keeps failing, returning the simplest failing value found and the
/// number of accepted shrink steps. Doubly bounded — by step count and
/// by wall-clock time — so neither a pathological shrink cycle nor an
/// expensive property body (each probe re-runs the whole case) can turn
/// one failing test into an open-ended search.
pub fn minimize<T: ValueTree>(
    start: T,
    mut still_fails: impl FnMut(&T::Value) -> bool,
) -> (T::Value, usize) {
    const MAX_STEPS: usize = 512;
    const MAX_SEARCH: std::time::Duration = std::time::Duration::from_secs(30);
    let started = std::time::Instant::now();
    let mut current = start;
    let mut steps = 0;
    'search: while steps < MAX_STEPS && started.elapsed() < MAX_SEARCH {
        for candidate in current.shrink() {
            if started.elapsed() >= MAX_SEARCH {
                break 'search;
            }
            if still_fails(&candidate.current()) {
                current = candidate;
                steps += 1;
                continue 'search;
            }
        }
        break;
    }
    (current.current(), steps)
}

/// A tree with no shrink candidates ([`Just`]).
#[derive(Debug, Clone)]
pub struct NoShrink<T>(pub T);

impl<T: Clone + std::fmt::Debug> ValueTree for NoShrink<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Arc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

/// Tree produced by [`Strategy::prop_map`]: the inner draw's tree plus
/// the (shared) mapping closure.
pub struct MapTree<T, F> {
    inner: T,
    f: Arc<F>,
}

impl<T: Clone, F> Clone for MapTree<T, F> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            f: Arc::clone(&self.f),
        }
    }
}

impl<T, O, F> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> O,
    O: Clone + std::fmt::Debug,
{
    type Value = O;

    fn current(&self) -> O {
        (self.f)(self.inner.current())
    }

    fn shrink(&self) -> Vec<Self> {
        self.inner
            .shrink()
            .into_iter()
            .map(|inner| Self {
                inner,
                f: Arc::clone(&self.f),
            })
            .collect()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Clone + std::fmt::Debug,
{
    type Value = O;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
        MapTree {
            inner: self.inner.new_tree(rng),
            f: Arc::clone(&self.f),
        }
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    type Tree = NoShrink<T>;

    fn new_tree(&self, _rng: &mut ChaCha8Rng) -> NoShrink<T> {
        NoShrink(self.0.clone())
    }
}

/// Tree of the numeric range strategies: the drawn value plus the
/// range's lower bound it shrinks toward.
#[derive(Debug, Clone)]
pub struct RangeTree<T> {
    lo: T,
    value: T,
}

impl<T: ShrinkTowards + Clone + std::fmt::Debug> ValueTree for RangeTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }

    fn shrink(&self) -> Vec<Self> {
        T::shrink_towards(self.lo.clone(), self.value.clone())
            .into_iter()
            .map(|value| Self {
                lo: self.lo.clone(),
                value,
            })
            .collect()
    }
}

/// Per-type "shrink toward a lower bound" rule backing the numeric range
/// strategies.
pub trait ShrinkTowards: Sized {
    /// Simpler in-domain candidates for `value`, most aggressive first.
    fn shrink_towards(lo: Self, value: Self) -> Vec<Self>;
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            type Tree = RangeTree<$t>;
            fn new_tree(&self, rng: &mut ChaCha8Rng) -> RangeTree<$t> {
                RangeTree { lo: self.start, value: rng.gen_range(self.clone()) }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            type Tree = RangeTree<$t>;
            fn new_tree(&self, rng: &mut ChaCha8Rng) -> RangeTree<$t> {
                RangeTree { lo: *self.start(), value: rng.gen_range(self.clone()) }
            }
        }
    )*};
}

// Integer ranges shrink toward their lower bound: the bound itself (the
// most aggressive jump), the midpoint, and one step down. Assumes the
// span fits the type, which holds for every range strategy in this
// workspace.
macro_rules! int_shrink_towards {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(lo: $t, value: $t) -> Vec<$t> {
                if value <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (value - lo) / 2;
                if mid != lo && mid != value {
                    out.push(mid);
                }
                if value - 1 != mid && value - 1 != lo {
                    out.push(value - 1);
                }
                out
            }
        }
    )*};
}

int_shrink_towards!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
numeric_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// Float ranges shrink toward their lower bound: the bound, the bisection
// midpoint, and the truncation toward an integral value (minimal inputs
// like `17.0` read better than `17.38412…`). NaN never shrinks. The
// bisection chain terminates because each accepted step at least halves
// the distance to the bound and `minimize` caps steps anyway.
macro_rules! float_shrink_towards {
    ($($t:ty),*) => {$(
        impl ShrinkTowards for $t {
            fn shrink_towards(lo: $t, value: $t) -> Vec<$t> {
                if value.is_nan() || value <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (value - lo) / 2.0;
                if mid > lo && mid < value {
                    out.push(mid);
                }
                let trunc = value.trunc();
                if trunc > lo && trunc < value && trunc != mid {
                    out.push(trunc);
                }
                out
            }
        }
    )*};
}

float_shrink_towards!(f32, f64);
numeric_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Tree = ($($s::Tree,)+);
            fn new_tree(&self, rng: &mut ChaCha8Rng) -> Self::Tree {
                ($(self.$idx.new_tree(rng),)+)
            }
        }
        impl<$($s: ValueTree),+> ValueTree for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn current(&self) -> Self::Value {
                ($(self.$idx.current(),)+)
            }
            fn shrink(&self) -> Vec<Self> {
                // One component shrunk at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink() {
                        let mut next = self.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tree_of<S: Strategy>(strat: &S, value: S::Value) -> S::Tree
    where
        S::Value: PartialEq,
    {
        // Draw trees until one carries the wanted value (test helper for
        // deterministic shrink assertions on small domains).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let t = strat.new_tree(&mut rng);
            if t.current() == value {
                return t;
            }
        }
        panic!("value never drawn");
    }

    #[test]
    fn integer_shrink_stays_in_domain_and_decreases() {
        let strat = 3u64..100;
        for v in [4u64, 50, 99] {
            let tree = tree_of(&strat, v);
            for c in tree.shrink() {
                let cv = c.current();
                assert!(cv >= 3 && cv < v, "candidate {cv} out of order for {v}");
            }
        }
        assert!(
            tree_of(&strat, 3).shrink().is_empty(),
            "lower bound has no shrinks"
        );
    }

    #[test]
    fn minimize_finds_the_boundary() {
        // Property "fails for v >= 17" over 0..1000 must minimise to 17.
        let tree = tree_of(&(0usize..1000), 930);
        let (min, steps) = minimize(tree, |&v| v >= 17);
        assert_eq!(min, 17);
        assert!(steps > 0);
    }

    #[test]
    fn tuple_minimize_shrinks_each_component() {
        let strat = (0i64..100, 1usize..=64);
        // Fails whenever a >= 10 and b >= 5: minimal failing is (10, 5).
        let tree = tree_of(&strat, (73, 40));
        let (min, _) = minimize(tree, |&(a, b)| a >= 10 && b >= 5);
        assert_eq!(min, (10, 5));
    }

    #[test]
    fn minimize_keeps_unshrinkable_failures() {
        let tree = tree_of(&(0u32..10), 7);
        let (min, steps) = minimize(tree, |&v| v == 7);
        assert_eq!((min, steps), (7, 0));
    }

    #[test]
    fn float_minimize_converges_to_the_boundary() {
        // Fails for v >= 17.0 over 0.0..1000.0. Greedy bisection (no
        // complicate phase) guarantees landing inside the factor-2
        // bracket [boundary, 2·boundary), and truncation makes the
        // reported minimum integral.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let tree = (0.0f64..1000.0).new_tree(&mut rng);
        assert!(tree.current() >= 34.0, "draw large enough for the test");
        let (min, steps) = minimize(tree, |&v| v >= 17.0);
        assert!(steps > 0);
        assert!((17.0..34.0).contains(&min), "minimal input {min}");
        assert_eq!(min.fract(), 0.0, "trunc candidate makes it integral");
    }

    #[test]
    fn float_shrink_stays_in_domain_and_never_shrinks_nan() {
        for c in <f64 as ShrinkTowards>::shrink_towards(1.5, 900.25) {
            assert!((1.5..900.25).contains(&c));
        }
        assert!(<f64 as ShrinkTowards>::shrink_towards(0.0, f64::NAN).is_empty());
    }

    #[test]
    fn prop_map_shrinks_through_the_mapping() {
        // Even-number strategy via prop_map: minimal failing even >= 34
        // is 34 — reachable only by shrinking the pre-map draw.
        let strat = (0u32..1000).prop_map(|v| v * 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let tree = strat.new_tree(&mut rng);
        assert!(tree.current() >= 34);
        let (min, steps) = minimize(tree, |&v| v >= 34);
        assert_eq!(min, 34);
        assert!(steps > 0);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u64..1000, -50i64..50);
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
