//! Value-generation strategies, with minimal value-tree shrinking.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no persistent value tree —
/// `generate` produces a value directly from the runner's RNG, and
/// [`Strategy::shrink`] proposes simpler *candidate* values on demand.
/// The `proptest!` macro drives [`minimize`] over those candidates when a
/// case fails, so integer-driven failures are reported at (close to)
/// their minimal reproduction instead of whatever the RNG drew first.
///
/// Values must be `Clone` (the failing case is re-run per candidate) and
/// `Debug` (the minimal input is printed) — every strategy in this
/// workspace already satisfies both.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Simpler candidate replacements for `value`, most aggressive
    /// first. Candidates must stay inside the strategy's domain. The
    /// default is no shrinking (strategies whose simplification order is
    /// unclear — `prop_map`, `Just` — keep the original value).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
        O: Clone + std::fmt::Debug,
    {
        Map { inner: self, f }
    }
}

/// Greedily walks [`Strategy::shrink`] candidates while `still_fails`
/// keeps failing, returning the simplest failing value found and the
/// number of accepted shrink steps. Doubly bounded — by step count and
/// by wall-clock time — so neither a pathological shrink cycle nor an
/// expensive property body (each probe re-runs the whole case) can turn
/// one failing test into an open-ended search.
pub fn minimize<S: Strategy>(
    strategy: &S,
    mut current: S::Value,
    mut still_fails: impl FnMut(&S::Value) -> bool,
) -> (S::Value, usize) {
    const MAX_STEPS: usize = 512;
    const MAX_SEARCH: std::time::Duration = std::time::Duration::from_secs(30);
    let started = std::time::Instant::now();
    let mut steps = 0;
    'search: while steps < MAX_STEPS && started.elapsed() < MAX_SEARCH {
        for candidate in strategy.shrink(&current) {
            if started.elapsed() >= MAX_SEARCH {
                break 'search;
            }
            if still_fails(&candidate) {
                current = candidate;
                steps += 1;
                continue 'search;
            }
        }
        break;
    }
    (current, steps)
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: Clone + std::fmt::Debug,
{
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

// Integer ranges shrink toward their lower bound: the bound itself (the
// most aggressive jump), the midpoint, and one step down. Assumes the
// span fits the type, which holds for every range strategy in this
// workspace.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_towards(self.start, *value)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_towards(*self.start(), *value)
            }
        }

        impl ShrinkTowards for $t {
            fn shrink_towards(lo: $t, value: $t) -> Vec<$t> {
                if value <= lo {
                    return Vec::new();
                }
                let mut out = vec![lo];
                let mid = lo + (value - lo) / 2;
                if mid != lo && mid != value {
                    out.push(mid);
                }
                if value - 1 != mid && value - 1 != lo {
                    out.push(value - 1);
                }
                out
            }
        }
    )*};
}

/// Per-type "shrink toward a lower bound" rule backing the integer range
/// strategies.
trait ShrinkTowards: Sized {
    fn shrink_towards(lo: Self, value: Self) -> Vec<Self>;
}

fn shrink_towards<T: ShrinkTowards>(lo: T, value: T) -> Vec<T> {
    T::shrink_towards(lo, value)
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

// Float ranges generate but do not shrink (no obviously-canonical
// simplification order for continuous draws).
macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component shrunk at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn integer_shrink_stays_in_domain_and_decreases() {
        let strat = 3u64..100;
        for v in [4u64, 50, 99] {
            for c in strat.shrink(&v) {
                assert!(c >= 3 && c < v, "candidate {c} out of order for {v}");
            }
        }
        assert!(strat.shrink(&3).is_empty(), "lower bound has no shrinks");
    }

    #[test]
    fn minimize_finds_the_boundary() {
        // Property "fails for v >= 17" over 0..1000 must minimise to 17.
        let strat = 0usize..1000;
        let (min, steps) = minimize(&strat, 930, |&v| v >= 17);
        assert_eq!(min, 17);
        assert!(steps > 0);
    }

    #[test]
    fn tuple_minimize_shrinks_each_component() {
        let strat = (0i64..100, 1usize..=64);
        // Fails whenever a >= 10 and b >= 5: minimal failing is (10, 5).
        let (min, _) = minimize(&strat, (73, 40), |&(a, b)| a >= 10 && b >= 5);
        assert_eq!(min, (10, 5));
    }

    #[test]
    fn minimize_keeps_unshrinkable_failures() {
        let strat = 0u32..10;
        let (min, steps) = minimize(&strat, 7, |&v| v == 7);
        assert_eq!((min, steps), (7, 0));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = (0u64..1000, -50i64..50);
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
