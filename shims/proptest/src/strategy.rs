//! Value-generation strategies.

use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree and no shrinking —
/// `generate` produces a value directly from the runner's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut ChaCha8Rng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}
