//! Runner configuration.

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// Case count from the `PROPTEST_CASES` environment variable, falling
    /// back to 64 — smaller than upstream's 256 to keep the offline test
    /// suite fast locally. CI exports `PROPTEST_CASES=256` so the hot
    /// invariants get upstream-strength coverage there; raise per-block
    /// via `#![proptest_config(..)]` when a property needs more.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(64);
        Self { cases }
    }
}
