//! Runner configuration.

/// Controls how many cases each property runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the offline test
    /// suite fast; raise per-block via `#![proptest_config(..)]`.
    fn default() -> Self {
        Self { cases: 64 }
    }
}
