//! Offline shim for `crossbeam`: only the `channel` module, backed by
//! `std::sync::mpsc`. The workspace uses unbounded channels exclusively,
//! where the mpsc semantics (non-blocking send, FIFO per sender pair)
//! match crossbeam's.

pub mod channel {
    //! MPSC channels with the `crossbeam::channel` API surface used by
    //! this workspace: `unbounded`, cloneable [`Sender`], [`Receiver`]
    //! with `recv`/`try_recv`/`recv_timeout`/`iter`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (never reported by unbounded channels).
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send; unbounded channels are never `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over messages until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}
