//! Offline shim for `crossbeam`: the `channel` module backed by
//! `std::sync::mpsc`, `thread::scope` backed by `std::thread::scope`,
//! and `utils::CachePadded`. The workspace uses unbounded channels
//! exclusively, where the mpsc semantics (non-blocking send, FIFO per
//! sender pair) match crossbeam's.

pub mod channel {
    //! MPSC channels with the `crossbeam::channel` API surface used by
    //! this workspace: `unbounded`, cloneable [`Sender`], [`Receiver`]
    //! with `recv`/`try_recv`/`recv_timeout`/`iter`.

    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full (never reported by unbounded channels).
        Full(T),
        /// The receiving side has disconnected.
        Disconnected(T),
    }

    /// Sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Non-blocking send; unbounded channels are never `Full`.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| TrySendError::Disconnected(v))
        }
    }

    /// Receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Iterates over messages until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API surface used by
    //! this workspace: [`scope`] hands the closure a [`Scope`] whose
    //! `spawn` passes the scope back into the child (so children can
    //! spawn siblings), handles expose `join() -> thread::Result<T>`,
    //! and a panic in an *unjoined* child surfaces as `Err` from
    //! [`scope`] instead of unwinding through the caller. Backed by
    //! `std::thread::scope`.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub use std::thread::Result;

    /// A scope handle: spawns threads that may borrow from the
    /// environment (`'env`) and are all joined before [`scope`] returns.
    #[derive(Clone, Copy, Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope itself so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Handle to a scoped thread; dropping it detaches (the scope still
    /// joins the thread before returning).
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result; `Err` carries
        /// the panic payload if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a [`Scope`]; returns once every spawned thread has
    /// finished. `Ok(r)` carries the closure's result; `Err` carries a
    /// panic payload when the closure or an unjoined child panicked
    /// (children whose handles were `join`ed report their panics through
    /// `join` instead, and do not fail the scope).
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub mod utils {
    //! Miscellany from `crossbeam-utils` used by this workspace.

    /// Pads and aligns `T` to a 64-byte cache line so adjacent values in
    /// an array never share a line (the false-sharing guard
    /// `crossbeam_utils::CachePadded` provides; 64 bytes covers x86-64
    /// and mainstream aarch64 cores).
    #[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
    #[repr(align(64))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            Self { value }
        }

        /// Unwraps the padded value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            Self::new(value)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_propagates_results_and_borrows_env() {
        let data = [1u64, 2, 3, 4];
        let total = thread::scope(|s| {
            let (left, right) = data.split_at(2);
            let a = s.spawn(|_| left.iter().sum::<u64>());
            let b = s.spawn(|_| right.iter().sum::<u64>());
            a.join().unwrap() + b.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn joined_child_panic_reaches_join_not_scope() {
        let result = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        });
        // The scope itself succeeds; the panic is the join's result.
        let join_result = result.unwrap();
        let payload = join_result.unwrap_err();
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"boom"));
    }

    #[test]
    fn unjoined_child_panic_fails_the_scope() {
        let result = thread::scope(|s| {
            s.spawn(|_| panic!("lost"));
            42u32
        });
        assert!(result.is_err());
    }

    #[test]
    fn children_can_spawn_siblings_through_the_scope_arg() {
        let n = thread::scope(|s| {
            let outer = s.spawn(|s| {
                let inner = s.spawn(|_| 21u32);
                inner.join().unwrap() * 2
            });
            outer.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn channels_cross_scoped_threads() {
        let (tx, rx) = channel::unbounded();
        let received = thread::scope(|s| {
            let producer = tx.clone();
            s.spawn(move |_| {
                for i in 0..10u32 {
                    producer.send(i).unwrap();
                }
            });
            drop(tx);
            let consumer = s.spawn(move |_| rx.iter().collect::<Vec<_>>());
            consumer.join().unwrap()
        })
        .unwrap();
        assert_eq!(received, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cache_padded_is_line_aligned_and_transparent() {
        use utils::CachePadded;
        assert_eq!(std::mem::align_of::<CachePadded<u64>>(), 64);
        let mut cell = CachePadded::new(7u64);
        *cell += 1;
        assert_eq!(*cell, 8);
        assert_eq!(cell.into_inner(), 8);
        let padded: Vec<CachePadded<u64>> = (0..4).map(CachePadded::from).collect();
        assert_eq!(*padded[3], 3);
    }
}
