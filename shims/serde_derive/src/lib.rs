//! Offline shim for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` on its data types but never serializes
//! anything, so both derives expand to nothing. The `serde` helper
//! attribute (e.g. `#[serde(transparent)]`) is accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
