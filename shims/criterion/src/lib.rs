//! Offline shim for `criterion`: enough of the API to compile and run
//! the workspace's benches. Each benchmark runs one discarded warm-up
//! batch followed by `sample_size` timed batches and reports
//! mean/median/stddev/min — no adaptive warm-up tuning, outlier analysis,
//! or HTML reports.
//!
//! Every benchmark additionally emits one machine-readable JSON line of
//! the form
//! `{"benchmark":…,"mean_ns":…,"median_ns":…,"stddev_ns":…,"min_ns":…,"samples":…}`
//! on stdout; set `BENCH_JSON=path/to/BENCH_<suite>.json` to also append
//! the lines to a file, so bench regressions can be diffed run-over-run.
//!
//! Set `BENCH_SMOKE=1` to cap every benchmark at 3 timed samples: CI runs
//! the suites in this mode on pull requests — enough to keep the benches
//! compiling, running and emitting comparable JSON without burning
//! minutes on statistical confidence.

use std::fmt::Display;
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declares the per-iteration throughput (recorded, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; provided for API parity).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

/// Conversion into a printable benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.text
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Per-iteration work declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Times `routine`, recording one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.samples_ns.push(start.elapsed().as_nanos());
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Smoke mode (CI on pull requests): a handful of samples proves the
    // bench runs and produces a JSON line without the full batch count.
    let samples = if std::env::var_os("BENCH_SMOKE").is_some() {
        samples.min(3)
    } else {
        samples
    };
    let mut b = Bencher::default();
    // Warm-up sample, discarded (caches, branch predictors, allocator).
    f(&mut b);
    b.samples_ns.clear();
    for _ in 0..samples.max(1) {
        f(&mut b);
    }
    let stats = Stats::of(&mut b.samples_ns);
    println!(
        "{label:<60} mean {:>10} ns  median {:>10} ns  min {:>10} ns  stddev {:>8.0} ns  ({} samples)",
        stats.mean, stats.median, stats.min, stats.stddev, stats.samples
    );
    let json = stats.json_line(label);
    println!("{json}");
    if let Ok(path) = std::env::var("BENCH_JSON") {
        let path = std::path::Path::new(&path);
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            Ok(mut file) => {
                let _ = writeln!(file, "{json}");
            }
            Err(e) => eprintln!("BENCH_JSON: cannot append to {}: {e}", path.display()),
        }
    }
}

/// Summary statistics over one benchmark's timed samples.
#[derive(Debug, Clone, Copy)]
struct Stats {
    mean: u128,
    median: u128,
    min: u128,
    stddev: f64,
    samples: usize,
}

impl Stats {
    fn of(samples_ns: &mut [u128]) -> Self {
        samples_ns.sort_unstable();
        let n = samples_ns.len().max(1);
        let mean = samples_ns.iter().sum::<u128>() / n as u128;
        let median = if samples_ns.is_empty() {
            0
        } else if n % 2 == 1 {
            samples_ns[n / 2]
        } else {
            (samples_ns[n / 2 - 1] + samples_ns[n / 2]) / 2
        };
        let min = samples_ns.first().copied().unwrap_or(0);
        let var = samples_ns
            .iter()
            .map(|&x| {
                let d = x as f64 - mean as f64;
                d * d
            })
            .sum::<f64>()
            / n as f64;
        Self {
            mean,
            median,
            min,
            stddev: var.sqrt(),
            samples: samples_ns.len(),
        }
    }

    fn json_line(&self, label: &str) -> String {
        let escaped: String = label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                _ => vec![c],
            })
            .collect();
        format!(
            "{{\"benchmark\":\"{escaped}\",\"mean_ns\":{},\"median_ns\":{},\"stddev_ns\":{:.1},\"min_ns\":{},\"samples\":{}}}",
            self.mean, self.median, self.stddev, self.min, self.samples
        )
    }
}

/// Bundles benchmark functions into one runner, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
