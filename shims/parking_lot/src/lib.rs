//! Offline shim for `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, backed by `std::sync`. Poison errors are swallowed
//! by taking the inner guard, matching parking_lot's behaviour of not
//! tracking poisoning at all.

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Non-poisoning mutual-exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}
