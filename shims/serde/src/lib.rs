//! Offline shim for `serde`: marker traits and re-exported no-op derive
//! macros. The workspace only ever derives these traits — nothing is
//! serialized — so empty traits and empty derive expansions suffice.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
