//! Offline shim for `rand_chacha`: a genuine ChaCha core with 8 rounds
//! behind the [`rand::RngCore`]/[`rand::SeedableRng`] shim traits.
//! Deterministic for a given seed; not guaranteed bit-identical to the
//! upstream crate's stream layout.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds as a deterministic PRNG.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha input block: constants, 8 key words, counter, 3 nonce words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index in `block`; 16 means exhausted.
    idx: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: four column rounds then four diagonal rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter across state words 12 and 13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.idx + 2 > 16 {
            self.refill();
        }
        let lo = self.block[self.idx] as u64;
        let hi = self.block[self.idx + 1] as u64;
        self.idx += 2;
        lo | (hi << 32)
    }

    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.block[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..8 {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            state[4 + i] = u32::from_le_bytes(b);
        }
        // Counter and nonce start at zero.
        Self {
            state,
            block: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_ne!(first, second);
    }
}
