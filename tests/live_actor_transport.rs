//! The same negotiation engines on the live threaded actor transport:
//! real concurrency, wall-clock timers, process-local "radio".

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use qosc_actors::{Actor, ActorCtx, ActorSystem, Directory};
use qosc_core::{
    decode_timer, Action, Msg, NegoEvent, OrganizerConfig, OrganizerEngine, Pid, ProviderConfig,
    ProviderEngine, TimerKind,
};
use qosc_netsim::SimTime;
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef, TaskId};

#[derive(Clone)]
enum LiveMsg {
    Proto { from: Pid, msg: Msg },
    Timer(u64),
    Start(ServiceDef),
}

struct LiveNode {
    id: Pid,
    organizer: OrganizerEngine,
    provider: ProviderEngine,
    dir: Directory<LiveMsg>,
    epoch: Instant,
    events: Sender<(Pid, NegoEvent)>,
}

impl LiveNode {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&mut self, ctx: &ActorCtx<LiveMsg>, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    if matches!(msg, Msg::CallForProposals { .. }) {
                        let local = self.provider.on_message(self.now(), self.id, &msg);
                        self.apply(ctx, local);
                    }
                    self.dir.broadcast(
                        self.id,
                        &LiveMsg::Proto {
                            from: self.id,
                            msg,
                        },
                    );
                }
                Action::Send { to, msg } => {
                    self.dir
                        .send(self.id, to, LiveMsg::Proto { from: self.id, msg });
                }
                Action::Timer { delay, token } => {
                    let addr = ctx.myself();
                    let d = Duration::from_micros(delay.as_micros());
                    std::thread::spawn(move || {
                        std::thread::sleep(d);
                        let _ = addr.send(LiveMsg::Timer(token));
                    });
                }
                Action::Event(e) => {
                    let _ = self.events.send((self.id, e));
                }
            }
        }
    }
}

impl Actor for LiveNode {
    type Msg = LiveMsg;
    fn handle(&mut self, ctx: &ActorCtx<LiveMsg>, msg: LiveMsg) {
        let now = self.now();
        match msg {
            LiveMsg::Start(service) => {
                let (_, actions) = self
                    .organizer
                    .start_service(now, &service)
                    .expect("valid service");
                self.apply(ctx, actions);
            }
            LiveMsg::Proto { from, msg } => {
                let actions = match &msg {
                    Msg::CallForProposals { .. } | Msg::Award { .. } | Msg::Release { .. } => {
                        self.provider.on_message(now, from, &msg)
                    }
                    _ => self.organizer.on_message(now, from, &msg),
                };
                self.apply(ctx, actions);
            }
            LiveMsg::Timer(token) => {
                let Some((nego, kind)) = decode_timer(token) else {
                    return;
                };
                let actions = match kind {
                    TimerKind::ProposalDeadline
                    | TimerKind::AwardDeadline
                    | TimerKind::HeartbeatCheck => self.organizer.on_timer(now, nego, kind),
                    TimerKind::HeartbeatSend | TimerKind::HoldExpiry => {
                        self.provider.on_timer(now, nego, kind)
                    }
                    _ => Vec::new(),
                };
                self.apply(ctx, actions);
            }
        }
    }
}

fn spawn_cluster(
    cpus: &[f64],
) -> (ActorSystem, Directory<LiveMsg>, Receiver<(Pid, NegoEvent)>) {
    let spec = catalog::av_spec();
    let mut system = ActorSystem::new();
    let dir: Directory<LiveMsg> = Directory::new();
    let (tx, rx) = unbounded();
    let epoch = Instant::now();
    for (id, cpu) in cpus.iter().enumerate() {
        let id = id as u32;
        let mut provider = ProviderEngine::new(
            id,
            ResourceVector::new(*cpu, 256.0, 4000.0, 40.0, 4000.0),
            ProviderConfig::default(),
        );
        provider.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
        let node = LiveNode {
            id,
            organizer: OrganizerEngine::new(id, OrganizerConfig::default()),
            provider,
            dir: dir.clone(),
            epoch,
            events: tx.clone(),
        };
        let addr = system.spawn(format!("node-{id}"), node);
        dir.register(id, addr);
    }
    (system, dir, rx)
}

fn surveillance_service(tasks: usize) -> ServiceDef {
    ServiceDef::new(
        "svc",
        (0..tasks)
            .map(|i| TaskDef {
                name: format!("t{i}"),
                spec: catalog::av_spec(),
                request: catalog::surveillance_request(),
                input_bytes: 50_000,
                output_bytes: 5_000,
            })
            .collect(),
    )
}

#[test]
fn live_negotiation_forms_a_coalition() {
    let (mut system, dir, rx) = spawn_cluster(&[12.0, 60.0, 500.0]);
    dir.send(0, 0, LiveMsg::Start(surveillance_service(1)));
    let deadline = Duration::from_secs(15);
    let mut formed = None;
    let start = Instant::now();
    while start.elapsed() < deadline {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok((_, NegoEvent::Formed { metrics, .. })) => {
                formed = Some(metrics);
                break;
            }
            Ok(_) => {}
            Err(_) => {}
        }
    }
    let metrics = formed.expect("live coalition should form within 15 s");
    // Node 0 (12 MIPS) cannot serve preferred quality (~18.25 MIPS); one
    // of the capable remote nodes must win at distance 0 (they tie, and
    // the lowest id is selected).
    let winner = metrics.outcomes[&TaskId(0)].node;
    assert!(winner == 1 || winner == 2, "winner {winner}");
    assert_eq!(metrics.outcomes[&TaskId(0)].distance, 0.0);
    system.shutdown();
}

#[test]
fn live_partial_connectivity_limits_candidates() {
    let (mut system, dir, rx) = spawn_cluster(&[12.0, 60.0, 500.0]);
    // Node 0 can only reach node 1 (and itself — local proposals travel
    // the self-send path): the strong node 2 is "out of range".
    dir.set_reachable(0, vec![0, 1]);
    dir.set_reachable(1, vec![0, 1]);
    dir.set_reachable(2, vec![2]);
    dir.send(0, 0, LiveMsg::Start(surveillance_service(1)));
    let deadline = Duration::from_secs(15);
    let mut metrics = None;
    let start = Instant::now();
    while start.elapsed() < deadline {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok((_, NegoEvent::Formed { metrics: m, .. })) => {
                metrics = Some(m);
                break;
            }
            _ => {}
        }
    }
    let m = metrics.expect("coalition should still form via node 1");
    let winner = m.outcomes[&TaskId(0)].node;
    assert_ne!(winner, 2, "unreachable node must not win");
    system.shutdown();
}
