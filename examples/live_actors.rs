//! The negotiation protocol on the *live* threaded transport.
//!
//! The engines are sans-IO; here each node is an OS-thread actor
//! (`qosc-actors`) with real wall-clock timers, and the process-wide
//! [`Directory`] plays the radio's role. The same code drives the
//! deterministic simulator in every experiment — this example proves the
//! protocol also runs concurrently in real time.
//!
//! ```text
//! cargo run -p qosc-bench --example live_actors
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Sender};

use qosc_actors::{Actor, ActorCtx, ActorSystem, Directory};
use qosc_core::{
    decode_timer, Action, Msg, NegoEvent, OrganizerConfig, OrganizerEngine, Pid, ProviderConfig,
    ProviderEngine, TimerKind,
};
use qosc_netsim::SimTime;
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef};

/// Messages a live node actor consumes (Clone: broadcasts fan copies).
#[derive(Clone)]
enum LiveMsg {
    /// A protocol message from a peer.
    Proto { from: Pid, msg: Msg },
    /// A timer armed by one of the engines fired.
    Timer(u64),
    /// Host bootstrap: originate a service negotiation.
    Start(ServiceDef),
}

struct LiveNode {
    id: Pid,
    organizer: OrganizerEngine,
    provider: ProviderEngine,
    dir: Directory<LiveMsg>,
    epoch: Instant,
    events: Sender<(Pid, NegoEvent)>,
}

impl LiveNode {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&mut self, ctx: &ActorCtx<LiveMsg>, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    // Broadcasts do not echo to the sender; the paper lets
                    // the organizer's node compete, so feed it directly.
                    if matches!(msg, Msg::CallForProposals { .. }) {
                        let local = self.provider.on_message(self.now(), self.id, &msg);
                        self.apply(ctx, local);
                    }
                    self.dir.broadcast(
                        self.id,
                        &LiveMsg::Proto {
                            from: self.id,
                            msg,
                        },
                    );
                }
                Action::Send { to, msg } => {
                    self.dir.send(self.id, to, LiveMsg::Proto { from: self.id, msg });
                }
                Action::Timer { delay, token } => {
                    let addr = ctx.myself();
                    let d = Duration::from_micros(delay.as_micros());
                    std::thread::spawn(move || {
                        std::thread::sleep(d);
                        let _ = addr.send(LiveMsg::Timer(token));
                    });
                }
                Action::Event(e) => {
                    let _ = self.events.send((self.id, e));
                }
            }
        }
    }
}

impl Actor for LiveNode {
    type Msg = LiveMsg;

    fn handle(&mut self, ctx: &ActorCtx<LiveMsg>, msg: LiveMsg) {
        let now = self.now();
        match msg {
            LiveMsg::Start(service) => match self.organizer.start_service(now, &service) {
                Ok((_, actions)) => self.apply(ctx, actions),
                Err(e) => eprintln!("node {}: bad service: {e}", self.id),
            },
            LiveMsg::Proto { from, msg } => {
                let actions = match &msg {
                    Msg::CallForProposals { .. } | Msg::Award { .. } | Msg::Release { .. } => {
                        self.provider.on_message(now, from, &msg)
                    }
                    _ => self.organizer.on_message(now, from, &msg),
                };
                self.apply(ctx, actions);
            }
            LiveMsg::Timer(token) => {
                let Some((nego, kind)) = decode_timer(token) else {
                    return;
                };
                let actions = match kind {
                    TimerKind::ProposalDeadline
                    | TimerKind::AwardDeadline
                    | TimerKind::HeartbeatCheck => self.organizer.on_timer(now, nego, kind),
                    TimerKind::HeartbeatSend | TimerKind::HoldExpiry => {
                        self.provider.on_timer(now, nego, kind)
                    }
                    TimerKind::Kickoff | TimerKind::Dissolve => Vec::new(),
                };
                self.apply(ctx, actions);
            }
        }
    }
}

fn main() {
    let spec = catalog::av_spec();
    let mut system = ActorSystem::new();
    let dir: Directory<LiveMsg> = Directory::new();
    let (events_tx, events_rx) = unbounded();
    let epoch = Instant::now();

    let cpus = [15.0, 60.0, 150.0, 400.0];
    for id in 0..4u32 {
        let mut provider = ProviderEngine::new(
            id,
            ResourceVector::new(cpus[id as usize], 256.0, 4000.0, 40.0, 4000.0),
            ProviderConfig::default(),
        );
        provider.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
        let node = LiveNode {
            id,
            organizer: OrganizerEngine::new(id, OrganizerConfig::default()),
            provider,
            dir: dir.clone(),
            epoch,
            events: events_tx.clone(),
        };
        let addr = system.spawn(format!("node-{id}"), node);
        dir.register(id, addr);
    }

    // Node 0 originates a two-camera surveillance service.
    let service = ServiceDef::new(
        "live-demo",
        (0..2)
            .map(|i| TaskDef {
                name: format!("camera-{i}"),
                spec: spec.clone(),
                request: catalog::surveillance_request(),
                input_bytes: 80_000,
                output_bytes: 8_000,
            })
            .collect(),
    );
    dir.send(0, 0, LiveMsg::Start(service));

    // Wait (wall clock!) for the coalition to form.
    match events_rx.recv_timeout(Duration::from_secs(10)) {
        Ok((node, NegoEvent::Formed { metrics, .. })) => {
            println!("coalition formed (organizer node {node}):");
            for (task, o) in &metrics.outcomes {
                println!(
                    "  {task} -> node {} at distance {:.4}",
                    o.node, o.distance
                );
            }
            println!(
                "  formation took {:.0} ms of real time",
                metrics
                    .formation_latency()
                    .map(|l| l.as_secs_f64() * 1000.0)
                    .unwrap_or(0.0)
            );
        }
        Ok((node, other)) => println!("node {node} reported: {other:?}"),
        Err(_) => eprintln!("no coalition within 10 s — check thread scheduling"),
    }
    system.shutdown();
}
