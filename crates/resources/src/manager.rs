//! Resource Managers and two-phase reservations (paper §4.1).
//!
//! "Resource Manager: the object that manages a particular resource. ...
//! QoS Provider: a server that negotiates access to node's resources.
//! Rather than reserving resources directly it will contact the Resource
//! Managers to grant specific resource amounts to the requesting task."
//!
//! During negotiation a provider must *hold* capacity while its proposal is
//! in flight (otherwise two concurrent negotiations could both promise the
//! same CPU), but must release it if it loses. [`ResourceManager`] therefore
//! implements a two-phase reservation:
//!
//! 1. [`ResourceManager::prepare`] — tentative hold with an expiry instant;
//! 2. [`ResourceManager::commit`] — the hold becomes a durable grant on
//!    award, or [`ResourceManager::release`] returns it on loss;
//! 3. [`ResourceManager::expire`] — garbage-collects tentative holds whose
//!    negotiation died (organizer crashed, message lost).
//!
//! [`NodeLedger`] aggregates one manager per [`ResourceKind`] behind a
//! vector interface, and is shared between the provider and its local
//! admission control via `parking_lot::Mutex` in the live runtime.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::ResourceError;
use crate::kind::{ResourceKind, ResourceVector};

/// Identifier of a reservation hold, unique per manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HoldId(pub u64);

/// Lifecycle state of a hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HoldState {
    /// Phase 1: held for an in-flight proposal, expires at `expires_at`.
    Tentative,
    /// Phase 2: durable grant backing an awarded task.
    Committed,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Hold {
    amount: f64,
    state: HoldState,
    /// Monotonic timestamp (units defined by the caller: the DES passes
    /// simulated microseconds, the live runtime passes `Instant`-derived
    /// millis). Only compared against values from the same clock.
    expires_at: u64,
}

/// Manages one resource of one node: a capacity plus outstanding holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceManager {
    kind: ResourceKind,
    capacity: f64,
    holds: HashMap<u64, Hold>,
    next_id: u64,
}

impl ResourceManager {
    /// Creates a manager with the given capacity.
    pub fn new(kind: ResourceKind, capacity: f64) -> Self {
        Self {
            kind,
            capacity,
            holds: HashMap::new(),
            next_id: 0,
        }
    }

    /// The resource this manager controls.
    pub fn kind(&self) -> ResourceKind {
        self.kind
    }

    /// Total capacity.
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Capacity not covered by any hold (tentative or committed).
    pub fn available(&self) -> f64 {
        (self.capacity - self.held()).max(0.0)
    }

    /// Sum of all outstanding holds.
    pub fn held(&self) -> f64 {
        self.holds.values().map(|h| h.amount).sum()
    }

    /// Sum of committed grants only.
    pub fn committed(&self) -> f64 {
        self.holds
            .values()
            .filter(|h| h.state == HoldState::Committed)
            .map(|h| h.amount)
            .sum()
    }

    /// Fraction of capacity currently held (0 when capacity is 0).
    pub fn utilisation(&self) -> f64 {
        if self.capacity <= 0.0 {
            0.0
        } else {
            self.held() / self.capacity
        }
    }

    /// Phase 1: tentatively hold `amount` until `expires_at`.
    pub fn prepare(&mut self, amount: f64, expires_at: u64) -> Result<HoldId, ResourceError> {
        if !(amount.is_finite() && amount >= 0.0) {
            return Err(ResourceError::InvalidAmount);
        }
        if amount > self.available() + 1e-9 {
            return Err(ResourceError::Insufficient {
                kind: self.kind,
                requested: amount,
                available: self.available(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.holds.insert(
            id,
            Hold {
                amount,
                state: HoldState::Tentative,
                expires_at,
            },
        );
        Ok(HoldId(id))
    }

    /// Phase 2: upgrade a tentative hold into a durable grant.
    pub fn commit(&mut self, id: HoldId) -> Result<(), ResourceError> {
        match self.holds.get_mut(&id.0) {
            Some(h) => {
                h.state = HoldState::Committed;
                Ok(())
            }
            None => Err(ResourceError::UnknownHold),
        }
    }

    /// Releases a hold (either phase), returning its amount to the pool.
    pub fn release(&mut self, id: HoldId) -> Result<f64, ResourceError> {
        self.holds
            .remove(&id.0)
            .map(|h| h.amount)
            .ok_or(ResourceError::UnknownHold)
    }

    /// Drops every tentative hold with `expires_at <= now`; returns how
    /// many were collected. Committed grants never expire.
    pub fn expire(&mut self, now: u64) -> usize {
        let before = self.holds.len();
        self.holds
            .retain(|_, h| h.state == HoldState::Committed || h.expires_at > now);
        before - self.holds.len()
    }

    /// State of a hold, if it exists.
    pub fn hold_state(&self, id: HoldId) -> Option<HoldState> {
        self.holds.get(&id.0).map(|h| h.state)
    }

    /// Canonical view of every outstanding hold as
    /// `(id, amount, state, expires_at)`, sorted by id. The order is
    /// deterministic regardless of `HashMap` iteration order, which is what
    /// state-hashing consumers (the model checker) need.
    pub fn holds_snapshot(&self) -> Vec<(u64, f64, HoldState, u64)> {
        let mut v: Vec<_> = self
            .holds
            .iter()
            .map(|(id, h)| (*id, h.amount, h.state, h.expires_at))
            .collect();
        v.sort_unstable_by_key(|e| e.0);
        v
    }
}

/// A vector-shaped reservation across several managers: one optional hold
/// per resource kind (kinds with zero demand get no hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorHold {
    ids: [Option<HoldId>; 5],
}

impl VectorHold {
    /// Hold id for a kind, if that kind was part of the reservation.
    pub fn get(&self, kind: ResourceKind) -> Option<HoldId> {
        self.ids[kind.index()]
    }
}

/// All Resource Managers of one node, addressed as a vector.
///
/// This is the object a QoS Provider contacts when formulating a proposal
/// ("the QoS Provider contacts the required Resource Managers for resource
/// availability", §5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeLedger {
    managers: [ResourceManager; 5],
}

impl NodeLedger {
    /// Creates a ledger from a capacity vector.
    pub fn new(capacity: ResourceVector) -> Self {
        let mk = |k: ResourceKind| ResourceManager::new(k, capacity.get(k));
        Self {
            managers: [
                mk(ResourceKind::Cpu),
                mk(ResourceKind::Memory),
                mk(ResourceKind::NetBandwidth),
                mk(ResourceKind::IoBus),
                mk(ResourceKind::Energy),
            ],
        }
    }

    /// Capacity of every kind.
    pub fn capacity(&self) -> ResourceVector {
        let mut v = ResourceVector::ZERO;
        for m in &self.managers {
            v[m.kind()] = m.capacity();
        }
        v
    }

    /// Currently available amount of every kind.
    pub fn available(&self) -> ResourceVector {
        let mut v = ResourceVector::ZERO;
        for m in &self.managers {
            v[m.kind()] = m.available();
        }
        v
    }

    /// Access to one kind's manager.
    pub fn manager(&self, kind: ResourceKind) -> &ResourceManager {
        &self.managers[kind.index()]
    }

    /// Mutable access to one kind's manager.
    pub fn manager_mut(&mut self, kind: ResourceKind) -> &mut ResourceManager {
        &mut self.managers[kind.index()]
    }

    /// Atomically prepares a vector-shaped hold: either every non-zero
    /// component is held, or none is (partial failures are rolled back).
    pub fn prepare(
        &mut self,
        demand: &ResourceVector,
        expires_at: u64,
    ) -> Result<VectorHold, ResourceError> {
        if !demand.is_valid() {
            return Err(ResourceError::InvalidAmount);
        }
        let mut ids: [Option<HoldId>; 5] = [None; 5];
        for k in ResourceKind::ALL {
            let amount = demand.get(k);
            if amount <= 0.0 {
                continue;
            }
            match self.manager_mut(k).prepare(amount, expires_at) {
                Ok(id) => ids[k.index()] = Some(id),
                Err(e) => {
                    // Roll back the components already held.
                    for k2 in ResourceKind::ALL {
                        if let Some(id2) = ids[k2.index()] {
                            let _ = self.manager_mut(k2).release(id2);
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(VectorHold { ids })
    }

    /// Commits every component of a vector hold.
    pub fn commit(&mut self, hold: VectorHold) -> Result<(), ResourceError> {
        for k in ResourceKind::ALL {
            if let Some(id) = hold.get(k) {
                self.manager_mut(k).commit(id)?;
            }
        }
        Ok(())
    }

    /// Releases every component of a vector hold.
    pub fn release(&mut self, hold: VectorHold) {
        for k in ResourceKind::ALL {
            if let Some(id) = hold.get(k) {
                let _ = self.manager_mut(k).release(id);
            }
        }
    }

    /// Expires tentative holds across all managers; returns total collected.
    pub fn expire(&mut self, now: u64) -> usize {
        self.managers.iter_mut().map(|m| m.expire(now)).sum()
    }

    /// True if `demand` could be prepared right now.
    pub fn can_fit(&self, demand: &ResourceVector) -> bool {
        demand.fits_within(&self.available())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ResourceVector {
        ResourceVector::new(100.0, 256.0, 1000.0, 40.0, 500.0)
    }

    #[test]
    fn prepare_commit_release_cycle() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        let h = m.prepare(60.0, 10).unwrap();
        assert_eq!(m.available(), 40.0);
        assert_eq!(m.hold_state(h), Some(HoldState::Tentative));
        m.commit(h).unwrap();
        assert_eq!(m.hold_state(h), Some(HoldState::Committed));
        assert_eq!(m.committed(), 60.0);
        assert_eq!(m.release(h).unwrap(), 60.0);
        assert_eq!(m.available(), 100.0);
    }

    #[test]
    fn prepare_rejects_overcommit() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        let _ = m.prepare(80.0, 10).unwrap();
        let err = m.prepare(30.0, 10).unwrap_err();
        match err {
            ResourceError::Insufficient {
                kind, requested, ..
            } => {
                assert_eq!(kind, ResourceKind::Cpu);
                assert_eq!(requested, 30.0);
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn prepare_rejects_invalid_amounts() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        assert!(matches!(
            m.prepare(f64::NAN, 10),
            Err(ResourceError::InvalidAmount)
        ));
        assert!(matches!(
            m.prepare(-1.0, 10),
            Err(ResourceError::InvalidAmount)
        ));
        // Zero-amount holds are legal (a task may not need this kind).
        assert!(m.prepare(0.0, 10).is_ok());
    }

    #[test]
    fn expiry_collects_only_stale_tentatives() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        let h1 = m.prepare(10.0, 5).unwrap();
        let _h2 = m.prepare(10.0, 50).unwrap();
        let h3 = m.prepare(10.0, 5).unwrap();
        m.commit(h3).unwrap();
        assert_eq!(m.expire(5), 1); // only h1: h2 is later, h3 committed
        assert!(m.hold_state(h1).is_none());
        assert_eq!(m.available(), 80.0);
    }

    #[test]
    fn unknown_hold_errors() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        assert!(matches!(
            m.commit(HoldId(99)),
            Err(ResourceError::UnknownHold)
        ));
        assert!(matches!(
            m.release(HoldId(99)),
            Err(ResourceError::UnknownHold)
        ));
    }

    #[test]
    fn ledger_vector_prepare_all_or_nothing() {
        let mut l = NodeLedger::new(cap());
        let demand = ResourceVector::new(50.0, 100.0, 0.0, 0.0, 200.0);
        let h = l.prepare(&demand, 10).unwrap();
        assert_eq!(l.available()[ResourceKind::Cpu], 50.0);
        assert!(h.get(ResourceKind::Cpu).is_some());
        assert!(h.get(ResourceKind::NetBandwidth).is_none());

        // Second demand overflows memory: nothing must be held afterwards.
        let too_big = ResourceVector::new(10.0, 200.0, 0.0, 0.0, 0.0);
        assert!(l.prepare(&too_big, 10).is_err());
        assert_eq!(l.available()[ResourceKind::Cpu], 50.0); // unchanged
        assert_eq!(l.available()[ResourceKind::Memory], 156.0);
    }

    #[test]
    fn ledger_commit_and_release() {
        let mut l = NodeLedger::new(cap());
        let d = ResourceVector::new(10.0, 10.0, 10.0, 10.0, 10.0);
        let h = l.prepare(&d, 10).unwrap();
        l.commit(h).unwrap();
        assert_eq!(l.expire(1000), 0); // committed grants survive expiry
        l.release(h);
        assert_eq!(l.available(), cap());
    }

    #[test]
    fn ledger_can_fit_tracks_availability() {
        let mut l = NodeLedger::new(cap());
        let d = ResourceVector::new(90.0, 0.0, 0.0, 0.0, 0.0);
        assert!(l.can_fit(&d));
        let _ = l.prepare(&d, 10).unwrap();
        assert!(!l.can_fit(&d));
        assert_eq!(l.expire(11), 1);
        assert!(l.can_fit(&d));
    }

    #[test]
    fn utilisation_reporting() {
        let mut m = ResourceManager::new(ResourceKind::Cpu, 100.0);
        assert_eq!(m.utilisation(), 0.0);
        let _ = m.prepare(25.0, 10).unwrap();
        assert!((m.utilisation() - 0.25).abs() < 1e-12);
        let zero = ResourceManager::new(ResourceKind::IoBus, 0.0);
        assert_eq!(zero.utilisation(), 0.0);
    }
}
