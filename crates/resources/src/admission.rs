//! Admission control: deciding whether a set of tasks "is schedulable"
//! (the loop condition of the paper's §5 heuristic).
//!
//! The paper never fixes a scheduling theory; it only needs a yes/no
//! predicate over a proposed resource allocation. We provide the classic
//! utilisation-based test: CPU demands are treated as utilisations of the
//! node's processing capacity and admitted while
//! `Σ demand_cpu ≤ bound × capacity_cpu`, with the bound selectable per
//! scheduling policy (EDF admits up to 1.0; rate-monotonic uses the
//! Liu & Layland bound `n(2^{1/n} − 1)`). Non-CPU kinds use plain capacity
//! tests, which is exact for rate-type resources (bandwidth, I/O, power).

use serde::{Deserialize, Serialize};

use crate::kind::{ResourceKind, ResourceVector};

/// The local scheduling policy assumed by the admission test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Earliest-deadline-first: utilisation bound 1.0 (optimal on one CPU).
    Edf,
    /// Fixed-priority rate-monotonic: Liu & Layland bound
    /// `n(2^{1/n} − 1)`, which tends to ln 2 ≈ 0.693 as n grows.
    RateMonotonic,
    /// A fixed caller-chosen utilisation ceiling (e.g. 0.8 to keep
    /// headroom for OS interference).
    FixedBound(
        /// The ceiling in (0, 1].
        f64,
    ),
}

impl SchedulingPolicy {
    /// Utilisation bound for `n` admitted tasks.
    pub fn bound(&self, n: usize) -> f64 {
        match self {
            SchedulingPolicy::Edf => 1.0,
            SchedulingPolicy::RateMonotonic => {
                if n == 0 {
                    1.0
                } else {
                    let nf = n as f64;
                    nf * (2f64.powf(1.0 / nf) - 1.0)
                }
            }
            SchedulingPolicy::FixedBound(b) => *b,
        }
    }
}

/// Utilisation-based admission over a capacity vector.
///
/// Stateless: callers pass the demands they want tested. Stateful tracking
/// (what is already admitted) lives in the reservation ledger, keeping a
/// single source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionControl {
    /// CPU scheduling policy used for the utilisation bound.
    pub policy: SchedulingPolicy,
    /// Node capacity being admitted against.
    pub capacity: ResourceVector,
}

impl AdmissionControl {
    /// Creates an admission controller.
    pub fn new(policy: SchedulingPolicy, capacity: ResourceVector) -> Self {
        Self { policy, capacity }
    }

    /// The schedulability predicate of the §5 heuristic: would this *set*
    /// of per-task demands be schedulable together on this node?
    pub fn schedulable(&self, demands: &[ResourceVector]) -> bool {
        let mut total = ResourceVector::ZERO;
        for d in demands {
            total += *d;
        }
        self.schedulable_total(&total, demands.len())
    }

    /// Same predicate given a pre-summed demand and the task count.
    ///
    /// NaN-safe: a NaN anywhere (capacity or demand) rejects. A plain
    /// `total > bound` test silently *admits* under NaN (the comparison is
    /// false), which let nodes advertising a corrupt capacity win every
    /// task at preferred quality.
    pub fn schedulable_total(&self, total: &ResourceVector, task_count: usize) -> bool {
        // CPU: utilisation bound per policy.
        let cpu_cap = self.capacity.get(ResourceKind::Cpu);
        let cpu_bound = self.policy.bound(task_count) * cpu_cap;
        let cpu = total.get(ResourceKind::Cpu);
        if cpu.is_nan() || cpu_bound.is_nan() || cpu > cpu_bound + 1e-9 {
            return false;
        }
        // Rate resources: plain capacity.
        for k in [
            ResourceKind::Memory,
            ResourceKind::NetBandwidth,
            ResourceKind::IoBus,
            ResourceKind::Energy,
        ] {
            let t = total.get(k);
            let cap = self.capacity.get(k);
            if t.is_nan() || cap.is_nan() || t > cap + 1e-9 {
                return false;
            }
        }
        true
    }

    /// Slack left after admitting `admitted` (CPU slack honours the bound).
    pub fn slack(&self, admitted: &ResourceVector, task_count: usize) -> ResourceVector {
        let mut s = self.capacity - *admitted;
        let cpu_bound = self.policy.bound(task_count) * self.capacity.get(ResourceKind::Cpu);
        s[ResourceKind::Cpu] = (cpu_bound - admitted.get(ResourceKind::Cpu)).max(0.0);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cap() -> ResourceVector {
        ResourceVector::new(100.0, 256.0, 1000.0, 40.0, 500.0)
    }

    #[test]
    fn edf_admits_to_full_utilisation() {
        let ac = AdmissionControl::new(SchedulingPolicy::Edf, cap());
        let d = ResourceVector::single(ResourceKind::Cpu, 50.0);
        assert!(ac.schedulable(&[d, d]));
        let d3 = ResourceVector::single(ResourceKind::Cpu, 34.0);
        assert!(!ac.schedulable(&[d3, d3, d3])); // 102 > 100
    }

    #[test]
    fn rm_bound_matches_liu_layland() {
        assert!((SchedulingPolicy::RateMonotonic.bound(1) - 1.0).abs() < 1e-12);
        assert!((SchedulingPolicy::RateMonotonic.bound(2) - 0.8284).abs() < 1e-3);
        assert!((SchedulingPolicy::RateMonotonic.bound(100) - 0.6956).abs() < 1e-3);
        assert_eq!(SchedulingPolicy::RateMonotonic.bound(0), 1.0);
    }

    #[test]
    fn rm_is_stricter_than_edf() {
        let edf = AdmissionControl::new(SchedulingPolicy::Edf, cap());
        let rm = AdmissionControl::new(SchedulingPolicy::RateMonotonic, cap());
        let d = ResourceVector::single(ResourceKind::Cpu, 45.0);
        assert!(edf.schedulable(&[d, d])); // 90 <= 100
        assert!(!rm.schedulable(&[d, d])); // 90 > 82.8
    }

    #[test]
    fn non_cpu_kinds_use_plain_capacity() {
        let ac = AdmissionControl::new(SchedulingPolicy::Edf, cap());
        let d = ResourceVector::single(ResourceKind::Memory, 300.0);
        assert!(!ac.schedulable(&[d]));
        let d = ResourceVector::single(ResourceKind::NetBandwidth, 999.0);
        assert!(ac.schedulable(&[d]));
    }

    #[test]
    fn fixed_bound_keeps_headroom() {
        let ac = AdmissionControl::new(SchedulingPolicy::FixedBound(0.8), cap());
        let d = ResourceVector::single(ResourceKind::Cpu, 81.0);
        assert!(!ac.schedulable(&[d]));
        let d = ResourceVector::single(ResourceKind::Cpu, 79.0);
        assert!(ac.schedulable(&[d]));
    }

    #[test]
    fn slack_reflects_bound() {
        let ac = AdmissionControl::new(SchedulingPolicy::FixedBound(0.5), cap());
        let admitted = ResourceVector::single(ResourceKind::Cpu, 30.0);
        let s = ac.slack(&admitted, 1);
        assert!((s[ResourceKind::Cpu] - 20.0).abs() < 1e-9);
        assert!((s[ResourceKind::Memory] - 256.0).abs() < 1e-9);
    }

    #[test]
    fn empty_task_set_is_schedulable() {
        let ac = AdmissionControl::new(SchedulingPolicy::RateMonotonic, cap());
        assert!(ac.schedulable(&[]));
    }

    #[test]
    fn nan_capacity_or_demand_rejects() {
        let nan_cap = ResourceVector::new(f64::NAN, 256.0, 1000.0, 40.0, 500.0);
        let ac = AdmissionControl::new(SchedulingPolicy::Edf, nan_cap);
        let d = ResourceVector::single(ResourceKind::Cpu, 1.0);
        assert!(!ac.schedulable(&[d]));
        let ac = AdmissionControl::new(SchedulingPolicy::Edf, cap());
        let nan_d = ResourceVector::single(ResourceKind::Memory, f64::NAN);
        assert!(!ac.schedulable(&[nan_d]));
        // The empty set stays schedulable even on a NaN-capacity node only
        // if nothing is demanded of the NaN kind — total 0.0 vs NaN cap
        // still rejects, by design.
        let ac = AdmissionControl::new(SchedulingPolicy::Edf, nan_cap);
        assert!(!ac.schedulable(&[]));
    }
}
