//! Mapping QoS choices to resource requirements (paper §5).
//!
//! "Each individual QoS Provider must map QoS constraints to resource
//! requirements ... This mapping is inherently difficult. To address this
//! problem we (for now) assume that applications make a reasonably accurate
//! analysis of their resource requirements, made a priori through resource
//! monitoring tools."
//!
//! [`DemandModel`] is that a-priori analysis: a function from a quality
//! vector to a [`ResourceVector`]. [`LinearDemandModel`] is the concrete
//! family we ship — a base cost plus per-attribute terms, each term scaling
//! a resource kind by a *feature* of the chosen value. Features keep the
//! model meaningful for non-numeric attributes: a string-valued codec choice
//! contributes through its quality-index position, not through arithmetic on
//! the string.

use serde::{Deserialize, Serialize};

use qosc_spec::{AttrPath, QosSpec, QualityVector};

use crate::kind::{ResourceKind, ResourceVector};

/// How a chosen value is turned into a scalar feature for a demand term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Feature {
    /// The numeric value itself (frame rate 25 → 25.0). Invalid for string
    /// domains; such terms evaluate to 0 and are caught by `validate`.
    Numeric,
    /// Quality-index position mapped to `[0, 1]`: the *first* declared
    /// domain value (highest quality) → 1.0, the last → 0.0. Works for any
    /// discrete domain, including strings.
    QualityIndex,
}

/// One additive term of a [`LinearDemandModel`]:
/// `demand[kind] += coeff × feature(value at path)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandTerm {
    /// Attribute whose chosen value drives the term.
    pub path: AttrPath,
    /// Which scalar feature of the chosen value to use.
    pub feature: Feature,
    /// Resource kind the term contributes to.
    pub kind: ResourceKind,
    /// Multiplier applied to the feature.
    pub coeff: f64,
}

/// The a-priori quality→resource analysis of one application class.
///
/// # Contract: monotone along degradation
///
/// Implementations must not *increase* any resource demand when a
/// requested attribute degrades one ladder level (toward the user's
/// less-preferred values). The §5 heuristic assumes degrading frees
/// resources, and the provider's prefix-feasibility shedding pre-check
/// uses the fully-degraded demand as each task's floor — a non-monotone
/// model can make it shed a prefix the full degradation loop would have
/// served. [`LinearDemandModel`] satisfies the contract when its
/// coefficients are non-negative and ladders are declared best quality
/// first.
pub trait DemandModel: Send + Sync {
    /// Resource demand of running one task at the given quality.
    fn demand(&self, spec: &QosSpec, qv: &QualityVector) -> ResourceVector;
}

/// Base cost + linear per-attribute terms. Monotone in each attribute as
/// long as coefficients are non-negative and domains are declared best
/// quality first, which is what the degradation heuristic relies on
/// (degrading a level never increases demand).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearDemandModel {
    /// Fixed cost paid regardless of quality (task bookkeeping, buffers).
    pub base: ResourceVector,
    /// Additive terms.
    pub terms: Vec<DemandTerm>,
}

impl LinearDemandModel {
    /// Creates a model.
    pub fn new(base: ResourceVector, terms: Vec<DemandTerm>) -> Self {
        Self { base, terms }
    }

    /// Checks every term references an existing attribute and that
    /// `Numeric` features are only used on numeric domains.
    pub fn validate(&self, spec: &QosSpec) -> bool {
        self.terms.iter().all(|t| match spec.attribute_at(t.path) {
            None => false,
            Some(attr) => match t.feature {
                Feature::Numeric => attr.domain.ty() != qosc_spec::ValueType::String,
                Feature::QualityIndex => attr.domain.is_discrete(),
            },
        })
    }

    fn feature_of(&self, spec: &QosSpec, qv: &QualityVector, term: &DemandTerm) -> f64 {
        let Some(attr) = spec.attribute_at(term.path) else {
            return 0.0;
        };
        let Some(v) = qv.get(spec, term.path) else {
            return 0.0;
        };
        match term.feature {
            Feature::Numeric => v.as_f64().unwrap_or(0.0),
            Feature::QualityIndex => {
                let Some(len) = attr.domain.len() else {
                    return 0.0;
                };
                if len <= 1 {
                    return 1.0;
                }
                match attr.domain.position(v) {
                    Some(pos) => 1.0 - pos as f64 / (len - 1) as f64,
                    None => 0.0,
                }
            }
        }
    }
}

impl DemandModel for LinearDemandModel {
    fn demand(&self, spec: &QosSpec, qv: &QualityVector) -> ResourceVector {
        let mut d = self.base;
        for t in &self.terms {
            d[t.kind] += t.coeff * self.feature_of(spec, qv, t);
        }
        d
    }
}

/// Canonical demand model for the catalog's audio/video spec: CPU grows
/// with frame rate × colour-depth quality, bandwidth with both audio
/// attributes, plus small fixed costs. Used by examples, tests and the
/// workload generator.
pub fn av_demand_model(spec: &QosSpec) -> LinearDemandModel {
    let fr = spec
        .path("Video Quality", "frame_rate")
        .expect("av spec has frame_rate");
    let cd = spec
        .path("Video Quality", "color_depth")
        .expect("av spec has color_depth");
    let sr = spec
        .path("Audio Quality", "sampling_rate")
        .expect("av spec has sampling_rate");
    let sb = spec
        .path("Audio Quality", "sample_bits")
        .expect("av spec has sample_bits");
    LinearDemandModel::new(
        ResourceVector::new(2.0, 8.0, 16.0, 0.5, 20.0),
        vec![
            // Decoding cost: ~1.2 MIPS per frame/s, plus up to +18 MIPS at
            // the deepest colour depth.
            DemandTerm {
                path: fr,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 1.2,
            },
            DemandTerm {
                path: cd,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 0.75,
            },
            // Frame buffers: memory with colour depth.
            DemandTerm {
                path: cd,
                feature: Feature::Numeric,
                kind: ResourceKind::Memory,
                coeff: 1.5,
            },
            // Stream bandwidth with frame rate.
            DemandTerm {
                path: fr,
                feature: Feature::Numeric,
                kind: ResourceKind::NetBandwidth,
                coeff: 12.0,
            },
            // Audio pipeline: CPU and bandwidth with rate × bits.
            DemandTerm {
                path: sr,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 0.25,
            },
            DemandTerm {
                path: sr,
                feature: Feature::Numeric,
                kind: ResourceKind::NetBandwidth,
                coeff: 2.0,
            },
            DemandTerm {
                path: sb,
                feature: Feature::Numeric,
                kind: ResourceKind::NetBandwidth,
                coeff: 1.0,
            },
            // Energy roughly follows CPU.
            DemandTerm {
                path: fr,
                feature: Feature::Numeric,
                kind: ResourceKind::Energy,
                coeff: 6.0,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_spec::{catalog, Value};

    fn spec_and_model() -> (QosSpec, LinearDemandModel) {
        let spec = catalog::av_spec();
        let model = av_demand_model(&spec);
        (spec, model)
    }

    fn qv(spec: &QosSpec, fr: i64, cd: i64, sr: i64, sb: i64) -> QualityVector {
        QualityVector::new(
            spec,
            vec![
                Value::Int(fr),
                Value::Int(cd),
                Value::Int(sr),
                Value::Int(sb),
            ],
        )
        .unwrap()
    }

    #[test]
    fn av_model_validates() {
        let (spec, model) = spec_and_model();
        assert!(model.validate(&spec));
    }

    #[test]
    fn demand_is_monotone_in_frame_rate() {
        let (spec, model) = spec_and_model();
        let low = model.demand(&spec, &qv(&spec, 5, 3, 8, 8));
        let high = model.demand(&spec, &qv(&spec, 30, 3, 8, 8));
        assert!(low.get(ResourceKind::Cpu) < high.get(ResourceKind::Cpu));
        assert!(low.get(ResourceKind::NetBandwidth) < high.get(ResourceKind::NetBandwidth));
        assert!(low.fits_within(&high));
    }

    #[test]
    fn demand_includes_base_cost() {
        let (spec, model) = spec_and_model();
        let d = model.demand(&spec, &qv(&spec, 1, 1, 8, 8));
        assert!(d.get(ResourceKind::Cpu) > 2.0); // base 2.0 + terms
        assert!(d.get(ResourceKind::Memory) >= 8.0);
    }

    #[test]
    fn quality_index_feature_maps_positions() {
        // Build a model over color_depth using QualityIndex: domain is
        // {1,3,8,16,24} declared low→high, so pos 0 (value 1) → 1.0 and
        // pos 4 (value 24) → 0.0.
        let spec = catalog::av_spec();
        let cd = spec.path("Video Quality", "color_depth").unwrap();
        let model = LinearDemandModel::new(
            ResourceVector::ZERO,
            vec![DemandTerm {
                path: cd,
                feature: Feature::QualityIndex,
                kind: ResourceKind::Cpu,
                coeff: 10.0,
            }],
        );
        let d1 = model.demand(&spec, &qv(&spec, 1, 1, 8, 8));
        let d24 = model.demand(&spec, &qv(&spec, 1, 24, 8, 8));
        assert!((d1.get(ResourceKind::Cpu) - 10.0).abs() < 1e-9);
        assert!((d24.get(ResourceKind::Cpu) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn validate_catches_bad_terms() {
        let spec = catalog::transcode_spec();
        let codec = spec.path("Fidelity", "codec").unwrap();
        // Numeric feature on a string attribute is invalid.
        let bad = LinearDemandModel::new(
            ResourceVector::ZERO,
            vec![DemandTerm {
                path: codec,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 1.0,
            }],
        );
        assert!(!bad.validate(&spec));
        // QualityIndex on the same attribute is fine.
        let ok = LinearDemandModel::new(
            ResourceVector::ZERO,
            vec![DemandTerm {
                path: codec,
                feature: Feature::QualityIndex,
                kind: ResourceKind::Cpu,
                coeff: 1.0,
            }],
        );
        assert!(ok.validate(&spec));
        // Dangling path.
        let dangling = LinearDemandModel::new(
            ResourceVector::ZERO,
            vec![DemandTerm {
                path: AttrPath::new(9, 9),
                feature: Feature::QualityIndex,
                kind: ResourceKind::Cpu,
                coeff: 1.0,
            }],
        );
        assert!(!dangling.validate(&spec));
    }
}
