//! Node hardware profiles — the heterogeneous device population of §2.
//!
//! "Very different types of mobile devices are currently available:
//! telephones, PDAs, laptops, etc." Each [`DeviceClass`] carries canonical
//! capacities (loosely calibrated to 2005-era hardware, which is what the
//! paper's scenario assumes); [`NodeProfile`] is one concrete node.

use serde::{Deserialize, Serialize};

use crate::kind::ResourceVector;

/// Coarse device classes of the heterogeneous ad-hoc population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// A phone: minimal CPU/memory, tight energy budget.
    Phone,
    /// A PDA: modest CPU, small memory.
    Pda,
    /// A laptop: strong CPU and memory, good radio.
    Laptop,
    /// A mains-powered fixed node (the paper's §1 "fixed wired
    /// infrastructure collaborating with the wireless nodes").
    FixedServer,
}

impl DeviceClass {
    /// All classes.
    pub const ALL: [DeviceClass; 4] = [
        DeviceClass::Phone,
        DeviceClass::Pda,
        DeviceClass::Laptop,
        DeviceClass::FixedServer,
    ];

    /// Canonical capacity vector of the class.
    pub fn capacity(self) -> ResourceVector {
        match self {
            // cpu MIPS, mem MB, net kbps, io MB/s, energy mW
            DeviceClass::Phone => ResourceVector::new(40.0, 32.0, 400.0, 5.0, 300.0),
            DeviceClass::Pda => ResourceVector::new(80.0, 64.0, 800.0, 10.0, 600.0),
            DeviceClass::Laptop => ResourceVector::new(400.0, 512.0, 5000.0, 60.0, 4000.0),
            DeviceClass::FixedServer => {
                ResourceVector::new(1600.0, 2048.0, 20000.0, 200.0, 100_000.0)
            }
        }
    }

    /// Whether the device is battery constrained (affects willingness to
    /// volunteer for remote work in workload policies).
    pub fn battery_powered(self) -> bool {
        !matches!(self, DeviceClass::FixedServer)
    }
}

impl std::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DeviceClass::Phone => "phone",
            DeviceClass::Pda => "pda",
            DeviceClass::Laptop => "laptop",
            DeviceClass::FixedServer => "fixed-server",
        };
        write!(f, "{s}")
    }
}

/// One concrete node's hardware description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeProfile {
    /// Device class.
    pub class: DeviceClass,
    /// Actual capacities (defaults to the class capacity, but generators
    /// jitter it so no two laptops are identical).
    pub capacity: ResourceVector,
}

impl NodeProfile {
    /// Profile with the class's canonical capacity.
    pub fn of_class(class: DeviceClass) -> Self {
        Self {
            class,
            capacity: class.capacity(),
        }
    }

    /// Profile with the class capacity uniformly scaled by `factor`
    /// (e.g. 0.7 for a congested node — §1: "more powerful (or less
    /// congested) devices").
    pub fn scaled(class: DeviceClass, factor: f64) -> Self {
        Self {
            class,
            capacity: class.capacity().scale(factor),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kind::ResourceKind;

    #[test]
    fn classes_are_strictly_ordered_by_cpu() {
        let caps: Vec<f64> = DeviceClass::ALL
            .iter()
            .map(|c| c.capacity().get(ResourceKind::Cpu))
            .collect();
        for w in caps.windows(2) {
            assert!(w[0] < w[1], "device classes should escalate in CPU");
        }
    }

    #[test]
    fn only_fixed_server_is_mains_powered() {
        assert!(DeviceClass::Phone.battery_powered());
        assert!(DeviceClass::Laptop.battery_powered());
        assert!(!DeviceClass::FixedServer.battery_powered());
    }

    #[test]
    fn scaled_profile_scales_every_component() {
        let p = NodeProfile::scaled(DeviceClass::Laptop, 0.5);
        let full = DeviceClass::Laptop.capacity();
        for k in ResourceKind::ALL {
            assert!((p.capacity.get(k) - full.get(k) * 0.5).abs() < 1e-9);
        }
        assert_eq!(p.class, DeviceClass::Laptop);
    }

    #[test]
    fn display_names() {
        assert_eq!(DeviceClass::FixedServer.to_string(), "fixed-server");
    }
}
