//! Resource kinds and resource vectors.
//!
//! The paper (§4.1) names the resources a node supplies: "CPU time, memory,
//! I/O bus bandwidth, network bandwidth". We add an energy budget, which §7
//! motivates ("battery energy loss"). A [`ResourceVector`] is a quantity of
//! each kind at once — the shape of capacities, demands and reservations.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// The limited hardware/software quantities a node can supply (paper §4.1,
/// "Resource" definition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Processing throughput, in MIPS-equivalents.
    Cpu,
    /// Main memory, in megabytes.
    Memory,
    /// Wireless link throughput, in kilobits per second.
    NetBandwidth,
    /// I/O bus throughput, in megabytes per second.
    IoBus,
    /// Power draw budget, in milliwatts.
    Energy,
}

impl ResourceKind {
    /// All kinds, in [`ResourceVector`] component order.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::Cpu,
        ResourceKind::Memory,
        ResourceKind::NetBandwidth,
        ResourceKind::IoBus,
        ResourceKind::Energy,
    ];

    /// Component index of this kind inside a [`ResourceVector`].
    pub const fn index(self) -> usize {
        match self {
            ResourceKind::Cpu => 0,
            ResourceKind::Memory => 1,
            ResourceKind::NetBandwidth => 2,
            ResourceKind::IoBus => 3,
            ResourceKind::Energy => 4,
        }
    }

    /// Measurement unit, for table headers and logs.
    pub const fn unit(self) -> &'static str {
        match self {
            ResourceKind::Cpu => "MIPS",
            ResourceKind::Memory => "MB",
            ResourceKind::NetBandwidth => "kbps",
            ResourceKind::IoBus => "MB/s",
            ResourceKind::Energy => "mW",
        }
    }
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Cpu => "cpu",
            ResourceKind::Memory => "memory",
            ResourceKind::NetBandwidth => "net-bandwidth",
            ResourceKind::IoBus => "io-bus",
            ResourceKind::Energy => "energy",
        };
        write!(f, "{s}")
    }
}

/// A quantity of every resource kind at once. Components are non-negative
/// by convention; arithmetic saturates at zero on subtraction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ResourceVector([f64; 5]);

impl ResourceVector {
    /// The zero vector.
    pub const ZERO: ResourceVector = ResourceVector([0.0; 5]);

    /// Builds a vector from named components, leaving the rest zero.
    pub fn new(cpu: f64, memory: f64, net: f64, io: f64, energy: f64) -> Self {
        Self([cpu, memory, net, io, energy])
    }

    /// A vector with a single non-zero component.
    pub fn single(kind: ResourceKind, amount: f64) -> Self {
        let mut v = Self::ZERO;
        v[kind] = amount;
        v
    }

    /// Component accessor.
    pub fn get(&self, kind: ResourceKind) -> f64 {
        self.0[kind.index()]
    }

    /// True if every component of `self` is ≤ the matching component of
    /// `other` (with a small epsilon): "this demand fits in that capacity".
    pub fn fits_within(&self, other: &ResourceVector) -> bool {
        self.0
            .iter()
            .zip(other.0.iter())
            .all(|(a, b)| *a <= *b + 1e-9)
    }

    /// Component-wise scale.
    pub fn scale(&self, s: f64) -> ResourceVector {
        let mut out = *self;
        for x in &mut out.0 {
            *x *= s;
        }
        out
    }

    /// Largest ratio `self[k] / capacity[k]` over kinds with non-zero
    /// capacity — the bottleneck utilisation this demand would impose.
    /// Returns `f64::INFINITY` when demanding a kind with zero capacity.
    pub fn max_ratio(&self, capacity: &ResourceVector) -> f64 {
        let mut worst: f64 = 0.0;
        for k in ResourceKind::ALL {
            let d = self.get(k);
            if d <= 0.0 {
                continue;
            }
            let c = capacity.get(k);
            if c <= 0.0 {
                return f64::INFINITY;
            }
            worst = worst.max(d / c);
        }
        worst
    }

    /// True when every component is ≥ 0 and finite.
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|x| x.is_finite() && *x >= 0.0)
    }

    /// Sum of all components — only meaningful as a crude magnitude for
    /// diagnostics, never for admission decisions.
    pub fn magnitude(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Index<ResourceKind> for ResourceVector {
    type Output = f64;
    fn index(&self, k: ResourceKind) -> &f64 {
        &self.0[k.index()]
    }
}

impl IndexMut<ResourceKind> for ResourceVector {
    fn index_mut(&mut self, k: ResourceKind) -> &mut f64 {
        &mut self.0[k.index()]
    }
}

impl Add for ResourceVector {
    type Output = ResourceVector;
    fn add(mut self, rhs: ResourceVector) -> ResourceVector {
        self += rhs;
        self
    }
}

impl AddAssign for ResourceVector {
    fn add_assign(&mut self, rhs: ResourceVector) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a += *b;
        }
    }
}

impl Sub for ResourceVector {
    type Output = ResourceVector;
    /// Saturating at zero: capacities never go negative.
    fn sub(mut self, rhs: ResourceVector) -> ResourceVector {
        self -= rhs;
        self
    }
}

impl SubAssign for ResourceVector {
    fn sub_assign(&mut self, rhs: ResourceVector) {
        for (a, b) in self.0.iter_mut().zip(rhs.0.iter()) {
            *a = (*a - *b).max(0.0);
        }
    }
}

impl fmt::Display for ResourceVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[cpu={:.1} mem={:.1} net={:.1} io={:.1} pwr={:.1}]",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_indexes_are_distinct_and_dense() {
        let mut seen = [false; 5];
        for k in ResourceKind::ALL {
            assert!(!seen[k.index()]);
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn vector_accessors() {
        let v = ResourceVector::new(100.0, 256.0, 1000.0, 40.0, 500.0);
        assert_eq!(v.get(ResourceKind::Cpu), 100.0);
        assert_eq!(v[ResourceKind::Memory], 256.0);
        let s = ResourceVector::single(ResourceKind::Energy, 5.0);
        assert_eq!(s[ResourceKind::Energy], 5.0);
        assert_eq!(s[ResourceKind::Cpu], 0.0);
    }

    #[test]
    fn fits_within_is_componentwise() {
        let demand = ResourceVector::new(50.0, 10.0, 0.0, 0.0, 0.0);
        let cap = ResourceVector::new(100.0, 256.0, 1000.0, 40.0, 500.0);
        assert!(demand.fits_within(&cap));
        let too_big = ResourceVector::new(150.0, 10.0, 0.0, 0.0, 0.0);
        assert!(!too_big.fits_within(&cap));
    }

    #[test]
    fn subtraction_saturates() {
        let a = ResourceVector::new(10.0, 0.0, 0.0, 0.0, 0.0);
        let b = ResourceVector::new(25.0, 5.0, 0.0, 0.0, 0.0);
        let c = a - b;
        assert_eq!(c[ResourceKind::Cpu], 0.0);
        assert_eq!(c[ResourceKind::Memory], 0.0);
    }

    #[test]
    fn addition_is_componentwise() {
        let a = ResourceVector::new(1.0, 2.0, 3.0, 4.0, 5.0);
        let b = ResourceVector::new(5.0, 4.0, 3.0, 2.0, 1.0);
        let c = a + b;
        for k in ResourceKind::ALL {
            assert_eq!(c[k], 6.0);
        }
    }

    #[test]
    fn max_ratio_identifies_bottleneck() {
        let cap = ResourceVector::new(100.0, 100.0, 100.0, 100.0, 100.0);
        let d = ResourceVector::new(50.0, 80.0, 10.0, 0.0, 0.0);
        assert!((d.max_ratio(&cap) - 0.8).abs() < 1e-12);
        let impossible = ResourceVector::single(ResourceKind::IoBus, 1.0);
        let no_io = ResourceVector::new(100.0, 100.0, 100.0, 0.0, 100.0);
        assert_eq!(impossible.max_ratio(&no_io), f64::INFINITY);
        assert_eq!(ResourceVector::ZERO.max_ratio(&cap), 0.0);
    }

    #[test]
    fn validity() {
        assert!(ResourceVector::new(1.0, 0.0, 0.0, 0.0, 0.0).is_valid());
        assert!(!ResourceVector::new(-1.0, 0.0, 0.0, 0.0, 0.0).is_valid());
        assert!(!ResourceVector::new(f64::NAN, 0.0, 0.0, 0.0, 0.0).is_valid());
    }

    #[test]
    fn display_formats() {
        let v = ResourceVector::new(1.0, 2.0, 3.0, 4.0, 5.0);
        assert!(v.to_string().contains("cpu=1.0"));
        assert_eq!(ResourceKind::Cpu.unit(), "MIPS");
        assert_eq!(ResourceKind::NetBandwidth.to_string(), "net-bandwidth");
    }
}
