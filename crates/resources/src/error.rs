//! Resource-layer errors.

use std::fmt;

use crate::kind::ResourceKind;

/// Errors from reservation and admission operations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResourceError {
    /// The requested amount exceeds what the manager has available.
    Insufficient {
        /// Resource kind that ran out.
        kind: ResourceKind,
        /// Amount requested.
        requested: f64,
        /// Amount actually available.
        available: f64,
    },
    /// NaN, infinite or negative amount.
    InvalidAmount,
    /// Commit/release of a hold id this manager never issued (or already
    /// released/expired).
    UnknownHold,
}

impl fmt::Display for ResourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceError::Insufficient {
                kind,
                requested,
                available,
            } => write!(
                f,
                "insufficient {kind}: requested {requested:.2}, available {available:.2}"
            ),
            ResourceError::InvalidAmount => write!(f, "amount must be finite and non-negative"),
            ResourceError::UnknownHold => write!(f, "unknown or already-released hold"),
        }
    }
}

impl std::error::Error for ResourceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_kind_and_amounts() {
        let e = ResourceError::Insufficient {
            kind: ResourceKind::Cpu,
            requested: 50.0,
            available: 10.0,
        };
        let s = e.to_string();
        assert!(s.contains("cpu"));
        assert!(s.contains("50.00"));
        assert!(s.contains("10.00"));
    }
}
