//! # qosc-resources — Resource Managers, reservations & admission control
//!
//! Implements the resource substrate of §4.1/§5 of *Dynamic QoS-Aware
//! Coalition Formation*: the "limited hardware or software quantities
//! supplied by a specific node", the Resource Manager objects that grant
//! them, the schedulability predicate the §5 heuristic loops on, and the
//! a-priori QoS→resource demand analysis the paper assumes.
//!
//! * [`ResourceKind`], [`ResourceVector`] — the resource space.
//! * [`ResourceManager`], [`NodeLedger`] — per-resource two-phase
//!   reservation (tentative hold during negotiation, committed grant after
//!   award, expiry for dead negotiations).
//! * [`AdmissionControl`], [`SchedulingPolicy`] — "while the set of tasks
//!   is not schedulable…" (§5).
//! * [`DemandModel`], [`LinearDemandModel`] — quality → resource demand.
//! * [`DeviceClass`], [`NodeProfile`] — the heterogeneous population of §2.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod admission;
mod demand;
mod error;
mod kind;
mod manager;
mod profile;

pub use admission::{AdmissionControl, SchedulingPolicy};
pub use demand::{av_demand_model, DemandModel, DemandTerm, Feature, LinearDemandModel};
pub use error::ResourceError;
pub use kind::{ResourceKind, ResourceVector};
pub use manager::{HoldId, HoldState, NodeLedger, ResourceManager, VectorHold};
pub use profile::{DeviceClass, NodeProfile};
