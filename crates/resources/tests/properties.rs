//! Property-based tests over the resource ledger's conservation invariants.

use proptest::prelude::*;
use qosc_resources::{NodeLedger, ResourceKind, ResourceVector};

fn small_demand() -> impl Strategy<Value = ResourceVector> {
    (
        0.0f64..30.0,
        0.0f64..30.0,
        0.0f64..30.0,
        0.0f64..30.0,
        0.0f64..30.0,
    )
        .prop_map(|(a, b, c, d, e)| ResourceVector::new(a, b, c, d, e))
}

proptest! {
    /// Conservation: after any sequence of prepare/commit/release, for every
    /// kind `available + held == capacity` (within fp tolerance), and
    /// releasing everything restores full capacity.
    #[test]
    fn ledger_conserves_capacity(demands in proptest::collection::vec(small_demand(), 1..12)) {
        let cap = ResourceVector::new(100.0, 100.0, 100.0, 100.0, 100.0);
        let mut ledger = NodeLedger::new(cap);
        let mut holds = Vec::new();
        for d in &demands {
            if let Ok(h) = ledger.prepare(d, 1000) {
                holds.push(h);
            }
            for k in ResourceKind::ALL {
                let avail = ledger.available().get(k);
                let held = ledger.manager(k).held();
                prop_assert!((avail + held - cap.get(k)).abs() < 1e-6);
            }
        }
        // Commit half, release the rest; committed stay held.
        let mid = holds.len() / 2;
        for h in &holds[..mid] {
            ledger.commit(*h).unwrap();
        }
        for h in &holds[mid..] {
            ledger.release(*h);
        }
        // Expiry never touches committed grants.
        ledger.expire(u64::MAX);
        for h in &holds[..mid] {
            ledger.release(*h);
        }
        for k in ResourceKind::ALL {
            prop_assert!((ledger.available().get(k) - cap.get(k)).abs() < 1e-6);
        }
    }

    /// A prepared demand always fit availability at the time of the call,
    /// and a rejected one exceeded it in some component.
    #[test]
    fn prepare_respects_availability(demands in proptest::collection::vec(small_demand(), 1..12)) {
        let cap = ResourceVector::new(50.0, 50.0, 50.0, 50.0, 50.0);
        let mut ledger = NodeLedger::new(cap);
        for d in &demands {
            let avail_before = ledger.available();
            match ledger.prepare(d, 10) {
                Ok(_) => prop_assert!(d.fits_within(&avail_before)),
                Err(_) => prop_assert!(!d.fits_within(&avail_before)),
            }
        }
    }

    /// Failed vector prepare must not leak partial holds.
    #[test]
    fn failed_prepare_leaks_nothing(cpu in 60.0f64..200.0) {
        // Memory capacity is tiny, so this demand always fails on memory
        // after cpu may have been held.
        let cap = ResourceVector::new(100.0, 1.0, 100.0, 100.0, 100.0);
        let mut ledger = NodeLedger::new(cap);
        let demand = ResourceVector::new(cpu.min(90.0), 50.0, 0.0, 0.0, 0.0);
        prop_assert!(ledger.prepare(&demand, 10).is_err());
        prop_assert_eq!(ledger.available(), cap);
    }
}
