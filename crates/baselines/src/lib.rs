//! # qosc-baselines — comparator allocation policies
//!
//! The paper argues (§1, §4, §7) that QoS-aware coalition formation beats
//! both single-node execution and QoS-blind placement. This crate provides
//! the comparators that turn those claims into measurable experiments:
//!
//! | Policy | What it models |
//! |---|---|
//! | [`single_node`] | no cooperation: everything on the requester |
//! | [`random_alloc`] | cooperation without evaluation |
//! | [`greedy_least_loaded`] | classic load balancing, QoS-blind |
//! | [`protocol_emulation`] | the paper's §4–§6 protocol, offline |
//! | [`exhaustive_optimal`] | the lexicographic optimum (small instances) |
//!
//! All policies run on a common [`Instance`] snapshot and share the §5
//! degradation heuristic, isolating *placement policy* as the only
//! variable. The `builders` module provides ready-made instances for
//! benches and tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builders;
mod instance;
mod policies;

pub use instance::{
    formulate_on_node, Allocation, Instance, OfflineNode, OfflineTask, Pid, Placement,
};
pub use policies::{
    aggregate_cpu, exhaustive_optimal, greedy_least_loaded, protocol_emulation,
    protocol_emulation_with, random_alloc, single_node, ProposalStrategy,
};
