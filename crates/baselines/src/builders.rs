//! Ready-made instance builders shared by tests, benches and the
//! experiment harness.

use std::collections::HashMap;
use std::sync::Arc;

use qosc_core::{EvalConfig, OrganizerStrategy, ProviderStrategy};
use qosc_resources::{av_demand_model, ResourceVector, SchedulingPolicy};
use qosc_spec::{catalog, TaskId};

use crate::instance::{Instance, OfflineNode, OfflineTask};

/// Builds an instance over the catalog's A/V spec: one node per entry of
/// `cpus` (node 0 = requester), each with the given CPU and generous other
/// resources, and `tasks` surveillance tasks.
pub fn small_instance(cpus: &[f64], tasks: usize) -> Instance {
    let spec = catalog::av_spec();
    let model: Arc<dyn qosc_resources::DemandModel> = Arc::new(av_demand_model(&spec));
    let nodes = cpus
        .iter()
        .enumerate()
        .map(|(i, &cpu)| {
            let mut models: HashMap<String, Arc<dyn qosc_resources::DemandModel>> = HashMap::new();
            models.insert(spec.name().to_string(), Arc::clone(&model));
            OfflineNode {
                id: i as u32,
                capacity: ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
                link_kbps: 1000.0,
                policy: SchedulingPolicy::Edf,
                models,
                reward: None,
                chain: ProviderStrategy::default(),
            }
        })
        .collect();
    let tasks = (0..tasks)
        .map(|i| {
            OfflineTask::new(
                TaskId(i as u32),
                spec.clone(),
                catalog::surveillance_request()
                    .resolve(&spec)
                    .expect("catalog request matches catalog spec"),
                100_000,
                10_000,
            )
        })
        .collect();
    Instance {
        requester: 0,
        nodes,
        tasks,
        eval: EvalConfig::default(),
        chain: OrganizerStrategy::default(),
    }
}

/// Same as [`small_instance`] but with the demanding video-conference
/// request, which needs ~64 MIPS at preferred quality.
pub fn conference_instance(cpus: &[f64], tasks: usize) -> Instance {
    let mut inst = small_instance(cpus, 0);
    let spec = catalog::av_spec();
    inst.tasks = (0..tasks)
        .map(|i| {
            OfflineTask::new(
                TaskId(i as u32),
                spec.clone(),
                catalog::video_conference_request()
                    .resolve(&spec)
                    .expect("catalog request matches catalog spec"),
                500_000,
                50_000,
            )
        })
        .collect();
    inst
}
