//! Offline allocation instances.
//!
//! Baselines and the exhaustive optimum operate on a *snapshot* of the
//! system — nodes with capacities and the task set — rather than through
//! the message protocol, so that allocation policies can be compared on
//! identical inputs without protocol noise (experiments F1, F2, F4, T3).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};

use qosc_core::{
    local_reward, CompiledRequest, EvalConfig, LinearPenalty, OrganizerStrategy, PreparedTask,
    ProviderStrategy, RewardModel,
};
use qosc_resources::{AdmissionControl, DemandModel, ResourceVector, SchedulingPolicy};
use qosc_spec::{QosSpec, ResolvedRequest, TaskId};

/// The shared default reward model (`reward: None` nodes). One static
/// `Arc` so every such node keys the same per-task compile cache entry.
fn default_reward() -> &'static Arc<dyn RewardModel> {
    static DEFAULT: OnceLock<Arc<dyn RewardModel>> = OnceLock::new();
    DEFAULT.get_or_init(|| Arc::new(LinearPenalty::default()))
}

/// Identity of an `Arc<dyn _>` by data pointer (vtable-address-agnostic).
fn data_ptr<T: ?Sized>(a: &Arc<T>) -> *const u8 {
    Arc::as_ptr(a) as *const u8
}

/// Node id type shared with `qosc-core`.
pub type Pid = qosc_core::Pid;

/// One node of an offline instance.
pub struct OfflineNode {
    /// Node id.
    pub id: Pid,
    /// Total capacity (the snapshot assumes it is all available).
    pub capacity: ResourceVector,
    /// Declared payload bandwidth (kbit/s) for comm-cost estimation.
    pub link_kbps: f64,
    /// CPU scheduling policy.
    pub policy: SchedulingPolicy,
    /// Demand models by spec name.
    pub models: HashMap<String, Arc<dyn DemandModel>>,
    /// The node's local reward model for the §5 heuristic (nodes may run
    /// different degradation policies; `None` = linear default).
    pub reward: Option<Arc<dyn RewardModel>>,
    /// Provider-side strategy chain (participation gates, offer review);
    /// the default empty chain reproduces the unconditioned provider.
    pub chain: ProviderStrategy,
}

impl OfflineNode {
    /// The reward model this node formulates and prices with.
    pub fn reward_model(&self) -> &dyn RewardModel {
        match self.reward.as_deref() {
            Some(r) => r,
            None => default_reward().as_ref(),
        }
    }
}

impl OfflineNode {
    /// Looks up the demand model for a spec.
    pub fn model_for(&self, spec: &QosSpec) -> Option<&Arc<dyn DemandModel>> {
        self.models.get(spec.name())
    }
}

/// One task of an offline instance (request already resolved).
pub struct OfflineTask {
    /// Task id.
    pub id: TaskId,
    /// Application spec.
    pub spec: QosSpec,
    /// Resolved user request.
    pub request: ResolvedRequest,
    /// Input payload bytes.
    pub input_bytes: u64,
    /// Output payload bytes.
    pub output_bytes: u64,
    /// Lazily-compiled evaluation tables, keyed by the [`EvalConfig`]
    /// they were compiled under (one compile per task per config, shared
    /// by every policy and round that prices this task).
    compiled: Mutex<Option<(EvalConfig, Arc<CompiledRequest>)>>,
    /// Lazily-compiled formulation tables ([`PreparedTask`]), keyed by
    /// `(reward model, demand model)` identity — multi-round policies
    /// (the F-series protocol emulation) re-formulate this task on every
    /// node every round, and recompiling penalty grids per round was a
    /// dominant cost.
    prepared: Mutex<Vec<PreparedEntry>>,
}

/// One cached formulation compile of a task (see [`OfflineTask::prepared`]).
struct PreparedEntry {
    reward: Arc<dyn RewardModel>,
    prepared: Arc<PreparedTask>,
}

impl OfflineTask {
    /// Creates a task (the compiled evaluator is built on first use).
    pub fn new(
        id: TaskId,
        spec: QosSpec,
        request: ResolvedRequest,
        input_bytes: u64,
        output_bytes: u64,
    ) -> Self {
        Self {
            id,
            spec,
            request,
            input_bytes,
            output_bytes,
            compiled: Mutex::new(None),
            prepared: Mutex::new(Vec::new()),
        }
    }

    /// The task compiled for repeated formulation under `(reward, model)`.
    /// Compiles on first use per distinct pair (matched by `Arc` data
    /// pointer; the stored clones keep the pointers stable) and serves the
    /// cached tables from then on.
    pub fn prepared(
        &self,
        reward: &Arc<dyn RewardModel>,
        model: &Arc<dyn DemandModel>,
    ) -> Arc<PreparedTask> {
        let mut guard = self.prepared.lock().expect("prepare cache poisoned");
        if let Some(e) = guard.iter().find(|e| {
            std::ptr::eq(data_ptr(&e.reward), data_ptr(reward))
                && std::ptr::eq(data_ptr(e.prepared.demand_model()), data_ptr(model))
        }) {
            return Arc::clone(&e.prepared);
        }
        let prepared = Arc::new(PreparedTask::compile(
            self.spec.clone(),
            Arc::new(self.request.clone()),
            reward.as_ref(),
            Arc::clone(model),
        ));
        guard.push(PreparedEntry {
            reward: Arc::clone(reward),
            prepared: Arc::clone(&prepared),
        });
        prepared
    }

    /// The task's compiled evaluation tables under `eval`. Compiles on
    /// first use and whenever the config differs from the cached one —
    /// ablations (T2) legitimately re-price the same instance under
    /// several [`EvalConfig`]s, so the cache is keyed, not write-once.
    pub fn compiled(&self, eval: EvalConfig) -> Arc<CompiledRequest> {
        let mut guard = self.compiled.lock().expect("compile cache poisoned");
        match guard.as_ref() {
            Some((cached, compiled)) if *cached == eval => Arc::clone(compiled),
            _ => {
                let compiled = Arc::new(CompiledRequest::compile(&self.spec, &self.request, eval));
                *guard = Some((eval, Arc::clone(&compiled)));
                compiled
            }
        }
    }
}

/// A complete allocation problem snapshot.
pub struct Instance {
    /// The node where the user requested the service (comm cost 0 there).
    pub requester: Pid,
    /// Available nodes (must include the requester to allow local wins).
    pub nodes: Vec<OfflineNode>,
    /// The service's independent tasks.
    pub tasks: Vec<OfflineTask>,
    /// Evaluation knobs shared by all policies.
    pub eval: EvalConfig,
    /// Organizer-side strategy chain (candidate review, winner selection,
    /// retry); the default empty chain reproduces the §4.2 organizer.
    pub chain: OrganizerStrategy,
}

/// One task's placement in an allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// Executing node.
    pub node: Pid,
    /// Ladder level per requested attribute.
    pub levels: Vec<usize>,
    /// Eq. 2 distance of the served quality.
    pub distance: f64,
    /// Payload shipping cost (seconds; 0 when local).
    pub comm_cost: f64,
    /// Resource demand of the placed task at the served quality.
    pub demand: ResourceVector,
    /// Per-task eq. 1 reward at the served levels, under the serving
    /// node's reward model (what reserve-price components threshold).
    pub reward: f64,
}

/// Result of an allocation policy.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Allocation {
    /// Placement per task.
    pub placements: BTreeMap<TaskId, Placement>,
    /// Tasks no policy candidate could serve.
    pub unassigned: Vec<TaskId>,
}

impl Allocation {
    /// Σ distance over placed tasks.
    pub fn total_distance(&self) -> f64 {
        self.placements.values().map(|p| p.distance).sum()
    }

    /// Mean distance over placed tasks (0 when none).
    pub fn mean_distance(&self) -> f64 {
        if self.placements.is_empty() {
            0.0
        } else {
            self.total_distance() / self.placements.len() as f64
        }
    }

    /// Σ comm cost over placed tasks.
    pub fn total_comm_cost(&self) -> f64 {
        self.placements.values().map(|p| p.comm_cost).sum()
    }

    /// Number of distinct executing nodes.
    pub fn distinct_members(&self) -> usize {
        let mut v: Vec<Pid> = self.placements.values().map(|p| p.node).collect();
        v.sort_unstable();
        v.dedup();
        v.len()
    }

    /// True when every task was placed.
    pub fn complete(&self) -> bool {
        self.unassigned.is_empty()
    }

    /// Fraction of tasks placed.
    pub fn acceptance_ratio(&self, total_tasks: usize) -> f64 {
        if total_tasks == 0 {
            1.0
        } else {
            self.placements.len() as f64 / total_tasks as f64
        }
    }
}

/// Jointly formulates the given tasks on `node` (§5 heuristic) and prices
/// the outcome: returns per-task `(levels, distance, comm_cost, demand)`,
/// or `None` if even fully degraded the set does not fit.
pub fn formulate_on_node(
    instance: &Instance,
    node: &OfflineNode,
    task_ids: &[TaskId],
) -> Option<Vec<(TaskId, Placement)>> {
    formulate_on_node_with_capacity(instance, node, &node.capacity, task_ids)
}

/// [`formulate_on_node`] against an explicit remaining capacity — used by
/// multi-round policies that track what earlier rounds already committed.
pub fn formulate_on_node_with_capacity(
    instance: &Instance,
    node: &OfflineNode,
    capacity: &ResourceVector,
    task_ids: &[TaskId],
) -> Option<Vec<(TaskId, Placement)>> {
    if task_ids.is_empty() {
        return Some(Vec::new());
    }
    let tasks = lookup_tasks(instance, task_ids)?;
    let prepared = prepare_tasks(node, &tasks)?;
    if prepared.len() < tasks.len() {
        return None; // some task's demand model is unknown on this node
    }
    let refs: Vec<&PreparedTask> = prepared.iter().map(|p| p.as_ref()).collect();
    let admission = AdmissionControl::new(node.policy, *capacity);
    let out = qosc_core::formulate_prepared(&refs, &admission).ok()?;
    Some(price_outcome(instance, node, &tasks, &out))
}

/// Joint formulation with prefix-feasibility shedding: formulates the
/// largest feasible prefix of `task_ids` on `node` (unknown task ids and
/// tasks whose demand model the node lacks truncate the prefix, exactly
/// like the old shed-one-retry loop did). Returns the priced placements
/// of that prefix — empty when not even one task fits. This is the
/// offline mirror of the joint provider's CFP path (F-series emulation).
pub fn formulate_subset_on_node(
    instance: &Instance,
    node: &OfflineNode,
    capacity: &ResourceVector,
    task_ids: &[TaskId],
) -> Vec<(TaskId, Placement)> {
    if task_ids.is_empty() {
        return Vec::new();
    }
    // Truncate (not bail) at the first unknown id: the old loop shed its
    // way down to the prefix before it.
    let by_id = task_index(instance);
    let tasks: Vec<&OfflineTask> = task_ids
        .iter()
        .map_while(|id| by_id.get(id).copied())
        .collect();
    if tasks.is_empty() {
        return Vec::new();
    }
    let Some(prepared) = prepare_tasks(node, &tasks) else {
        return Vec::new();
    };
    let refs: Vec<&PreparedTask> = prepared.iter().map(|p| p.as_ref()).collect();
    let admission = AdmissionControl::new(node.policy, *capacity);
    let Some((count, out)) = qosc_core::formulate_shedding(&refs, &admission) else {
        return Vec::new();
    };
    price_outcome(instance, node, &tasks[..count], &out)
}

/// One id→task index pass instead of a linear scan per id: joint
/// formulation over large open sets (256-node sweeps announce every
/// task to every node, every round) would otherwise go quadratic.
fn task_index(instance: &Instance) -> HashMap<TaskId, &OfflineTask> {
    instance.tasks.iter().map(|t| (t.id, t)).collect()
}

/// All of `task_ids` resolved against the instance, or `None` if any is
/// unknown.
fn lookup_tasks<'a>(instance: &'a Instance, task_ids: &[TaskId]) -> Option<Vec<&'a OfflineTask>> {
    let by_id = task_index(instance);
    task_ids
        .iter()
        .map(|id| by_id.get(id).copied())
        .collect::<Option<Vec<_>>>()
}

/// Compiles (or serves from each task's cache) the prefix of `tasks` the
/// node can price: stops at the first task whose spec has no demand model
/// here. `None` when the very first task is already unknown.
fn prepare_tasks(node: &OfflineNode, tasks: &[&OfflineTask]) -> Option<Vec<Arc<PreparedTask>>> {
    let reward = match node.reward.as_ref() {
        Some(r) => r,
        None => default_reward(),
    };
    let mut out = Vec::with_capacity(tasks.len());
    for t in tasks {
        let Some(model) = node.model_for(&t.spec) else {
            break;
        };
        out.push(t.prepared(reward, model));
    }
    if out.is_empty() {
        return None;
    }
    Some(out)
}

/// Prices a formulation outcome into per-task placements.
fn price_outcome(
    instance: &Instance,
    node: &OfflineNode,
    tasks: &[&OfflineTask],
    out: &qosc_core::Formulated,
) -> Vec<(TaskId, Placement)> {
    let mut placements = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let distance = t
            .compiled(instance.eval)
            .distance_of_levels(&out.levels[i])
            .expect("formulated levels are in range");
        let comm_cost = if node.id == instance.requester {
            0.0
        } else if node.link_kbps > 0.0 {
            (t.input_bytes + t.output_bytes) as f64 * 8.0 / (node.link_kbps * 1000.0)
        } else {
            f64::INFINITY
        };
        let reward = local_reward(&t.request, &out.levels[i], node.reward_model());
        placements.push((
            t.id,
            Placement {
                node: node.id,
                levels: out.levels[i].clone(),
                distance,
                comm_cost,
                demand: out.demands[i],
                reward,
            },
        ));
    }
    placements
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::small_instance;

    #[test]
    fn formulate_on_rich_node_places_all_preferred() {
        let inst = small_instance(&[1000.0, 1000.0], 2);
        let ids: Vec<TaskId> = inst.tasks.iter().map(|t| t.id).collect();
        let placements = formulate_on_node(&inst, &inst.nodes[1], &ids).unwrap();
        assert_eq!(placements.len(), 2);
        for (_, p) in &placements {
            assert_eq!(p.distance, 0.0);
            assert!(p.comm_cost > 0.0); // node 1 is remote
        }
    }

    #[test]
    fn requester_has_zero_comm_cost() {
        let inst = small_instance(&[1000.0, 1000.0], 1);
        let ids = vec![TaskId(0)];
        let placements = formulate_on_node(&inst, &inst.nodes[0], &ids).unwrap();
        assert_eq!(placements[0].1.comm_cost, 0.0);
    }

    #[test]
    fn infeasible_node_returns_none() {
        let inst = small_instance(&[0.5, 1000.0], 1);
        let ids = vec![TaskId(0)];
        assert!(formulate_on_node(&inst, &inst.nodes[0], &ids).is_none());
    }

    #[test]
    fn compiled_cache_tracks_eval_config_changes() {
        // T2 re-prices one instance under several EvalConfigs by mutating
        // `instance.eval`; the per-task compile cache must follow suit
        // rather than serve the first config's tables forever.
        use qosc_core::{DifMode, WeightScheme};
        let inst = small_instance(&[1000.0], 1);
        let t = &inst.tasks[0];
        // Degrade frame_rate to level 5 (value 5, preferred 10).
        let absolute = t
            .compiled(EvalConfig::default())
            .distance_of_levels(&[5, 0, 0, 0])
            .unwrap();
        let signed = t
            .compiled(EvalConfig {
                weights: WeightScheme::PaperLinear,
                dif: DifMode::SignedPaperLiteral,
            })
            .distance_of_levels(&[5, 0, 0, 0])
            .unwrap();
        assert!(absolute > 0.0, "absolute dif penalises undershoot");
        assert!(signed < 0.0, "signed dif rewards undershoot");
        // Switching back recompiles again (keyed cache, not write-once).
        let absolute2 = t
            .compiled(EvalConfig::default())
            .distance_of_levels(&[5, 0, 0, 0])
            .unwrap();
        assert_eq!(absolute, absolute2);
    }

    #[test]
    fn allocation_summaries() {
        let mut a = Allocation::default();
        a.placements.insert(
            TaskId(0),
            Placement {
                node: 1,
                levels: vec![0],
                distance: 0.2,
                comm_cost: 1.0,
                demand: ResourceVector::ZERO,
                reward: 0.0,
            },
        );
        a.placements.insert(
            TaskId(1),
            Placement {
                node: 1,
                levels: vec![0],
                distance: 0.4,
                comm_cost: 0.5,
                demand: ResourceVector::ZERO,
                reward: 0.0,
            },
        );
        a.unassigned.push(TaskId(2));
        assert!((a.total_distance() - 0.6).abs() < 1e-12);
        assert!((a.mean_distance() - 0.3).abs() < 1e-12);
        assert!((a.total_comm_cost() - 1.5).abs() < 1e-12);
        assert_eq!(a.distinct_members(), 1);
        assert!(!a.complete());
        assert!((a.acceptance_ratio(3) - 2.0 / 3.0).abs() < 1e-12);
    }
}
