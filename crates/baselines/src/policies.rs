//! Comparator allocation policies.
//!
//! * [`single_node`] — everything on the requester (what happens without
//!   coalitions; the paper's implicit baseline in §1/§7).
//! * [`random_alloc`] — each task on a uniformly random capable node.
//! * [`greedy_least_loaded`] — classic load balancing: tasks go to the
//!   node with the most remaining CPU, ignoring QoS preferences.
//! * [`protocol_emulation`] — the paper's negotiation outcome computed
//!   offline: every node formulates jointly for the whole task set (§5),
//!   the organizer evaluates (§6) and applies the §4.2 tie-break.
//!
//! All policies degrade quality via the same §5 heuristic, so differences
//! in outcome are attributable purely to *placement*.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use qosc_core::strategy::{AwardContext, CandidateContext, CfpContext, RetryContext, TaskOffer};
use qosc_core::{local_reward, Candidate, TieBreak};
use qosc_resources::ResourceVector;
use qosc_spec::TaskId;

use crate::instance::{formulate_on_node, Allocation, Instance, OfflineNode, Pid};

/// Everything runs on the requester node; if the full set does not fit
/// even degraded, tasks are shed from the tail (mirroring the provider
/// engine's behaviour).
pub fn single_node(instance: &Instance) -> Allocation {
    let Some(node) = instance.nodes.iter().find(|n| n.id == instance.requester) else {
        return Allocation {
            unassigned: instance.tasks.iter().map(|t| t.id).collect(),
            ..Default::default()
        };
    };
    let all: Vec<TaskId> = instance.tasks.iter().map(|t| t.id).collect();
    let mut count = all.len();
    while count > 0 {
        if let Some(placements) = formulate_on_node(instance, node, &all[..count]) {
            let mut alloc = Allocation::default();
            for (id, p) in placements {
                alloc.placements.insert(id, p);
            }
            alloc.unassigned = all[count..].to_vec();
            return alloc;
        }
        count -= 1;
    }
    Allocation {
        unassigned: all,
        ..Default::default()
    }
}

/// Sequential assignment helper shared by random and greedy policies:
/// tries to place `task` on `node` given what that node already carries,
/// by re-formulating the node's whole set jointly.
fn try_place(
    instance: &Instance,
    node: &OfflineNode,
    carried: &[TaskId],
    task: TaskId,
) -> Option<Vec<(TaskId, crate::instance::Placement)>> {
    let mut set = carried.to_vec();
    set.push(task);
    formulate_on_node(instance, node, &set)
}

/// Each task goes to a uniformly random node able to serve it (after
/// degradation); unplaceable tasks stay unassigned.
pub fn random_alloc(instance: &Instance, rng: &mut impl Rng) -> Allocation {
    let mut carried: BTreeMap<Pid, Vec<TaskId>> = BTreeMap::new();
    let mut alloc = Allocation::default();
    for task in &instance.tasks {
        let mut order: Vec<usize> = (0..instance.nodes.len()).collect();
        order.shuffle(rng);
        let mut placed = false;
        for idx in order {
            let node = &instance.nodes[idx];
            let set = carried.entry(node.id).or_default();
            if let Some(placements) = try_place(instance, node, set, task.id) {
                set.push(task.id);
                // Re-formulation may have re-levelled earlier tasks on this
                // node; refresh all of them.
                for (id, p) in placements {
                    alloc.placements.insert(id, p);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            alloc.unassigned.push(task.id);
        }
    }
    alloc
}

/// Tasks go to the node with the most remaining CPU (capacity minus the
/// demands it already carries), re-formulating jointly per node.
pub fn greedy_least_loaded(instance: &Instance) -> Allocation {
    let mut carried: BTreeMap<Pid, Vec<TaskId>> = BTreeMap::new();
    let mut remaining_cpu: BTreeMap<Pid, f64> = instance
        .nodes
        .iter()
        .map(|n| (n.id, n.capacity.get(qosc_resources::ResourceKind::Cpu)))
        .collect();
    let mut alloc = Allocation::default();
    for task in &instance.tasks {
        // Highest remaining CPU first; stable on id for determinism.
        // total_cmp keeps the sort total even if a node advertises a NaN
        // capacity (NaN sorts ahead, fails formulation, and is skipped).
        let mut order: Vec<&OfflineNode> = instance.nodes.iter().collect();
        order.sort_by(|a, b| {
            remaining_cpu[&b.id]
                .total_cmp(&remaining_cpu[&a.id])
                .then(a.id.cmp(&b.id))
        });
        let mut placed = false;
        for node in order {
            let set = carried.entry(node.id).or_default();
            if let Some(placements) = try_place(instance, node, set, task.id) {
                set.push(task.id);
                // Track CPU actually consumed on this node. Each placement
                // already carries its demand at the served quality — no
                // need to re-derive it from the demand model per task.
                let used: f64 = placements
                    .iter()
                    .map(|(_, p)| p.demand.get(qosc_resources::ResourceKind::Cpu))
                    .sum();
                remaining_cpu.insert(
                    node.id,
                    node.capacity.get(qosc_resources::ResourceKind::Cpu) - used,
                );
                for (id, p) in placements {
                    alloc.placements.insert(id, p);
                }
                placed = true;
                break;
            }
        }
        if !placed {
            alloc.unassigned.push(task.id);
        }
    }
    alloc
}

/// How a provider prices a multi-task Call-for-Proposals.
///
/// §5 is written over "the set of tasks", i.e. one *joint* formulation
/// degrading the whole set until it is schedulable together
/// ([`ProposalStrategy::Joint`]). A defensible alternative reading prices
/// tasks one at a time, each against the capacity left after the offers
/// already made in the same bundle ([`ProposalStrategy::Sequential`]).
/// Joint is pessimistic — every offer assumes the node wins *everything*
/// announced — while sequential offers head-of-list tasks near-preferred
/// quality. Experiment F4 quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProposalStrategy {
    /// Paper-literal §5: one joint degradation over the announced set.
    Joint,
    /// Price tasks one at a time against the remaining bundle capacity.
    Sequential,
}

/// The paper's protocol with the default joint (§5-literal) strategy.
pub fn protocol_emulation(instance: &Instance, tiebreak: &TieBreak) -> Allocation {
    protocol_emulation_with(instance, tiebreak, ProposalStrategy::Joint)
}

/// The paper's protocol computed offline on the snapshot, including the
/// organizer's retry rounds: each round every node formulates proposals
/// for the still-open tasks against its *remaining* capacity (earlier
/// rounds' awards stay committed), candidates are evaluated and the §4.2
/// tie-break selects winners; the loop ends when every task is placed or
/// a round makes no progress.
pub fn protocol_emulation_with(
    instance: &Instance,
    tiebreak: &TieBreak,
    strategy: ProposalStrategy,
) -> Allocation {
    use crate::instance::{formulate_on_node_with_capacity, formulate_subset_on_node, OfflineTask};
    let by_id: std::collections::HashMap<TaskId, &OfflineTask> =
        instance.tasks.iter().map(|t| (t.id, t)).collect();
    let mut remaining: Vec<TaskId> = instance.tasks.iter().map(|t| t.id).collect();
    let mut capacities: BTreeMap<Pid, ResourceVector> =
        instance.nodes.iter().map(|n| (n.id, n.capacity)).collect();
    let mut alloc = Allocation::default();
    let mut round: u32 = 0;
    while !remaining.is_empty() {
        let mut candidates: BTreeMap<TaskId, Vec<Candidate>> = BTreeMap::new();
        let mut offers: BTreeMap<(Pid, TaskId), crate::instance::Placement> = BTreeMap::new();
        for t in &remaining {
            candidates.insert(*t, Vec::new());
        }
        for node in &instance.nodes {
            let cap = capacities[&node.id];
            // Provider-side participation gate (battery-style components);
            // the empty chain always participates.
            let cfp = CfpContext {
                node: node.id,
                round,
                task_count: remaining.len(),
                available: cap,
                capacity: node.capacity,
            };
            if !node.chain.participates(&cfp) {
                continue;
            }
            let placements = match strategy {
                // Mirror the joint provider: one formulation over the open
                // set, the engine's prefix-feasibility pre-check shedding
                // from the tail when it cannot fit.
                ProposalStrategy::Joint => {
                    formulate_subset_on_node(instance, node, &cap, &remaining)
                }
                // Sequential provider: each task priced alone against what
                // is left after the offers already in this bundle (the
                // reservation ledger serialises holds the same way).
                ProposalStrategy::Sequential => {
                    let mut left = cap;
                    let mut out = Vec::new();
                    for t in &remaining {
                        if let Some(mut p) =
                            formulate_on_node_with_capacity(instance, node, &left, &[*t])
                        {
                            let (id, placement) = p.pop().expect("one task in, one out");
                            left -= placement.demand;
                            out.push((id, placement));
                        }
                    }
                    out
                }
            };
            for (id, mut p) in placements {
                let task = by_id[&id];
                // Provider-side offer review: components may withhold the
                // offer (reserve price) or degrade/mark it up (selfish).
                let mut offer = TaskOffer {
                    task: id,
                    levels: p.levels.clone(),
                    ladder: task.request.ladder_lengths(),
                    demand: p.demand,
                    reward: p.reward,
                    task_reward: p.reward,
                };
                if !node.chain.review_offer(&cfp, &mut offer) {
                    continue; // withheld
                }
                if offer.levels != p.levels {
                    // A component re-levelled the offer: clamp to the
                    // ladders and re-price distance and reward at what
                    // will actually be served.
                    let levels: Vec<usize> = offer
                        .levels
                        .iter()
                        .zip(offer.ladder.iter())
                        .map(|(&l, &len)| l.min(len.saturating_sub(1)))
                        .collect();
                    p.distance = task
                        .compiled(instance.eval)
                        .distance_of_levels(&levels)
                        .expect("clamped levels are in range");
                    p.reward = local_reward(&task.request, &levels, node.reward_model());
                    p.levels = levels;
                }
                // Organizer-side candidate review: rescoring (reputation)
                // affects selection only; the placement keeps the true
                // eq. 2 distance of the served quality.
                let mut candidate = Candidate {
                    node: node.id,
                    distance: p.distance,
                    comm_cost: p.comm_cost,
                };
                let cctx = CandidateContext {
                    organizer: instance.requester,
                    task: id,
                    round,
                };
                if !instance.chain.review_candidate(&cctx, &mut candidate) {
                    continue; // rejected
                }
                candidates.entry(id).or_default().push(candidate);
                offers.insert((node.id, id), p);
            }
        }
        let selection = instance.chain.select(&candidates, tiebreak);
        let mut placed_any = false;
        for (task, node) in selection.assignments {
            let p = offers
                .remove(&(node, task))
                .expect("winner came from an offer");
            let winner = instance
                .nodes
                .iter()
                .find(|n| n.id == node)
                .expect("winner is a known node");
            if !winner.chain.accepts_award(&AwardContext { node, task }) {
                continue; // provider declined the award; task stays open
            }
            let cap = capacities.get_mut(&node).expect("winner is a known node");
            *cap -= p.demand;
            alloc.placements.insert(task, p);
            remaining.retain(|t| *t != task);
            placed_any = true;
        }
        if !placed_any {
            break; // no node can serve anything still open
        }
        // Organizer-side retry decision; offline rounds are unbounded, so
        // the default fold keeps looping until a round makes no progress.
        if !remaining.is_empty()
            && !instance.chain.retries(&RetryContext {
                round,
                max_rounds: u32::MAX,
                open_tasks: remaining.len(),
            })
        {
            break;
        }
        round = round.saturating_add(1);
    }
    alloc.unassigned = remaining;
    alloc
}

/// The exhaustive optimum: minimises `(Σ distance, Σ comm, distinct
/// members)` lexicographically over *all* task→node assignments, with
/// per-node joint formulation deciding feasibility and quality. Returns
/// `None` when the state space exceeds `max_states` (it grows as n^t).
pub fn exhaustive_optimal(instance: &Instance, max_states: u64) -> Option<Allocation> {
    let n = instance.nodes.len();
    let t = instance.tasks.len();
    if n == 0 {
        return Some(Allocation {
            unassigned: instance.tasks.iter().map(|x| x.id).collect(),
            ..Default::default()
        });
    }
    let states = (n as u64).checked_pow(t as u32)?;
    if states > max_states {
        return None;
    }
    let all: Vec<TaskId> = instance.tasks.iter().map(|x| x.id).collect();
    let mut best: Option<(f64, f64, usize, Allocation)> = None;
    let mut assignment = vec![0usize; t];
    loop {
        // Evaluate this assignment: group tasks by node, formulate jointly.
        let mut by_node: BTreeMap<Pid, Vec<TaskId>> = BTreeMap::new();
        for (ti, &ni) in assignment.iter().enumerate() {
            by_node
                .entry(instance.nodes[ni].id)
                .or_default()
                .push(all[ti]);
        }
        let mut feasible = true;
        let mut alloc = Allocation::default();
        for (pid, tasks) in &by_node {
            let Some(node) = instance.nodes.iter().find(|x| x.id == *pid) else {
                feasible = false;
                break;
            };
            match formulate_on_node(instance, node, tasks) {
                Some(placements) => {
                    for (id, p) in placements {
                        alloc.placements.insert(id, p);
                    }
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible {
            let key = (
                alloc.total_distance(),
                alloc.total_comm_cost(),
                alloc.distinct_members(),
            );
            let better = match &best {
                None => true,
                Some((d, c, m, _)) => {
                    key.0 < d - 1e-12
                        || ((key.0 - d).abs() <= 1e-12
                            && (key.1 < c - 1e-12 || ((key.1 - c).abs() <= 1e-12 && key.2 < *m)))
                }
            };
            if better {
                best = Some((key.0, key.1, key.2, alloc));
            }
        }
        // Next assignment (odometer).
        let mut i = 0;
        loop {
            if i == t {
                return best.map(|(_, _, _, a)| a).or(Some(Allocation {
                    unassigned: all.clone(),
                    ..Default::default()
                }));
            }
            assignment[i] += 1;
            if assignment[i] < n {
                break;
            }
            assignment[i] = 0;
            i += 1;
        }
    }
}

/// CPU capacity summed over all nodes — handy when normalising load sweeps.
pub fn aggregate_cpu(instance: &Instance) -> f64 {
    instance
        .nodes
        .iter()
        .map(|n| n.capacity.get(qosc_resources::ResourceKind::Cpu))
        .sum::<f64>()
        .max(f64::MIN_POSITIVE)
}

#[allow(unused_imports)]
use qosc_resources::ResourceKind as _ResourceKindForDocs;

#[allow(dead_code)]
fn _assert_send(_: &ResourceVector) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{conference_instance, small_instance};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn single_node_places_all_when_capacity_allows() {
        let inst = small_instance(&[1000.0, 10.0], 3);
        let a = single_node(&inst);
        assert!(a.complete());
        assert_eq!(a.distinct_members(), 1);
        assert_eq!(a.total_comm_cost(), 0.0);
    }

    #[test]
    fn single_node_sheds_when_overloaded() {
        // Fully-degraded surveillance ≈ 5.95 MIPS; 10 MIPS fits one task,
        // never three.
        let inst = small_instance(&[10.0, 1000.0], 3);
        let a = single_node(&inst);
        assert!(!a.complete());
        assert!(!a.placements.is_empty());
    }

    #[test]
    fn protocol_beats_single_node_under_load() {
        // Requester too weak for preferred quality; remote nodes rich.
        let inst = conference_instance(&[30.0, 1000.0, 1000.0], 2);
        let single = single_node(&inst);
        let proto = protocol_emulation(&inst, &TieBreak::default());
        assert!(proto.complete());
        // The coalition serves strictly closer to preferences.
        assert!(proto.total_distance() < single.total_distance());
    }

    #[test]
    fn protocol_prefers_local_when_equal() {
        // Everyone rich: distances all 0; comm-cost tie-break keeps tasks
        // at the requester.
        let inst = small_instance(&[1000.0, 1000.0, 1000.0], 2);
        let a = protocol_emulation(&inst, &TieBreak::default());
        assert!(a.complete());
        assert!(a.placements.values().all(|p| p.node == 0));
        assert_eq!(a.total_comm_cost(), 0.0);
    }

    #[test]
    fn greedy_ignores_preferences_but_balances() {
        let inst = small_instance(&[500.0, 1000.0, 800.0], 2);
        let a = greedy_least_loaded(&inst);
        assert!(a.complete());
        // First task lands on node 1 (most CPU).
        assert_eq!(a.placements[&qosc_spec::TaskId(0)].node, 1);
    }

    #[test]
    fn greedy_survives_nan_capacity() {
        // A node advertising a NaN CPU capacity used to panic the sort
        // (partial_cmp().unwrap()); it must instead be skipped.
        let mut inst = small_instance(&[500.0, 1000.0, 800.0], 2);
        inst.nodes[2].capacity = ResourceVector::new(f64::NAN, 512.0, 10_000.0, 60.0, 10_000.0);
        let a = greedy_least_loaded(&inst);
        assert!(a.complete());
        assert!(a.placements.values().all(|p| p.node != 2));
    }

    #[test]
    fn greedy_matches_formulated_demand_accounting() {
        // The balance decision must reflect the demand of what each node
        // actually carries: with two equal nodes, two tasks split 1/1.
        let inst = small_instance(&[0.5, 400.0, 400.0], 2);
        let a = greedy_least_loaded(&inst);
        assert!(a.complete());
        let nodes: Vec<u32> = a.placements.values().map(|p| p.node).collect();
        assert_ne!(nodes[0], nodes[1], "load balancing must spread tasks");
    }

    #[test]
    fn random_alloc_is_seed_deterministic_and_complete_when_feasible() {
        let inst = small_instance(&[500.0, 500.0, 500.0], 3);
        let a1 = random_alloc(&inst, &mut ChaCha8Rng::seed_from_u64(7));
        let a2 = random_alloc(&inst, &mut ChaCha8Rng::seed_from_u64(7));
        assert_eq!(a1, a2);
        assert!(a1.complete());
    }

    #[test]
    fn exhaustive_matches_or_beats_protocol() {
        let inst = conference_instance(&[40.0, 120.0, 60.0], 2);
        let proto = protocol_emulation(&inst, &TieBreak::default());
        let opt = exhaustive_optimal(&inst, 1_000_000).unwrap();
        assert!(opt.complete());
        assert!(opt.total_distance() <= proto.total_distance() + 1e-9);
    }

    #[test]
    fn exhaustive_respects_state_budget() {
        let inst = small_instance(&[100.0; 10], 10); // 10^10 states
        assert!(exhaustive_optimal(&inst, 1_000_000).is_none());
    }

    #[test]
    fn infeasible_everywhere_leaves_all_unassigned() {
        let inst = small_instance(&[0.5, 0.5], 2);
        for a in [
            single_node(&inst),
            greedy_least_loaded(&inst),
            protocol_emulation(&inst, &TieBreak::default()),
            random_alloc(&inst, &mut ChaCha8Rng::seed_from_u64(1)),
            exhaustive_optimal(&inst, 1_000_000).unwrap(),
        ] {
            assert_eq!(a.placements.len(), 0);
            assert_eq!(a.unassigned.len(), 2);
        }
    }
}
