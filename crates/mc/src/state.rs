//! The explorer's system state and its transition function.
//!
//! A [`McState`] is one vertex of the interleaving graph: the engines of
//! every node, one virtual clock per node, the multiset of in-flight
//! messages, the per-node pending-timer queues, and the fault budgets
//! spent so far. Transitions ([`Choice`]) are exactly the events a real
//! backend would process — deliver a message, fire a node's next timer —
//! plus the fault branches a [`FaultPlan`] licenses: drop or duplicate a
//! delivery, crash-restart a provider node, or split the network into
//! two groups (and heal it again).
//!
//! Partitions are modelled as *blocking*, not dropping: a message whose
//! endpoints sit on opposite sides of the active cut simply is not
//! deliverable (nor droppable nor duplicable) until a heal — it stays in
//! flight, exactly like a frame parked in a radio's retransmit queue.
//! Because a heal transition is always enabled while partitioned, a
//! partitioned state is never quiescent, which keeps the liveness
//! invariant honest: quiescence implies the network healed and every
//! blocked message had its delivery explored.
//!
//! Two modelling decisions keep the graph finite and honest:
//!
//! * **Clocks advance only on timers.** Message delivery is asynchronous
//!   and unordered, so a delivery happens "now" at the receiver; only a
//!   timer firing moves a node's clock (to the timer's deadline). Every
//!   ordering of deliveries relative to deadlines is therefore explored,
//!   which subsumes message reordering — the explorer needs no reorder
//!   budget.
//! * **Per-node timers fire in deadline order.** A node's own timers
//!   share one local clock, so the earliest-armed deadline is the only
//!   enabled timer event for that node; timers of *different* nodes
//!   interleave freely.
//!
//! Two representation decisions keep a million-state search affordable:
//! nodes are held behind [`Arc`] so cloning a state is a handful of
//! refcount bumps and only the node an event actually touches is
//! deep-copied (copy-on-write), and each node's digest is cached beside
//! it so hashing a state re-hashes one mutated engine, not all of them.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use qosc_core::runtime::NodeEngine;
use qosc_core::snapshot::{digest_of, StableHasher, StateDigest};
use qosc_core::{decode_timer, Action, CoalitionNode, LoggedEvent, Msg, Pid};
use qosc_netsim::{FaultPlan, SimTime};

use crate::trace::TraceStep;

/// Hook applied to every action batch an engine emits, before the batch
/// is executed. Exists for mutation self-tests: a tap that rewrites a
/// `Decline` into an `Accept` plants a protocol bug the checker must then
/// catch with a counterexample.
pub type ActionTap = Arc<dyn Fn(Pid, &mut Vec<Action>)>;

/// One undelivered message. `digest` is precomputed at enqueue: it keys
/// both state hashing and the canonical-choice dedup (two identical
/// in-flight copies yield one delivery branch, not two).
#[derive(Clone)]
pub(crate) struct InFlight {
    pub from: Pid,
    pub to: Pid,
    pub msg: Arc<Msg>,
    pub digest: u64,
}

/// One armed timer. `seq` breaks deadline ties in arming order, exactly
/// like the DES and Direct backends' `(time, sequence)` total order.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(crate) struct PendingTimer {
    pub fire_at: SimTime,
    pub seq: u64,
    pub token: u64,
}

/// One enabled transition out of a state. Indices refer to the state's
/// `in_flight` list at enumeration time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Choice {
    Deliver(usize),
    Drop(usize),
    Duplicate(usize),
    Fire(Pid),
    Crash(Pid),
    /// Split the network: bit `i` of the mask names node `i`'s side.
    Partition(u64),
    /// Restore all links.
    Heal,
}

/// Everything an applied transition produced besides the state change:
/// the engine-reported events and how many messages hit the transport.
/// Kept out of [`McState`] so history is tracked per DFS *path* (append
/// on apply, truncate on backtrack) instead of being cloned into every
/// one of the million states it cannot influence.
#[derive(Default)]
pub(crate) struct StepLog {
    pub events: Vec<LoggedEvent>,
    pub sent: u64,
}

/// One vertex of the interleaving graph.
#[derive(Clone)]
pub(crate) struct McState {
    nodes: BTreeMap<Pid, Arc<CoalitionNode>>,
    /// Cached digest of each node in `nodes`, maintained by every
    /// mutation path (`with_node_mut`).
    node_digests: BTreeMap<Pid, u64>,
    pub clocks: BTreeMap<Pid, SimTime>,
    pub in_flight: Vec<InFlight>,
    pub timers: BTreeMap<Pid, Vec<PendingTimer>>,
    pub drops_used: u32,
    pub duplicates_used: u32,
    pub crashes_used: u32,
    /// Active cut, if any: bit `i` names node `i`'s side. `None` when
    /// the network is whole.
    pub partition: Option<u64>,
    pub partitions_used: u32,
    next_timer_seq: u64,
}

fn digest_node(node: &CoalitionNode) -> u64 {
    let mut h = StableHasher::new();
    node.digest(&mut h);
    h.finish()
}

impl McState {
    pub fn new() -> Self {
        Self {
            nodes: BTreeMap::new(),
            node_digests: BTreeMap::new(),
            clocks: BTreeMap::new(),
            in_flight: Vec::new(),
            timers: BTreeMap::new(),
            drops_used: 0,
            duplicates_used: 0,
            crashes_used: 0,
            partition: None,
            partitions_used: 0,
            next_timer_seq: 0,
        }
    }

    /// True while a partition choice is in effect (cleared by heal).
    pub fn partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// True iff the active cut (if any) separates `a` from `b`.
    fn cuts(&self, a: Pid, b: Pid) -> bool {
        self.partition.is_some_and(|m| (m >> a) & 1 != (m >> b) & 1)
    }

    pub fn insert_node(&mut self, node: CoalitionNode) {
        let pid = NodeEngine::id(&node);
        self.node_digests.insert(pid, digest_node(&node));
        self.clocks.insert(pid, SimTime::ZERO);
        self.nodes.insert(pid, Arc::new(node));
    }

    pub fn contains_node(&self, pid: Pid) -> bool {
        self.nodes.contains_key(&pid)
    }

    pub fn node(&self, pid: Pid) -> Option<&CoalitionNode> {
        self.nodes.get(&pid).map(|n| &**n)
    }

    pub fn nodes(&self) -> impl Iterator<Item = &CoalitionNode> {
        self.nodes.values().map(|n| &**n)
    }

    pub fn node_ids(&self) -> Vec<Pid> {
        self.nodes.keys().copied().collect()
    }

    pub fn share_nodes(&self) -> BTreeMap<Pid, Arc<CoalitionNode>> {
        self.nodes.clone()
    }

    /// Mutates one node copy-on-write and refreshes its cached digest.
    pub fn with_node_mut<R>(
        &mut self,
        pid: Pid,
        f: impl FnOnce(&mut CoalitionNode) -> R,
    ) -> Option<R> {
        let arc = self.nodes.get_mut(&pid)?;
        let node = Arc::make_mut(arc);
        let out = f(node);
        self.node_digests.insert(pid, digest_node(node));
        Some(out)
    }

    /// Arms a timer on `node` at absolute deadline `fire_at` (used for
    /// kickoff and dissolve scheduling before exploration starts).
    pub fn arm_timer_at(&mut self, node: Pid, fire_at: SimTime, token: u64) {
        let seq = self.next_timer_seq;
        self.next_timer_seq += 1;
        let queue = self.timers.entry(node).or_default();
        let t = PendingTimer {
            fire_at,
            seq,
            token,
        };
        let idx = queue.partition_point(|q| (q.fire_at, q.seq) <= (t.fire_at, t.seq));
        queue.insert(idx, t);
    }

    /// No messages to deliver and no timers to fire: the protocol can
    /// make no further progress on its own. A partitioned state is never
    /// quiescent — a heal transition is always enabled, and declaring
    /// quiescence mid-partition would let the liveness invariant judge
    /// negotiations whose messages are merely blocked, not lost.
    pub fn quiescent(&self) -> bool {
        self.partition.is_none()
            && self.in_flight.is_empty()
            && self.timers.values().all(|q| q.is_empty())
    }

    /// Canonical 64-bit digest for the dedup set. Node digests come from
    /// the per-node cache; the in-flight list is hashed as a sorted
    /// multiset (arrival order of undelivered messages is not
    /// observable); timer queues are hashed in firing order; the
    /// path-local event log lives outside the state entirely (history
    /// does not constrain future behaviour).
    pub fn digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.nodes.len());
        for (pid, d) in &self.node_digests {
            h.write_u64(*pid as u64);
            h.write_u64(*d);
        }
        for (pid, clock) in &self.clocks {
            h.write_u64(*pid as u64);
            h.write_u64(clock.0);
        }
        let mut msgs: Vec<(Pid, Pid, u64)> = self
            .in_flight
            .iter()
            .map(|m| (m.from, m.to, m.digest))
            .collect();
        msgs.sort_unstable();
        h.write_usize(msgs.len());
        for (from, to, d) in msgs {
            h.write_u64(from as u64);
            h.write_u64(to as u64);
            h.write_u64(d);
        }
        for (pid, queue) in &self.timers {
            h.write_u64(*pid as u64);
            h.write_usize(queue.len());
            for t in queue {
                h.write_u64(t.fire_at.0);
                h.write_u64(t.token);
            }
        }
        h.write_u32(self.drops_used);
        h.write_u32(self.duplicates_used);
        h.write_u32(self.crashes_used);
        // Valid cut masks are nonzero (both groups nonempty), so 0 is a
        // safe encoding for "no partition".
        h.write_u64(self.partition.unwrap_or(0));
        h.write_u32(self.partitions_used);
        h.finish()
    }

    /// Enumerates every transition enabled in this state under `plan`'s
    /// remaining fault budgets. Deterministic: iteration follows the
    /// in-flight list and the node id order.
    pub fn enabled(&self, plan: &FaultPlan) -> Vec<Choice> {
        let mut choices = Vec::new();
        let mut seen: HashSet<(Pid, Pid, u64)> = HashSet::new();
        for (i, m) in self.in_flight.iter().enumerate() {
            if self.cuts(m.from, m.to) {
                continue; // blocked behind the cut until a heal
            }
            if !seen.insert((m.from, m.to, m.digest)) {
                continue; // identical copy: same successor states
            }
            choices.push(Choice::Deliver(i));
            if self.drops_used < plan.max_drops {
                choices.push(Choice::Drop(i));
            }
            if self.duplicates_used < plan.max_duplicates {
                choices.push(Choice::Duplicate(i));
            }
        }
        for (pid, queue) in &self.timers {
            if !queue.is_empty() {
                choices.push(Choice::Fire(*pid));
            }
        }
        if self.crashes_used < plan.max_crash_restarts {
            for (pid, node) in &self.nodes {
                // Crash-restart models a provider process bounce; nodes
                // hosting an organizer are out of scope (the engine has no
                // organizer recovery story to model).
                if node.organizer().is_none() && node.provider().is_some() {
                    choices.push(Choice::Crash(*pid));
                }
            }
        }
        match self.partition {
            Some(_) => choices.push(Choice::Heal),
            None if self.partitions_used < plan.max_partitions && self.nodes.len() >= 2 => {
                // Every canonical bisection: the lowest pid is pinned to
                // group 0 (bit unset), the remaining nodes enumerate both
                // sides, and `sel` starting at 1 keeps group 1 nonempty —
                // so each unordered {A, B} split appears exactly once.
                let ids = self.node_ids();
                debug_assert!(
                    ids.iter().all(|p| *p < 64),
                    "partition masks address nodes by bit index"
                );
                for sel in 1..(1u64 << (ids.len() - 1)) {
                    let mut mask = 0u64;
                    for (bit, pid) in ids[1..].iter().enumerate() {
                        if (sel >> bit) & 1 == 1 {
                            mask |= 1 << pid;
                        }
                    }
                    choices.push(Choice::Partition(mask));
                }
            }
            None => {}
        }
        choices
    }

    /// Applies one transition in place, appending engine events and the
    /// sent-message count to `log`, and returns the trace step that
    /// describes it. Choices must come from [`McState::enabled`] on this
    /// exact state.
    pub fn apply(
        &mut self,
        choice: Choice,
        tap: Option<&ActionTap>,
        log: &mut StepLog,
    ) -> TraceStep {
        match choice {
            Choice::Deliver(i) => {
                let m = self.in_flight.remove(i);
                self.deliver(&m, tap, log);
                TraceStep::Deliver {
                    from: m.from,
                    to: m.to,
                    msg: m.msg,
                }
            }
            Choice::Drop(i) => {
                let m = self.in_flight.remove(i);
                self.drops_used += 1;
                TraceStep::Drop {
                    from: m.from,
                    to: m.to,
                    msg: m.msg,
                }
            }
            Choice::Duplicate(i) => {
                // Deliver one copy now, leave a second in flight: the
                // duplicate's own delivery point is explored on later
                // transitions, covering "duplicate arrives late" too.
                let m = self.in_flight[i].clone();
                self.duplicates_used += 1;
                self.in_flight.remove(i);
                self.in_flight.push(m.clone());
                self.deliver(&m, tap, log);
                TraceStep::Duplicate {
                    from: m.from,
                    to: m.to,
                    msg: m.msg,
                }
            }
            Choice::Fire(pid) => {
                let timer = {
                    let queue = self.timers.entry(pid).or_default();
                    let t = queue.remove(0);
                    if queue.is_empty() {
                        self.timers.remove(&pid);
                    }
                    t
                };
                // The local clock jumps to the deadline (never backwards:
                // an earlier-armed later-deadline timer cannot have fired
                // yet by the in-order rule).
                let clock = self.clocks.entry(pid).or_default();
                *clock = (*clock).max(timer.fire_at);
                let now = *clock;
                let actions = match decode_timer(timer.token) {
                    Some((nego, kind)) => self
                        .with_node_mut(pid, |n| n.on_timer(now, nego, kind))
                        .unwrap_or_default(),
                    None => Vec::new(),
                };
                self.apply_actions(pid, now, actions, tap, log);
                TraceStep::Fire {
                    node: pid,
                    fire_at: timer.fire_at,
                    token: timer.token,
                }
            }
            Choice::Partition(mask) => {
                self.partition = Some(mask);
                self.partitions_used += 1;
                TraceStep::Partition { mask }
            }
            Choice::Heal => {
                self.partition = None;
                TraceStep::Heal
            }
            Choice::Crash(pid) => {
                self.crashes_used += 1;
                self.with_node_mut(pid, |n| {
                    if let Some(p) = n.provider_mut() {
                        p.crash_restart();
                    }
                });
                // A restarted process has lost its armed timers.
                self.timers.remove(&pid);
                TraceStep::Crash { node: pid }
            }
        }
    }

    fn deliver(&mut self, m: &InFlight, tap: Option<&ActionTap>, log: &mut StepLog) {
        let now = self.clocks.get(&m.to).copied().unwrap_or(SimTime::ZERO);
        let actions = self
            .with_node_mut(m.to, |n| n.on_message(now, m.from, &m.msg))
            .unwrap_or_default();
        self.apply_actions(m.to, now, actions, tap, log);
    }

    /// A delivery the receiving node provably ignores: message routing in
    /// `CoalitionNode::on_message` is static by message kind (CFP / Award /
    /// Release go to the provider engine, the rest to the organizer), so a
    /// message addressed to a node without the matching engine is a no-op
    /// on every schedule. Eliding it at send time removes an interleaving
    /// dimension — every reachable engine state is unchanged, but e.g. a
    /// CFP broadcast no longer parks a dead letter at each organizer-only
    /// node, doubling the frontier until it drains.
    fn is_inert(&self, to: Pid, msg: &Msg) -> bool {
        let Some(node) = self.nodes.get(&to) else {
            return true;
        };
        match msg {
            Msg::CallForProposals { .. }
            | Msg::Award { .. }
            | Msg::Release { .. }
            | Msg::LeaseRenew { .. } => node.provider().is_none(),
            Msg::Proposal { .. }
            | Msg::Accept { .. }
            | Msg::Decline { .. }
            | Msg::Heartbeat { .. } => node.organizer().is_none(),
        }
    }

    fn enqueue(&mut self, from: Pid, to: Pid, msg: Arc<Msg>) {
        if self.is_inert(to, &msg) {
            return;
        }
        let digest = digest_of(&*msg);
        self.in_flight.push(InFlight {
            from,
            to,
            msg,
            digest,
        });
    }

    /// Executes an engine's action batch at local time `now` on node `at`.
    pub fn apply_actions(
        &mut self,
        at: Pid,
        now: SimTime,
        mut actions: Vec<Action>,
        tap: Option<&ActionTap>,
        log: &mut StepLog,
    ) {
        if let Some(tap) = tap {
            tap(at, &mut actions);
        }
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    log.sent += 1;
                    let targets: Vec<Pid> =
                        self.nodes.keys().copied().filter(|p| *p != at).collect();
                    for to in targets {
                        self.enqueue(at, to, Arc::clone(&msg));
                    }
                }
                Action::Send { to, msg } => {
                    log.sent += 1;
                    self.enqueue(at, to, msg);
                }
                Action::Timer { delay, token } => {
                    self.arm_timer_at(at, now + delay, token);
                }
                Action::Event(event) => log.events.push(LoggedEvent {
                    at: now,
                    node: at,
                    event,
                }),
            }
        }
    }
}
