//! # qosc-mc — exhaustive-interleaving model checking for the protocol
//!
//! Every other backend executes *one* schedule of the negotiation
//! protocol. This crate executes **all of them**: a
//! [`ModelCheckedRuntime`] implements the normal
//! [`Runtime`](qosc_core::Runtime) surface, but its `run` DFS-explores
//! every interleaving of deliverable events — pending messages × per-node
//! timers — plus every way of spending a [`FaultPlan`](qosc_netsim::FaultPlan) budget (message
//! drop, message duplication, provider crash-restart, network
//! partition), deduplicating states by canonical digest and checking
//! the configured [`Invariant`]s at every distinct state.
//!
//! Shipped properties ([`default_invariants`]):
//!
//! * [`capacity_conservation`] — no provider's holds overbook its
//!   resources, across concurrent CFPs;
//! * [`no_orphaned_winner`] — every assignment an organizer records is
//!   backed by a committed grant at the winning provider;
//! * [`task_conservation`] — announced tasks partition exactly into
//!   open / awarded / assigned / given-up, in every reachable state;
//! * [`liveness_at_quiescence`] — when no message or timer remains,
//!   every negotiation has settled (Operating or Dissolved).
//!
//! Message *reorder* needs no fault budget here: the explorer already
//! visits every delivery order. Clocks are per-node and advance only
//! when a timer fires, so "the proposal deadline beat the proposals"
//! is just another explored branch, not a tuned timeout.
//!
//! A `with_partitions(n)` budget adds *partition branches*: at any
//! unpartitioned state the explorer may split the nodes into any two
//! nonempty groups, blocking (not dropping) cross-cut messages until a
//! heal branch restores the links. Partitioned states are never
//! quiescent (heal is always enabled), so liveness judgements still see
//! every blocked delivery. [`partition_invariants`] bundles the shipped
//! properties with [`no_split_brain_double_award`] and
//! [`liveness_after_heal`] for exactly these runs — proving the
//! timeout/backoff re-announce layer neither double-awards a task
//! across a cut nor strands one after the network heals.
//!
//! ## Worked example: 2 organizers × 2 providers, drop + duplicate
//!
//! The scenario code is exactly what [`DesRuntime`](qosc_core::DesRuntime)
//! or [`DirectRuntime`](qosc_core::DirectRuntime) would take, with one
//! convention: use the `for_model_checking` configurations. They pin
//! every duration to zero — the explorer is time-abstract and visits
//! every timer-vs-delivery ordering regardless, so nonzero durations
//! only smear path-dependent timestamps into the state digest — and
//! disable heartbeats/monitoring, whose timers re-arm forever and would
//! leave no quiescent states to prove liveness on.
//!
//! This is the paper's ad-hoc-grid setting: two peer nodes, each
//! hosting *both* an organizer and a provider, each submitting one
//! single-task service — two concurrent single-round CFPs contending
//! for the same two providers. With a one-drop + one-duplicate fault
//! budget the graph is ~6 M transitions / ~1.2 M distinct states; an
//! optimised build exhausts it in about half a minute (the `MC_SMOKE`
//! CI step runs exactly this check in release), so the snippet below is
//! compiled but not executed as a doctest:
//!
//! ```no_run
//! use std::sync::Arc;
//! use qosc_core::{
//!     CoalitionNode, OrganizerConfig, OrganizerEngine, ProviderConfig, ProviderEngine, Runtime,
//! };
//! use qosc_mc::ModelCheckedRuntime;
//! use qosc_netsim::{FaultPlan, SimTime};
//! use qosc_resources::{av_demand_model, ResourceVector};
//! use qosc_spec::{catalog, ServiceDef, TaskDef};
//!
//! let spec = catalog::av_spec();
//! let mut rt = ModelCheckedRuntime::new();
//! // Two dual-role peers: each node is organizer *and* provider.
//! for (id, cpu) in [(0u32, 400.0), (1u32, 300.0)] {
//!     let org = OrganizerEngine::new(id, OrganizerConfig::for_model_checking());
//!     let mut p = ProviderEngine::new(
//!         id,
//!         ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
//!         ProviderConfig::for_model_checking(),
//!     );
//!     p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
//!     rt.add_node(CoalitionNode::new(id).with_organizer(org).with_provider(p))
//!         .unwrap();
//! }
//! // Each organizer runs one single-task CFP round, concurrently.
//! for id in 0..2u32 {
//!     let service = ServiceDef::new(
//!         format!("svc-{id}"),
//!         vec![TaskDef {
//!             name: "sense".into(),
//!             spec: spec.clone(),
//!             request: catalog::surveillance_request(),
//!             input_bytes: 50_000,
//!             output_bytes: 5_000,
//!         }],
//!     );
//!     rt.submit(id, service, SimTime::ZERO).unwrap();
//! }
//! // Branch over one drop and one duplicate anywhere in the round.
//! rt.set_fault_plan(FaultPlan::exhaustive(1, 1));
//!
//! let report = rt.check().clone();
//! assert!(report.verified(), "{:?}", report.counterexample);
//! assert!(report.quiescent_states > 0, "liveness was never exercised");
//! ```
//!
//! Dropping the `set_fault_plan` line shrinks the same scenario to
//! ~100 k transitions — small enough that the ordinary test suite
//! exhausts it on every run, in debug, alongside a fully faulted
//! 1-organizer × 2-provider round.
//!
//! ## Reading a counterexample
//!
//! When an invariant fails, [`CheckReport::counterexample`] carries the
//! exact schedule. [`Counterexample::render`] prints it as a numbered
//! event log, e.g. (from the mutation self-test, where a test-local
//! [`ActionTap`] rewrites a provider's `Decline` into an `Accept`):
//!
//! ```text
//! invariant `no-orphaned-winner` violated: organizer 0: nego(0/0) task
//! TaskId(0) assigned to node 1 without a backing committed grant (after
//! 7 step(s), 26 state(s) explored)
//! schedule:
//!     1. timer     n0    Kickoff nego(0/0) @0µs
//!     2. deliver   0→1  CallForProposals nego(0/0) round 0 (1 task(s))
//!     3. deliver   1→0  Proposal nego(0/0) from 1 (1 offer(s))
//!     4. timer     n0    ProposalDeadline nego(0/0) @0µs
//!     5. timer     n1    HoldExpiry nego(0/0) @0µs
//!     6. deliver   0→1  Award nego(0/0) TaskId(0)
//!     7. deliver   1→0  Accept nego(0/0) TaskId(0) from 1
//! replay: ModelCheckedRuntime::replay(&counterexample.schedule)
//! ```
//!
//! Step 5 is the race: the provider's hold expired before the award
//! arrived, so its commit fails and it declines — which the planted bug
//! rewrites into an accept the organizer then trusts.
//! [`ModelCheckedRuntime::replay`] re-executes the schedule and must
//! reproduce the same violation.
//!
//! ## One fault vocabulary, two consumers
//!
//! The same [`FaultPlan`](qosc_netsim::FaultPlan) drives the sampled backends: `set_fault_plan`
//! on [`DesRuntime`](qosc_core::DesRuntime) or
//! [`DirectRuntime`](qosc_core::DirectRuntime) draws drop / duplicate /
//! reorder faults probabilistically (deterministic per seed), and
//! [`verify_runtime`] evaluates the very same invariant closures at
//! settle time. A property proved exhaustively on a small instance and
//! spot-checked on a seeded 200-node run is exercised by the *same*
//! adversity, differing only in exhaustiveness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod invariants;
mod runtime;
mod state;
pub mod trace;

pub use invariants::{
    capacity_conservation, check_all, default_invariants, liveness_after_heal,
    liveness_at_quiescence, no_orphaned_winner, no_split_brain_double_award, partition_invariants,
    task_conservation, verify_runtime, Invariant, SystemView, Violation,
};
pub use runtime::{CheckConfig, CheckReport, ModelCheckedRuntime, Replay};
pub use state::ActionTap;
pub use trace::{summarize, Counterexample, TraceStep};
