//! The exhaustive explorer behind the [`Runtime`] surface.
//!
//! [`ModelCheckedRuntime`] accepts the exact scenario-description calls
//! every other backend accepts — `add_node`, `submit`,
//! `schedule_dissolve` — but `run` does not execute *one* schedule: it
//! DFS-explores **every** interleaving of deliverable events (pending
//! messages × per-node timers), plus every way of spending the
//! [`FaultPlan`] budgets, checking the configured [`Invariant`]s at each
//! distinct state. The first violation stops the search and yields a
//! [`Counterexample`] whose schedule [`ModelCheckedRuntime::replay`]
//! re-executes deterministically.

use std::collections::{BTreeMap, HashSet};

use qosc_core::runtime::NodeEngine;
use qosc_core::snapshot::digest_of;
use qosc_core::{
    dissolve_token, kickoff_token, CoalitionNode, LoggedEvent, NegoId, Pid, Runtime, RuntimeError,
};
use qosc_netsim::{FaultPlan, SimTime};
use qosc_spec::ServiceDef;

use crate::invariants::{check_all, default_invariants, Invariant, SystemView, Violation};
use crate::state::{ActionTap, Choice, McState, StepLog};
use crate::trace::{Counterexample, TraceStep};

/// Exploration budgets and the properties to prove.
#[derive(Clone)]
pub struct CheckConfig {
    /// Fault branches the explorer may take (budgets only; the plan's
    /// sampling probabilities are ignored here).
    pub fault_plan: FaultPlan,
    /// Stop after this many transitions, reporting budget exhaustion.
    pub max_states: u64,
    /// Do not extend any schedule beyond this many steps.
    pub max_depth: usize,
    /// Properties checked at every distinct state
    /// ([`default_invariants`] unless replaced).
    pub invariants: Vec<Invariant>,
}

impl Default for CheckConfig {
    fn default() -> Self {
        Self {
            fault_plan: FaultPlan::none(),
            max_states: 2_000_000,
            max_depth: 10_000,
            invariants: default_invariants(),
        }
    }
}

impl std::fmt::Debug for CheckConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckConfig")
            .field("fault_plan", &self.fault_plan)
            .field("max_states", &self.max_states)
            .field("max_depth", &self.max_depth)
            .field("invariants", &self.invariants.len())
            .finish()
    }
}

/// What an exhaustive check established.
#[derive(Debug, Clone, Default)]
pub struct CheckReport {
    /// Transitions applied (counting revisits of deduplicated states).
    pub states_explored: u64,
    /// Distinct states by canonical digest (including the initial one).
    pub distinct_states: u64,
    /// Length of the longest schedule explored.
    pub max_depth_reached: usize,
    /// Distinct states with no deliverable event left.
    pub quiescent_states: u64,
    /// The first invariant violation found, with its schedule.
    pub counterexample: Option<Counterexample>,
    /// True if `max_states` or `max_depth` cut the exploration short —
    /// absence of a counterexample is then *not* a proof.
    pub budget_exhausted: bool,
}

impl CheckReport {
    /// `true` when the full graph was explored and no invariant failed.
    pub fn verified(&self) -> bool {
        self.counterexample.is_none() && !self.budget_exhausted
    }
}

/// One deterministic re-execution of a schedule (see
/// [`ModelCheckedRuntime::replay`]).
#[derive(Debug, Clone)]
pub struct Replay {
    /// Everything the engines reported along the schedule.
    pub events: Vec<LoggedEvent>,
    /// The first invariant violation encountered, if any.
    pub violation: Option<Violation>,
}

/// End-of-path snapshot backing the read side of the [`Runtime`] API.
struct Reference {
    nodes: BTreeMap<Pid, std::sync::Arc<CoalitionNode>>,
    events: Vec<LoggedEvent>,
    sent: u64,
}

/// DFS frame: a state, the step that produced it, the cursor over its
/// enabled choices, and how much of the shared path log this state's
/// history occupies (truncated back on backtrack).
struct Frame {
    state: McState,
    step: Option<TraceStep>,
    choices: Vec<Choice>,
    next: usize,
    events_mark: usize,
    sent_mark: u64,
}

/// A [`Runtime`] whose `run` exhaustively model-checks the scenario
/// instead of executing one schedule of it.
///
/// Scenario setup is byte-for-byte the code used with the other
/// backends. `run(deadline)` ignores the deadline — exploration is
/// bounded by [`CheckConfig::max_states`]/[`CheckConfig::max_depth`],
/// not by virtual time — and returns the number of transitions applied.
/// After the run, [`Runtime::events`], [`Runtime::messages_sent`] and
/// [`Runtime::node`] describe the *first quiescent schedule* the search
/// completed, so existing assertion helpers keep working; the full
/// verdict lives in the [`CheckReport`] from
/// [`ModelCheckedRuntime::check`].
pub struct ModelCheckedRuntime {
    initial: McState,
    config: CheckConfig,
    tap: Option<ActionTap>,
    report: Option<CheckReport>,
    reference: Option<Reference>,
}

impl ModelCheckedRuntime {
    /// An empty runtime with [`CheckConfig::default`] (no faults, the
    /// shipped invariants).
    pub fn new() -> Self {
        Self::with_config(CheckConfig::default())
    }

    /// An empty runtime with explicit budgets/faults/invariants.
    pub fn with_config(config: CheckConfig) -> Self {
        Self {
            initial: McState::new(),
            config,
            tap: None,
            report: None,
            reference: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CheckConfig {
        &self.config
    }

    /// Replaces the invariant set (invalidates any previous check).
    pub fn set_invariants(&mut self, invariants: Vec<Invariant>) {
        self.config.invariants = invariants;
        self.invalidate();
    }

    /// Installs a hook over every action batch the engines emit. Used by
    /// mutation self-tests to plant protocol bugs the checker must catch;
    /// a tap that mutates nothing leaves exploration unchanged.
    pub fn set_action_tap(&mut self, tap: ActionTap) {
        self.tap = Some(tap);
        self.invalidate();
    }

    /// The report of the last completed check, if one ran.
    pub fn report(&self) -> Option<&CheckReport> {
        self.report.as_ref()
    }

    fn invalidate(&mut self) {
        self.report = None;
        self.reference = None;
    }

    /// The root of the interleaving graph: the registered nodes after
    /// their `on_start` hooks, with kickoff/dissolve timers armed.
    fn root_state(&self, log: &mut StepLog) -> McState {
        let mut state = self.initial.clone();
        for pid in state.node_ids() {
            let actions = state
                .with_node_mut(pid, |n| n.on_start(SimTime::ZERO))
                .unwrap_or_default();
            state.apply_actions(pid, SimTime::ZERO, actions, self.tap.as_ref(), log);
        }
        state
    }

    fn check_state(
        state: &McState,
        quiescent: bool,
        invariants: &[Invariant],
    ) -> Result<(), Violation> {
        let view = SystemView::new(state.nodes(), quiescent).with_partitioned(state.partitioned());
        check_all(&view, invariants)
    }

    /// Runs (or returns the cached result of) the exhaustive check.
    /// Idempotent until the scenario, faults, invariants or tap change.
    pub fn check(&mut self) -> &CheckReport {
        if self.report.is_none() {
            let (report, reference) = self.explore();
            self.report = Some(report);
            self.reference = reference;
        }
        self.report.as_ref().expect("just computed")
    }

    fn explore(&self) -> (CheckReport, Option<Reference>) {
        let plan = self.config.fault_plan;
        let mut report = CheckReport::default();
        let mut reference: Option<Reference> = None;
        let mut seen: HashSet<u64> = HashSet::new();

        // Engine events and the transport counter are path-local history,
        // not state: one shared log grows on apply and is truncated on
        // backtrack, instead of being cloned into every stored state.
        let mut log = StepLog::default();
        let root = self.root_state(&mut log);
        seen.insert(root.digest());
        report.distinct_states = 1;
        let quiescent = root.quiescent();
        if let Err(violation) = Self::check_state(&root, quiescent, &self.config.invariants) {
            report.counterexample = Some(Counterexample {
                violation,
                schedule: Vec::new(),
                states_explored: 0,
            });
            return (report, None);
        }
        if quiescent {
            report.quiescent_states = 1;
            reference = Some(Reference {
                nodes: root.share_nodes(),
                events: log.events.clone(),
                sent: log.sent,
            });
        }
        let mut stack = vec![Frame {
            choices: root.enabled(&plan),
            state: root,
            step: None,
            next: 0,
            events_mark: 0,
            sent_mark: 0,
        }];

        'dfs: while let Some(frame) = stack.last_mut() {
            if frame.next >= frame.choices.len() {
                log.events.truncate(frame.events_mark);
                log.sent = frame.sent_mark;
                stack.pop();
                continue;
            }
            if report.states_explored >= self.config.max_states {
                report.budget_exhausted = true;
                break;
            }
            let choice = frame.choices[frame.next];
            frame.next += 1;
            let events_mark = log.events.len();
            let sent_mark = log.sent;
            let mut state = frame.state.clone();
            let step = state.apply(choice, self.tap.as_ref(), &mut log);
            report.states_explored += 1;
            if !seen.insert(state.digest()) {
                log.events.truncate(events_mark);
                log.sent = sent_mark;
                continue; // converged with an already-explored state
            }
            report.distinct_states += 1;
            let quiescent = state.quiescent();
            if let Err(violation) = Self::check_state(&state, quiescent, &self.config.invariants) {
                let mut schedule: Vec<TraceStep> =
                    stack.iter().filter_map(|f| f.step.clone()).collect();
                schedule.push(step);
                report.counterexample = Some(Counterexample {
                    violation,
                    schedule,
                    states_explored: report.states_explored,
                });
                break 'dfs;
            }
            if quiescent {
                report.quiescent_states += 1;
                if reference.is_none() {
                    reference = Some(Reference {
                        nodes: state.share_nodes(),
                        events: log.events.clone(),
                        sent: log.sent,
                    });
                }
            }
            if stack.len() >= self.config.max_depth {
                // This schedule is cut short; siblings still explore.
                report.budget_exhausted = true;
                log.events.truncate(events_mark);
                log.sent = sent_mark;
                continue;
            }
            report.max_depth_reached = report.max_depth_reached.max(stack.len());
            stack.push(Frame {
                choices: state.enabled(&plan),
                state,
                step: Some(step),
                next: 0,
                events_mark,
                sent_mark,
            });
        }
        (report, reference)
    }

    /// Deterministically re-executes `schedule` (typically a
    /// [`Counterexample::schedule`]) against the registered scenario.
    /// Messages are matched by content (sender, receiver, payload
    /// digest); timers fire in their canonical per-node order, so a
    /// schedule the explorer produced always matches. Errors describe the
    /// first step that does not correspond to an enabled transition.
    pub fn replay(&self, schedule: &[TraceStep]) -> Result<Replay, String> {
        let mut log = StepLog::default();
        let mut state = self.root_state(&mut log);
        let mut violation = None;
        for (i, step) in schedule.iter().enumerate() {
            let choice = Self::choice_for(&state, step)
                .ok_or_else(|| format!("step {}: `{step}` is not enabled here", i + 1))?;
            state.apply(choice, self.tap.as_ref(), &mut log);
            if violation.is_none() {
                violation =
                    Self::check_state(&state, state.quiescent(), &self.config.invariants).err();
            }
        }
        Ok(Replay {
            events: log.events,
            violation,
        })
    }

    /// Maps a trace step back onto an enabled [`Choice`] of `state`.
    fn choice_for(state: &McState, step: &TraceStep) -> Option<Choice> {
        let find = |from: Pid, to: Pid, digest: u64| {
            state
                .in_flight
                .iter()
                .position(|m| m.from == from && m.to == to && m.digest == digest)
        };
        match step {
            TraceStep::Deliver { from, to, msg } => {
                find(*from, *to, digest_of(&**msg)).map(Choice::Deliver)
            }
            TraceStep::Drop { from, to, msg } => {
                find(*from, *to, digest_of(&**msg)).map(Choice::Drop)
            }
            TraceStep::Duplicate { from, to, msg } => {
                find(*from, *to, digest_of(&**msg)).map(Choice::Duplicate)
            }
            TraceStep::Fire { node, .. } => state
                .timers
                .get(node)
                .filter(|q| !q.is_empty())
                .map(|_| Choice::Fire(*node)),
            TraceStep::Crash { node } => state
                .node(*node)
                .filter(|n| n.organizer().is_none() && n.provider().is_some())
                .map(|_| Choice::Crash(*node)),
            TraceStep::Partition { mask } => {
                (!state.partitioned()).then_some(Choice::Partition(*mask))
            }
            TraceStep::Heal => state.partitioned().then_some(Choice::Heal),
        }
    }
}

impl Default for ModelCheckedRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime for ModelCheckedRuntime {
    fn backend_name(&self) -> &'static str {
        "mc"
    }

    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError> {
        let id = node.id();
        if self.initial.contains_node(id) {
            return Err(RuntimeError::DuplicateNode(id));
        }
        self.initial.insert_node(node);
        self.invalidate();
        Ok(())
    }

    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError> {
        match self.initial.node(node) {
            None => return Err(RuntimeError::UnknownNode(node)),
            Some(n) if n.organizer().is_none() => return Err(RuntimeError::NoOrganizer(node)),
            Some(_) => {}
        }
        self.initial
            .with_node_mut(node, |n| n.queue_service_at(at, service));
        self.initial.arm_timer_at(node, at, kickoff_token(node));
        self.invalidate();
        Ok(())
    }

    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError> {
        if !self.initial.contains_node(nego.organizer) {
            return Err(RuntimeError::UnknownNode(nego.organizer));
        }
        self.initial
            .arm_timer_at(nego.organizer, at, dissolve_token(nego));
        self.invalidate();
        Ok(())
    }

    /// Runs the exhaustive check. `deadline` is ignored: the explorer is
    /// bounded by state/depth budgets, not virtual time. Returns the
    /// number of transitions applied.
    fn run(&mut self, _deadline: SimTime) -> u64 {
        self.check().states_explored
    }

    /// Installs the fault budgets the explorer branches over (the plan's
    /// sampling probabilities are ignored on this backend).
    fn set_fault_plan(&mut self, plan: FaultPlan) -> bool {
        self.config.fault_plan = plan;
        self.invalidate();
        true
    }

    fn events(&self) -> &[LoggedEvent] {
        self.reference.as_ref().map_or(&[], |r| r.events.as_slice())
    }

    fn messages_sent(&self) -> u64 {
        self.reference.as_ref().map_or(0, |r| r.sent)
    }

    fn node(&self, id: Pid) -> Option<&CoalitionNode> {
        match &self.reference {
            Some(r) => r.nodes.get(&id).map(|n| &**n),
            None => self.initial.node(id),
        }
    }
}
