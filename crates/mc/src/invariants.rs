//! Checkable protocol properties.
//!
//! An [`Invariant`] is a plain closure over a [`SystemView`] — the
//! engines of every node plus a quiescence flag. The checker evaluates
//! every invariant at every explored state; the sampled backends can
//! evaluate the same closures at settle time through
//! [`verify_runtime`]. Shipped properties:
//!
//! * [`capacity_conservation`] — no Resource Manager's outstanding holds
//!   exceed its capacity (the two-phase reservation never overbooks);
//! * [`no_orphaned_winner`] — an organizer never records an assignment
//!   that the winning provider has not backed with a committed grant;
//! * [`task_conservation`] — every announced task is in exactly one
//!   lifecycle bucket (open / awarded / assigned / given-up) at every
//!   instant: tasks are neither lost nor duplicated across rounds;
//! * [`liveness_at_quiescence`] — once no message or timer remains, every
//!   negotiation has settled (Operating or Dissolved): no schedule strands
//!   a negotiation mid-round.
//!
//! Two partition-tolerance properties ship alongside (bundled by
//! [`partition_invariants`], meant for fault plans that license
//! partition branches):
//!
//! * [`no_split_brain_double_award`] — at most one provider executes any
//!   (negotiation, task, round) at every instant, and at most one
//!   executes any (negotiation, task) once the system settles;
//! * [`liveness_after_heal`] — after the network heals and goes
//!   quiescent, no task is stranded open or pending: everything ends
//!   assigned or explicitly given up.

use std::collections::BTreeMap;
use std::sync::Arc;

use qosc_core::{CoalitionNode, NegoId, NegoPhase, Pid};
use qosc_resources::ResourceKind;
use qosc_spec::TaskId;

/// A failed invariant: which property, and a human-readable account of
/// the offending state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated invariant.
    pub invariant: &'static str,
    /// What was wrong, with the offending ids.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant `{}` violated: {}",
            self.invariant, self.message
        )
    }
}

/// Read-only view of the whole system at one instant.
pub struct SystemView<'a> {
    nodes: BTreeMap<Pid, &'a CoalitionNode>,
    quiescent: bool,
    partitioned: bool,
}

impl<'a> SystemView<'a> {
    /// Builds a view over borrowed nodes. `quiescent` marks states with
    /// no deliverable event left (liveness properties key on it).
    pub fn new(nodes: impl IntoIterator<Item = &'a CoalitionNode>, quiescent: bool) -> Self {
        Self {
            nodes: nodes
                .into_iter()
                .map(|n| (qosc_core::runtime::NodeEngine::id(n), n))
                .collect(),
            quiescent,
            partitioned: false,
        }
    }

    /// Marks the view as taken while a network partition is active.
    /// Partition-aware invariants weaken their end-state clauses on such
    /// views (a partitioned state is also never quiescent).
    pub fn with_partitioned(mut self, partitioned: bool) -> Self {
        self.partitioned = partitioned;
        self
    }

    /// The node hosting `pid`, if present.
    pub fn node(&self, pid: Pid) -> Option<&CoalitionNode> {
        self.nodes.get(&pid).copied()
    }

    /// All nodes, in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (Pid, &CoalitionNode)> {
        self.nodes.iter().map(|(p, n)| (*p, *n))
    }

    /// Whether the system has no deliverable event left.
    pub fn is_quiescent(&self) -> bool {
        self.quiescent
    }

    /// Whether a network partition was active when the view was taken.
    pub fn is_partitioned(&self) -> bool {
        self.partitioned
    }
}

/// A checkable property: `Ok(())` when the state is fine, a [`Violation`]
/// when it is not. Plain closures work:
///
/// ```
/// use qosc_mc::{Invariant, Violation};
/// use std::sync::Arc;
/// let at_most_four_nodes: Invariant = Arc::new(|view| {
///     if view.nodes().count() <= 4 {
///         Ok(())
///     } else {
///         Err(Violation { invariant: "at-most-four-nodes", message: "too many".into() })
///     }
/// });
/// ```
pub type Invariant = Arc<dyn Fn(&SystemView<'_>) -> Result<(), Violation>>;

/// Evaluates invariants in order; the first failure wins.
pub fn check_all(view: &SystemView<'_>, invariants: &[Invariant]) -> Result<(), Violation> {
    for inv in invariants {
        inv(view)?;
    }
    Ok(())
}

/// Checks `invariants` against live nodes of a runtime backend (DES,
/// Direct): pass the node ids the scenario registered. Nodes the backend
/// cannot expose (the Actor runtime) are skipped. `quiescent` should be
/// `true` only when the caller knows no protocol event remains in flight
/// (e.g. after `run_until_settled` plus a drained horizon).
pub fn verify_runtime<R: qosc_core::Runtime + ?Sized>(
    rt: &R,
    ids: &[Pid],
    invariants: &[Invariant],
    quiescent: bool,
) -> Result<(), Violation> {
    let nodes: Vec<&CoalitionNode> = ids.iter().filter_map(|id| rt.node(*id)).collect();
    check_all(&SystemView::new(nodes, quiescent), invariants)
}

/// Σ holds ≤ capacity on every Resource Manager of every provider.
pub fn capacity_conservation() -> Invariant {
    Arc::new(|view| {
        for (pid, node) in view.nodes() {
            let Some(p) = node.provider() else { continue };
            for kind in ResourceKind::ALL {
                let m = p.ledger().manager(kind);
                if m.held() > m.capacity() + 1e-6 {
                    return Err(Violation {
                        invariant: "capacity-conservation",
                        message: format!(
                            "node {pid} {kind:?}: holds {:.3} exceed capacity {:.3}",
                            m.held(),
                            m.capacity()
                        ),
                    });
                }
            }
        }
        Ok(())
    })
}

/// Every assignment an organizer records (while the negotiation is live)
/// is backed by a committed grant at the winning provider.
pub fn no_orphaned_winner() -> Invariant {
    Arc::new(|view| {
        for (pid, node) in view.nodes() {
            let Some(org) = node.organizer() else {
                continue;
            };
            for nego in org.nego_ids() {
                if !matches!(
                    org.phase(nego),
                    Some(NegoPhase::Awarding | NegoPhase::Operating)
                ) {
                    // A dissolved negotiation keeps its assignment record
                    // but has told members to release — not an orphan.
                    continue;
                }
                let Some(lc) = org.task_lifecycle(nego) else {
                    continue;
                };
                for (task, winner) in &lc.assigned {
                    let Some(p) = view.node(*winner).and_then(|n| n.provider()) else {
                        return Err(Violation {
                            invariant: "no-orphaned-winner",
                            message: format!(
                                "organizer {pid}: {nego} task {task:?} assigned to node \
                                 {winner} which hosts no provider"
                            ),
                        });
                    };
                    if !p.executing().contains(&(nego, *task)) {
                        return Err(Violation {
                            invariant: "no-orphaned-winner",
                            message: format!(
                                "organizer {pid}: {nego} task {task:?} assigned to node \
                                 {winner} without a backing committed grant"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    })
}

/// Announced tasks partition exactly into open ∪ awarded ∪ assigned ∪
/// given-up: no task is lost or double-tracked, in any phase.
pub fn task_conservation() -> Invariant {
    Arc::new(|view| {
        for (pid, node) in view.nodes() {
            let Some(org) = node.organizer() else {
                continue;
            };
            for nego in org.nego_ids() {
                let Some(lc) = org.task_lifecycle(nego) else {
                    continue;
                };
                for task in &lc.announced {
                    let buckets = usize::from(lc.open.contains(task))
                        + usize::from(lc.pending.contains_key(task))
                        + usize::from(lc.assigned.contains_key(task))
                        + usize::from(lc.given_up.contains(task));
                    if buckets != 1 {
                        return Err(Violation {
                            invariant: "task-conservation",
                            message: format!(
                                "organizer {pid}: {nego} task {task:?} lives in {buckets} \
                                 lifecycle buckets (expected exactly 1)"
                            ),
                        });
                    }
                }
                let phantom = lc
                    .open
                    .iter()
                    .chain(lc.pending.keys())
                    .chain(lc.assigned.keys())
                    .chain(lc.given_up.iter())
                    .find(|t| !lc.announced.contains(t));
                if let Some(task) = phantom {
                    return Err(Violation {
                        invariant: "task-conservation",
                        message: format!(
                            "organizer {pid}: {nego} tracks task {task:?} that was never \
                             announced"
                        ),
                    });
                }
            }
        }
        Ok(())
    })
}

/// At quiescence every negotiation has settled: phase is Operating or
/// Dissolved and no task is still awaiting solicitation or an award
/// answer. Vacuously true while events remain deliverable.
pub fn liveness_at_quiescence() -> Invariant {
    Arc::new(|view| {
        if !view.is_quiescent() {
            return Ok(());
        }
        for (pid, node) in view.nodes() {
            let Some(org) = node.organizer() else {
                continue;
            };
            for nego in org.nego_ids() {
                let phase = org.phase(nego);
                if !matches!(phase, Some(NegoPhase::Operating | NegoPhase::Dissolved)) {
                    return Err(Violation {
                        invariant: "liveness-at-quiescence",
                        message: format!(
                            "organizer {pid}: {nego} stranded in {phase:?} with no \
                             deliverable event left"
                        ),
                    });
                }
            }
        }
        Ok(())
    })
}

/// At most one provider executes any (negotiation, task, round) triple
/// at every instant, and at most one provider executes any (negotiation,
/// task) pair once the system settles (quiescent and healed). The round
/// dimension matters mid-run: while a partition blocks an `Accept`, a
/// backoff re-announce can legitimately award the same task again in a
/// later round — two grants for the same task may coexist *transiently*,
/// but never for the same round, and the stale one must be released
/// (via the fresh-round CFP) before the system can go quiescent.
pub fn no_split_brain_double_award() -> Invariant {
    Arc::new(|view| {
        let settled = view.is_quiescent() && !view.is_partitioned();
        let mut by_round: BTreeMap<(NegoId, TaskId, u32), Pid> = BTreeMap::new();
        let mut by_task: BTreeMap<(NegoId, TaskId), Pid> = BTreeMap::new();
        for (pid, node) in view.nodes() {
            let Some(p) = node.provider() else { continue };
            for (nego, task, round) in p.executing_rounds() {
                if let Some(prev) = by_round.insert((nego, task, round), pid) {
                    return Err(Violation {
                        invariant: "no-split-brain-double-award",
                        message: format!(
                            "{nego} task {task:?} round {round} executed by both node \
                             {prev} and node {pid}"
                        ),
                    });
                }
                if settled {
                    if let Some(prev) = by_task.insert((nego, task), pid) {
                        return Err(Violation {
                            invariant: "no-split-brain-double-award",
                            message: format!(
                                "{nego} task {task:?} still executed by both node {prev} \
                                 and node {pid} after the system settled"
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    })
}

/// Once quiescent *and healed*, every negotiation has settled with no
/// task still open or awaiting an award answer: the retry/backoff layer
/// recovered everything a partition stranded. Vacuously true while
/// events remain deliverable or a cut is active (a partitioned state is
/// never quiescent, so the partition guard is defensive).
pub fn liveness_after_heal() -> Invariant {
    Arc::new(|view| {
        if !view.is_quiescent() || view.is_partitioned() {
            return Ok(());
        }
        for (pid, node) in view.nodes() {
            let Some(org) = node.organizer() else {
                continue;
            };
            for nego in org.nego_ids() {
                let phase = org.phase(nego);
                if !matches!(phase, Some(NegoPhase::Operating | NegoPhase::Dissolved)) {
                    return Err(Violation {
                        invariant: "liveness-after-heal",
                        message: format!(
                            "organizer {pid}: {nego} stranded in {phase:?} after the \
                             network healed and went quiescent"
                        ),
                    });
                }
                let Some(lc) = org.task_lifecycle(nego) else {
                    continue;
                };
                if !lc.open.is_empty() || !lc.pending.is_empty() {
                    return Err(Violation {
                        invariant: "liveness-after-heal",
                        message: format!(
                            "organizer {pid}: {nego} settled with {} open and {} pending \
                             task(s) — every announced task must end assigned or given up",
                            lc.open.len(),
                            lc.pending.len()
                        ),
                    });
                }
            }
        }
        Ok(())
    })
}

/// The four shipped properties, in checking order.
pub fn default_invariants() -> Vec<Invariant> {
    vec![
        capacity_conservation(),
        no_orphaned_winner(),
        task_conservation(),
        liveness_at_quiescence(),
    ]
}

/// [`default_invariants`] plus the two partition-tolerance properties:
/// [`no_split_brain_double_award`] and [`liveness_after_heal`]. Use with
/// a [`FaultPlan`](qosc_netsim::FaultPlan) that licenses partition
/// branches (`with_partitions`).
pub fn partition_invariants() -> Vec<Invariant> {
    let mut v = default_invariants();
    v.push(no_split_brain_double_award());
    v.push(liveness_after_heal());
    v
}
