//! Counterexample traces: schedules the explorer found and how to read
//! (and re-run) them.
//!
//! A [`TraceStep`] names one transition of the interleaving graph in
//! replayable terms: messages are identified by content (sender,
//! receiver, payload), not by internal queue ids, so a schedule can be
//! re-executed against a fresh initial state with
//! [`ModelCheckedRuntime::replay`](crate::ModelCheckedRuntime::replay)
//! and must deterministically reproduce the same violation.

use std::sync::Arc;

use qosc_core::{decode_timer, Msg, Pid};
use qosc_netsim::SimTime;

use crate::invariants::Violation;

/// One transition of a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceStep {
    /// `msg` travelled from `from` to `to` and was handled.
    Deliver {
        /// Sender node.
        from: Pid,
        /// Receiver node.
        to: Pid,
        /// The payload.
        msg: Arc<Msg>,
    },
    /// The fault layer discarded this copy of `msg`.
    Drop {
        /// Sender node.
        from: Pid,
        /// Intended receiver.
        to: Pid,
        /// The payload.
        msg: Arc<Msg>,
    },
    /// `msg` was delivered AND a second copy stayed in flight.
    Duplicate {
        /// Sender node.
        from: Pid,
        /// Receiver node.
        to: Pid,
        /// The payload.
        msg: Arc<Msg>,
    },
    /// `node`'s earliest pending timer fired, advancing its clock.
    Fire {
        /// The node whose timer fired.
        node: Pid,
        /// The deadline the clock advanced to.
        fire_at: SimTime,
        /// The raw timer token (decode with [`qosc_core::decode_timer`]).
        token: u64,
    },
    /// `node`'s provider process crash-restarted: tentative holds and
    /// armed timers lost, committed grants retained.
    Crash {
        /// The crashed node.
        node: Pid,
    },
    /// The network split in two: nodes whose bit in `mask` differs can
    /// no longer exchange messages until a [`TraceStep::Heal`].
    Partition {
        /// Bit `i` set ⇔ node `i` is in the second group.
        mask: u64,
    },
    /// The partition healed: all links restored, blocked in-flight
    /// messages become deliverable again.
    Heal,
}

/// Compact single-line rendering of a message for trace output (the full
/// `Debug` form of a CFP embeds whole QoS specs — far too loud).
pub fn summarize(msg: &Msg) -> String {
    match msg {
        Msg::CallForProposals { nego, tasks, round } => {
            format!(
                "CallForProposals {nego} round {round} ({} task(s))",
                tasks.len()
            )
        }
        Msg::Proposal {
            nego,
            from,
            proposals,
        } => format!("Proposal {nego} from {from} ({} offer(s))", proposals.len()),
        Msg::Award { nego, task, round } => format!("Award {nego} {task:?} round {round}"),
        Msg::Accept {
            nego,
            task,
            from,
            round,
        } => format!("Accept {nego} {task:?} round {round} from {from}"),
        Msg::Decline {
            nego,
            task,
            from,
            round,
        } => format!("Decline {nego} {task:?} round {round} from {from}"),
        Msg::Heartbeat { nego, task, from } => {
            format!("Heartbeat {nego} {task:?} from {from}")
        }
        Msg::Release { nego } => format!("Release {nego}"),
        Msg::LeaseRenew { nego } => format!("LeaseRenew {nego}"),
    }
}

impl std::fmt::Display for TraceStep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceStep::Deliver { from, to, msg } => {
                write!(f, "deliver   {from}→{to}  {}", summarize(msg))
            }
            TraceStep::Drop { from, to, msg } => {
                write!(f, "drop      {from}→{to}  {}", summarize(msg))
            }
            TraceStep::Duplicate { from, to, msg } => {
                write!(f, "duplicate {from}→{to}  {}", summarize(msg))
            }
            TraceStep::Fire {
                node,
                fire_at,
                token,
            } => match decode_timer(*token) {
                Some((nego, kind)) => {
                    write!(f, "timer     n{node}    {kind:?} {nego} @{}µs", fire_at.0)
                }
                None => write!(f, "timer     n{node}    token {token:#x} @{}µs", fire_at.0),
            },
            TraceStep::Crash { node } => write!(f, "crash     n{node}    provider restart"),
            TraceStep::Partition { mask } => {
                write!(f, "partition       groups split by mask {mask:#b}")
            }
            TraceStep::Heal => write!(f, "heal            all links restored"),
        }
    }
}

/// A violating schedule: the invariant that failed, the exact event
/// order that reached the bad state, and exploration statistics.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// What failed.
    pub violation: Violation,
    /// The schedule from the initial state to the violating state.
    pub schedule: Vec<TraceStep>,
    /// Transitions applied before the violation surfaced.
    pub states_explored: u64,
}

impl Counterexample {
    /// Renders the counterexample as a numbered, replayable event log.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} (after {} step(s), {} state(s) explored)",
            self.violation,
            self.schedule.len(),
            self.states_explored
        );
        let _ = writeln!(out, "schedule:");
        for (i, step) in self.schedule.iter().enumerate() {
            let _ = writeln!(out, "  {:>3}. {step}", i + 1);
        }
        let _ = write!(
            out,
            "replay: ModelCheckedRuntime::replay(&counterexample.schedule)"
        );
        out
    }
}

impl std::fmt::Display for Counterexample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}
