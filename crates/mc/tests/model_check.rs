//! End-to-end model-checking tests: the PR's acceptance scenario (an
//! exhaustive 2-organizer × 2-provider × 2-task CFP round with drop and
//! duplicate fault branches), the crash-restart branch, and the mutation
//! self-test that guards against a vacuously-green checker.
//!
//! The acceptance scenario follows the paper's ad-hoc-grid setting: two
//! peer nodes, each hosting *both* an organizer and a provider, each
//! submitting one single-task service — two concurrent CFP rounds
//! contending for the same two providers. Its faulted graph is ~6 M
//! transitions, which an optimised build walks in well under a minute
//! but a debug build cannot, so the full faulted check is `#[ignore]`d
//! here and executed on every PR by the `MC_SMOKE` CI step (release
//! profile); the fault-free variant of the same scenario and a faulted
//! single-organizer round run in the normal (tier-1) test pass.

use std::sync::Arc;

use qosc_core::strategy::{OrganizerStrategy, TimeoutBackoff};
use qosc_core::{
    Action, CoalitionNode, Msg, NegoEvent, OrganizerConfig, OrganizerEngine, Pid, ProviderConfig,
    ProviderEngine, Runtime,
};
use qosc_mc::{partition_invariants, CheckConfig, ModelCheckedRuntime, TraceStep};
use qosc_netsim::{FaultPlan, SimDuration, SimTime};
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef};

fn organizer(id: Pid) -> OrganizerEngine {
    OrganizerEngine::new(id, OrganizerConfig::for_model_checking())
}

/// An organizer that survives a partition: two rounds, with an
/// exponential-backoff re-announce between them (the nonzero base is
/// what routes the retry through the `ReAnnounce` timer branch).
fn retrying_organizer(id: Pid) -> OrganizerEngine {
    let mut config = OrganizerConfig::for_model_checking();
    config.max_rounds = 2;
    config.chain =
        OrganizerStrategy::new().with(TimeoutBackoff::doubling(SimDuration::millis(1), 2));
    OrganizerEngine::new(id, config)
}

fn provider(id: Pid, cpu: f64) -> ProviderEngine {
    let spec = catalog::av_spec();
    let mut p = ProviderEngine::new(
        id,
        ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        ProviderConfig::for_model_checking(),
    );
    p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
    p
}

fn service(name: &str) -> ServiceDef {
    ServiceDef::new(
        name,
        vec![TaskDef {
            name: format!("{name}-task"),
            spec: catalog::av_spec(),
            request: catalog::surveillance_request(),
            input_bytes: 50_000,
            output_bytes: 5_000,
        }],
    )
}

/// The acceptance scenario: two dual-role peers (organizer + provider on
/// each), each submitting one single-task service — 2 organizers ×
/// 2 providers × 2 tasks, with both CFP rounds contending for the same
/// capacity.
fn two_by_two() -> ModelCheckedRuntime {
    two_by_two_with(CheckConfig::default())
}

fn two_by_two_with(config: CheckConfig) -> ModelCheckedRuntime {
    let mut rt = ModelCheckedRuntime::with_config(config);
    for (id, cpu) in [(0, 400.0), (1, 300.0)] {
        rt.add_node(
            CoalitionNode::new(id)
                .with_organizer(organizer(id))
                .with_provider(provider(id, cpu)),
        )
        .expect("fresh id");
    }
    rt.submit(0, service("svc-0"), SimTime::ZERO)
        .expect("organizer 0");
    rt.submit(1, service("svc-1"), SimTime::ZERO)
        .expect("organizer 1");
    rt
}

/// One organizer soliciting two separate providers: the faulted variant
/// is small enough to exhaust in a debug build.
fn one_by_two() -> ModelCheckedRuntime {
    let mut rt = ModelCheckedRuntime::new();
    rt.add_node(CoalitionNode::new(0).with_organizer(organizer(0)))
        .expect("fresh id");
    for (id, cpu) in [(1, 400.0), (2, 300.0)] {
        rt.add_node(CoalitionNode::new(id).with_provider(provider(id, cpu)))
            .expect("fresh id");
    }
    rt.submit(0, service("svc"), SimTime::ZERO)
        .expect("organizer 0");
    rt
}

/// One retrying organizer soliciting one remote provider: the smallest
/// scenario where a cut can strand every protocol message, small enough
/// to exhaust with a partition branch in a debug build.
fn retrying_one_by_one() -> ModelCheckedRuntime {
    let mut rt = ModelCheckedRuntime::new();
    rt.add_node(CoalitionNode::new(0).with_organizer(retrying_organizer(0)))
        .expect("fresh id");
    rt.add_node(CoalitionNode::new(1).with_provider(provider(1, 400.0)))
        .expect("fresh id");
    rt.submit(0, service("svc"), SimTime::ZERO)
        .expect("organizer 0");
    rt
}

/// The partition acceptance scenario: the 2×2 dual-role round with a
/// one-split budget, checked against the partition invariant bundle.
/// Organizer 0 carries the backoff chain (so a cut round is retried and
/// the retry interleaves with the stale round's stragglers); organizer 1
/// stays single-round, which keeps the walk exhaustible in CI time —
/// arming both organizers with retries multiplies the graph past any
/// useful budget without adding a behaviour the invariants can see.
fn partitioned_two_by_two(config: CheckConfig) -> ModelCheckedRuntime {
    let mut rt = ModelCheckedRuntime::with_config(config);
    rt.add_node(
        CoalitionNode::new(0)
            .with_organizer(retrying_organizer(0))
            .with_provider(provider(0, 400.0)),
    )
    .expect("fresh id");
    rt.add_node(
        CoalitionNode::new(1)
            .with_organizer(organizer(1))
            .with_provider(provider(1, 300.0)),
    )
    .expect("fresh id");
    rt.submit(0, service("svc-0"), SimTime::ZERO)
        .expect("organizer 0");
    rt.submit(1, service("svc-1"), SimTime::ZERO)
        .expect("organizer 1");
    rt.set_invariants(partition_invariants());
    rt.set_fault_plan(FaultPlan::none().with_partitions(1));
    rt
}

/// The reference path is the *first* fully-quiescent schedule the DFS
/// completes — not necessarily a lucky one (with zero hold TTLs an
/// award can legitimately lose its race against hold expiry there), so
/// what it must show is every negotiation concluding, one way or the
/// other.
fn assert_settled(rt: &ModelCheckedRuntime, expected: usize) {
    let settled = rt
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )
        })
        .count();
    assert_eq!(settled, expected, "events: {:?}", rt.events());
}

/// The PR's headline acceptance check, exhaustively: ~6 M transitions,
/// run in release by the `MC_SMOKE` CI step (`cargo test --release -p
/// qosc-mc -- --ignored`).
#[test]
#[ignore = "exhaustive faulted graph (~6M transitions): run in release via MC_SMOKE"]
fn exhaustive_2x2_round_with_drop_and_duplicate_verifies() {
    // The faulted graph is ~6 M transitions — above the default
    // 2 M exploration budget, deliberately: the default should stop a
    // runaway scenario quickly, and exhausting a graph this size is an
    // explicit choice.
    let mut rt = two_by_two_with(CheckConfig {
        max_states: 10_000_000,
        ..CheckConfig::default()
    });
    rt.set_fault_plan(FaultPlan::exhaustive(1, 1));
    rt.run(SimTime::ZERO); // deadline is ignored on this backend
    let report = rt.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}, budget_exhausted: {}",
        report.counterexample.map(|c| c.render()),
        report.budget_exhausted,
    );
    // The graph is genuinely explored, not vacuously empty, and the
    // liveness invariant was exercised on real quiescent states.
    assert!(report.distinct_states > 1_000_000, "{report:?}");
    assert!(report.quiescent_states > 100, "{report:?}");
    assert!(report.max_depth_reached >= 20, "{report:?}");
    // The reference schedule (first fully-settled path) reads like any
    // other backend's run: both negotiations concluded.
    assert_settled(&rt, 2);
    assert!(rt.messages_sent() > 0);
}

/// The same 2 × 2 × 2 scenario without fault branches: small enough
/// (~100 k transitions) to exhaust in every tier-1 run.
#[test]
fn exhaustive_2x2_round_fault_free_verifies() {
    let mut rt = two_by_two();
    rt.run(SimTime::ZERO);
    let report = rt.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}, budget_exhausted: {}",
        report.counterexample.map(|c| c.render()),
        report.budget_exhausted,
    );
    assert!(report.distinct_states > 10_000, "{report:?}");
    assert!(report.quiescent_states > 1, "{report:?}");
    assert!(report.max_depth_reached >= 15, "{report:?}");
    assert_settled(&rt, 2);
    assert!(rt.messages_sent() > 0);
}

/// Drop + duplicate branches on the single-organizer round, exhaustively,
/// in tier-1: every way one message is lost and one repeated.
#[test]
fn faulted_one_by_two_round_verifies_and_faults_enlarge_the_graph() {
    let mut plain = one_by_two();
    plain.run(SimTime::ZERO);
    let plain_states = plain.check().distinct_states;
    assert!(plain.check().verified());

    let mut faulted = one_by_two();
    faulted.set_fault_plan(FaultPlan::exhaustive(1, 1));
    faulted.run(SimTime::ZERO);
    let report = faulted.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}",
        report.counterexample.map(|c| c.render())
    );
    // A dropped CFP or proposal forces deadline paths a fault-free round
    // never takes; the graph must strictly grow.
    assert!(
        plain_states < report.distinct_states,
        "fault branches must enlarge the graph: {plain_states} vs {}",
        report.distinct_states
    );
    assert!(report.quiescent_states > 1, "{report:?}");
}

/// Partition branches on the single-organizer round, exhaustively, in
/// tier-1: every point at which the network can split (and heal), with
/// the organizer's backoff re-announce recovering the round.
#[test]
fn partition_branches_enlarge_the_graph_and_verify() {
    let mut plain = retrying_one_by_one();
    plain.set_invariants(partition_invariants());
    plain.run(SimTime::ZERO);
    let plain_states = plain.check().distinct_states;
    assert!(plain.check().verified());

    let mut cut = retrying_one_by_one();
    cut.set_invariants(partition_invariants());
    cut.set_fault_plan(FaultPlan::none().with_partitions(1));
    cut.run(SimTime::ZERO);
    let report = cut.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}, budget_exhausted: {}",
        report.counterexample.map(|c| c.render()),
        report.budget_exhausted,
    );
    // A cut can block the CFP, the proposals, the award or the accept —
    // each forcing a deadline-then-re-announce path the uncut round
    // never takes; the graph must strictly grow.
    assert!(
        plain_states < report.distinct_states,
        "partition branches must enlarge the graph: {plain_states} vs {}",
        report.distinct_states
    );
    assert!(report.quiescent_states > 1, "{report:?}");
    assert_settled(&cut, 1);
}

/// A partition/heal pair replays like any other schedule prefix, and a
/// heal with no active cut is rejected as an impossible step.
#[test]
fn partition_steps_replay_and_bogus_heal_is_rejected() {
    let mut rt = retrying_one_by_one();
    rt.set_fault_plan(FaultPlan::none().with_partitions(1));
    // Isolate node 1, then heal: a legal two-step prefix.
    let replay = rt
        .replay(&[TraceStep::Partition { mask: 0b10 }, TraceStep::Heal])
        .expect("partition then heal is always enabled from the root");
    assert_eq!(replay.violation, None);
    // Healing an intact network matches no enabled transition.
    let err = rt
        .replay(&[TraceStep::Heal])
        .expect_err("no cut to heal at the root");
    assert!(err.contains("step 1"), "{err}");
}

/// The partition acceptance check: the 2×2 dual-role round under one
/// partition branch, with backoff re-announce on organizer 0, proves
/// no-split-brain-double-award and liveness-after-heal exhaustively.
/// The graph is far beyond a debug
/// build (tens of millions of transitions), so the full walk is
/// `#[ignore]`d and double-gated on `MC_PARTITION_SMOKE=1` — the
/// `MC_SMOKE` CI step also sweeps `--ignored` tests and must not pay
/// for this one twice.
#[test]
#[ignore = "exhaustive partitioned graph: run in release via MC_PARTITION_SMOKE"]
fn exhaustive_partitioned_2x2_round_with_backoff_verifies() {
    if std::env::var("MC_PARTITION_SMOKE").is_err() {
        eprintln!("skipping: set MC_PARTITION_SMOKE=1 to run the partitioned 2x2 walk");
        return;
    }
    let mut rt = partitioned_two_by_two(CheckConfig {
        max_states: 400_000_000,
        ..CheckConfig::default()
    });
    rt.run(SimTime::ZERO);
    let report = rt.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}, budget_exhausted: {}",
        report.counterexample.map(|c| c.render()),
        report.budget_exhausted,
    );
    assert!(report.distinct_states > 100_000, "{report:?}");
    assert!(report.quiescent_states > 100, "{report:?}");
    assert_settled(&rt, 2);
}

#[test]
fn crash_restart_branches_are_explored_and_safe() {
    let mut rt = one_by_two();
    rt.set_fault_plan(FaultPlan::none().with_crash_restarts(1));
    rt.run(SimTime::ZERO);
    let report = rt.check().clone();
    assert!(
        report.verified(),
        "counterexample: {:?}",
        report.counterexample.map(|c| c.render())
    );
    assert!(report.quiescent_states > 1);
}

#[test]
fn check_is_idempotent_and_invalidated_by_scenario_changes() {
    let mut rt = one_by_two();
    let first = rt.check().clone();
    let second = rt.check().clone();
    assert_eq!(first.distinct_states, second.distinct_states);
    assert_eq!(first.states_explored, second.states_explored);
    // Installing a fault plan invalidates the cached verdict.
    rt.set_fault_plan(FaultPlan::exhaustive(1, 0));
    let third = rt.check().clone();
    assert!(third.distinct_states > first.distinct_states);
}

/// The mutation self-test: plant a protocol bug (a provider that cannot
/// honour an award lies and *accepts* instead of declining) and assert
/// the checker produces a replayable safety counterexample. Guards
/// against a checker that is green because it checks nothing.
#[test]
fn mutated_award_acceptance_yields_replayable_counterexample() {
    let build = || {
        let mut rt = ModelCheckedRuntime::new();
        rt.add_node(CoalitionNode::new(0).with_organizer(organizer(0)))
            .expect("fresh id");
        rt.add_node(CoalitionNode::new(1).with_provider(provider(1, 400.0)))
            .expect("fresh id");
        rt.submit(0, service("svc"), SimTime::ZERO)
            .expect("organizer 0");
        rt
    };

    // Sanity: the unmutated protocol verifies on this scenario.
    let mut sane = build();
    assert!(sane.check().verified());

    let mut rt = build();
    rt.set_action_tap(Arc::new(|_pid, actions: &mut Vec<Action>| {
        for action in actions.iter_mut() {
            if let Action::Send { msg, .. } = action {
                if let Msg::Decline {
                    nego,
                    task,
                    from,
                    round,
                } = **msg
                {
                    // The planted bug: accept awards we cannot back.
                    *msg = Arc::new(Msg::Accept {
                        nego,
                        task,
                        from,
                        round,
                    });
                }
            }
        }
    }));
    let report = rt.check().clone();
    let ce = report
        .counterexample
        .expect("the planted bug must produce a counterexample");
    assert_eq!(
        ce.violation.invariant,
        "no-orphaned-winner",
        "{}",
        ce.render()
    );
    assert!(!ce.schedule.is_empty());
    // The schedule must include the race that exposes the bug: the
    // provider's hold expired (its timer fired) before the award landed.
    assert!(
        ce.schedule
            .iter()
            .any(|s| matches!(s, TraceStep::Fire { node: 1, .. })),
        "{}",
        ce.render()
    );
    // The rendered trace is a readable event log.
    let rendered = ce.render();
    assert!(rendered.contains("no-orphaned-winner"), "{rendered}");
    assert!(rendered.contains("schedule:"), "{rendered}");

    // Replaying the schedule deterministically reproduces the violation.
    let replay = rt.replay(&ce.schedule).expect("schedule must be enabled");
    assert_eq!(replay.violation, Some(ce.violation));
}

#[test]
fn replay_rejects_schedules_that_do_not_match_the_scenario() {
    let rt = two_by_two();
    // Both peers host an organizer, so neither is crash-eligible.
    let bogus = vec![TraceStep::Crash { node: 0 }];
    let err = rt
        .replay(&bogus)
        .expect_err("organizers cannot crash-restart");
    assert!(err.contains("step 1"), "{err}");
}
