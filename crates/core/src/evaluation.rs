//! Multi-attribute proposal evaluation (paper §6, equations 2–5).
//!
//! A proposal is scored by its *distance* from the user's preferences:
//!
//! ```text
//! distance = Σ_k  w_k · dist(Q_k)                        (eq. 2)
//! w_k      = (n − k + 1) / n                             (eq. 3)
//! dist(Q_k)= Σ_i  w_i · dif(Prop_ki, Pref_ki)            (eq. 4)
//! dif      = (Prop−Pref)/(max−min)        continuous     (eq. 5)
//!          = (pos(Prop)−pos(Pref))/(len−1) discrete
//! ```
//!
//! with `k` the rank of the dimension in the user's request and `i` the
//! rank of the attribute inside its dimension — preference is *qualitative*
//! (order), turned into weights by eq. 3. `pos(·)` is the Quality-Index
//! position in the application's domain declaration (after Lee et al.).
//! The best proposal is the admissible one with the lowest distance.
//!
//! Two deliberate knobs beyond the paper's letter, both ablated by the
//! experiment suite:
//!
//! * [`DifMode`] — taken literally, eq. 5 is *signed*: a proposal numerically
//!   below the preferred value gets a negative difference and would beat the
//!   preferred value itself (e.g. preferring frame rate 10, an offer of 5
//!   scores −5/29 < 0). That cannot be the intent — §6 says the winner
//!   "contains the attributes' values more closely related to user's
//!   preferences". [`DifMode::Absolute`] (default) uses |·|;
//!   [`DifMode::SignedPaperLiteral`] reproduces the formula as printed for
//!   the T2/T3 ablations.
//! * [`WeightScheme`] — eq. 3's linear rank map is one choice among many;
//!   uniform and harmonic alternatives quantify how much the scheme matters
//!   (experiment T2).

use serde::{Deserialize, Serialize};

use qosc_spec::{QosSpec, ResolvedRequest, Value};

/// Rank-to-weight map for dimensions and attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WeightScheme {
    /// The paper's eq. 3: `w_k = (n − k + 1)/n` (1-based rank `k`).
    #[default]
    PaperLinear,
    /// Every rank weighs 1.
    Uniform,
    /// `w_k = 1/k`: steeper head emphasis than the paper's.
    Harmonic,
}

impl WeightScheme {
    /// Weight of 0-based rank `k0` among `n` ranked elements.
    pub fn weight(&self, k0: usize, n: usize) -> f64 {
        let k = (k0 + 1) as f64;
        let n = n.max(1) as f64;
        match self {
            WeightScheme::PaperLinear => (n - k + 1.0) / n,
            WeightScheme::Uniform => 1.0,
            WeightScheme::Harmonic => 1.0 / k,
        }
    }
}

/// Interpretation of eq. 5's difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DifMode {
    /// `|Prop − Pref|`, normalised — deviation in either direction moves
    /// the proposal away from the user's stated preference.
    #[default]
    Absolute,
    /// The formula exactly as printed (signed). Kept for ablation; under
    /// this mode "undershooting" a numeric preference is rewarded.
    SignedPaperLiteral,
}

/// Evaluator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct EvalConfig {
    /// Dimension/attribute rank weighting (eq. 3).
    pub weights: WeightScheme,
    /// Difference semantics (eq. 5).
    pub dif: DifMode,
}

/// Why a proposal was rejected as inadmissible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Inadmissible {
    /// The proposal does not cover every requested attribute.
    WrongShape,
    /// The value offered for `dimension.attribute` is not among the user's
    /// acceptable levels — the proposal "cannot satisfy all the QoS
    /// dimensions requested by the user" (§6).
    UnacceptableValue {
        /// Dimension name.
        dimension: String,
        /// Attribute name.
        attribute: String,
    },
}

/// The distance evaluator (stateless; all inputs passed per call).
#[derive(Debug, Clone, Copy, Default)]
pub struct Evaluator {
    /// Configuration knobs.
    pub config: EvalConfig,
}

impl Evaluator {
    /// Creates an evaluator with the paper's defaults (absolute dif).
    pub fn new(config: EvalConfig) -> Self {
        Self { config }
    }

    /// Checks admissibility: the proposal must offer, for every requested
    /// attribute (in [`ResolvedRequest::iter_attrs`] order), a value from
    /// the user's acceptable ladder.
    pub fn admissible(
        &self,
        request: &ResolvedRequest,
        offered: &[Value],
    ) -> Result<(), Inadmissible> {
        if offered.len() != request.attr_count() {
            return Err(Inadmissible::WrongShape);
        }
        for (((k, _i), pref), v) in request.iter_attrs().zip(offered.iter()) {
            if !pref.levels.contains(v) {
                return Err(Inadmissible::UnacceptableValue {
                    dimension: request.dimensions[k].name.clone(),
                    attribute: pref.name.clone(),
                });
            }
        }
        Ok(())
    }

    /// Eq. 5 for one attribute.
    fn dif(&self, spec: &QosSpec, pref: &qosc_spec::ResolvedAttrPref, offered: &Value) -> f64 {
        let attr = spec
            .attribute_at(pref.path)
            .expect("resolved request paths are in-bounds");
        let preferred = &pref.levels[0];
        let raw = if attr.domain.is_discrete() {
            let len = attr.domain.len().unwrap_or(1);
            if len <= 1 {
                0.0
            } else {
                let pp = attr.domain.position(offered).unwrap_or(0) as f64;
                let pr = attr.domain.position(preferred).unwrap_or(0) as f64;
                (pp - pr) / (len - 1) as f64
            }
        } else {
            let span = attr.domain.span().unwrap_or(0.0);
            if span <= 0.0 {
                0.0
            } else {
                let pv = offered.as_f64().unwrap_or(0.0);
                let rv = preferred.as_f64().unwrap_or(0.0);
                (pv - rv) / span
            }
        };
        match self.config.dif {
            DifMode::Absolute => raw.abs(),
            DifMode::SignedPaperLiteral => raw,
        }
    }

    /// Eq. 2: the full weighted distance of an *admissible* proposal.
    /// `offered` is one value per requested attribute in
    /// [`ResolvedRequest::iter_attrs`] order.
    ///
    /// Call [`Evaluator::admissible`] first; this method assumes shape
    /// validity (it will still compute a score for unacceptable values,
    /// which the organizer never does).
    pub fn distance(&self, spec: &QosSpec, request: &ResolvedRequest, offered: &[Value]) -> f64 {
        let n = request.dim_count();
        let mut total = 0.0;
        let mut flat = 0usize;
        for (k, dim) in request.dimensions.iter().enumerate() {
            let wk = self.config.weights.weight(k, n);
            let attrk = dim.attributes.len();
            let mut dist_k = 0.0;
            for (i, pref) in dim.attributes.iter().enumerate() {
                let wi = self.config.weights.weight(i, attrk);
                let offered_v = &offered[flat];
                dist_k += wi * self.dif(spec, pref, offered_v);
                flat += 1;
            }
            total += wk * dist_k;
        }
        total
    }

    /// Convenience: distance of the proposal expressed as level indexes
    /// into the request's ladders.
    pub fn distance_of_levels(
        &self,
        spec: &QosSpec,
        request: &ResolvedRequest,
        level_indexes: &[usize],
    ) -> Option<f64> {
        let offered: Option<Vec<Value>> = request
            .iter_attrs()
            .zip(level_indexes.iter())
            .map(|((_, a), &i)| a.levels.get(i).cloned())
            .collect();
        let offered = offered?;
        if offered.len() != request.attr_count() {
            return None;
        }
        Some(self.distance(spec, request, &offered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_spec::{catalog, Value};

    fn setup() -> (qosc_spec::QosSpec, ResolvedRequest, Evaluator) {
        let spec = catalog::av_spec();
        let req = catalog::surveillance_request().resolve(&spec).unwrap();
        (spec, req, Evaluator::default())
    }

    #[test]
    fn weight_scheme_matches_eq3() {
        let w = WeightScheme::PaperLinear;
        // n = 2 dimensions: w1 = 2/2 = 1, w2 = 1/2.
        assert_eq!(w.weight(0, 2), 1.0);
        assert_eq!(w.weight(1, 2), 0.5);
        // n = 3: 1, 2/3, 1/3.
        assert!((w.weight(1, 3) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(WeightScheme::Uniform.weight(5, 9), 1.0);
        assert_eq!(WeightScheme::Harmonic.weight(1, 9), 0.5);
    }

    #[test]
    fn preferred_everywhere_scores_zero() {
        let (spec, req, ev) = setup();
        let offered: Vec<Value> = req
            .preferred_choices()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        assert!(ev.admissible(&req, &offered).is_ok());
        assert_eq!(ev.distance(&spec, &req, &offered), 0.0);
    }

    #[test]
    fn continuous_dif_normalises_by_domain_span() {
        let (spec, req, ev) = setup();
        // frame_rate preferred 10, offer 5: |5-10| / (30-1) = 5/29.
        // frame_rate is (k=1, i=1): wk = 1, wi = 1 => contribution 5/29.
        let offered = vec![Value::Int(5), Value::Int(3), Value::Int(8), Value::Int(8)];
        let d = ev.distance(&spec, &req, &offered);
        assert!((d - 5.0 / 29.0).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn discrete_dif_uses_quality_index_positions() {
        let (spec, req, ev) = setup();
        // color_depth domain {1,3,8,16,24}: pos(1)=0, pos(3)=1 => |0-1|/4.
        // color_depth is (k=1 video, i=2 of 2): wk=1, wi=1/2 => 1/8.
        let offered = vec![Value::Int(10), Value::Int(1), Value::Int(8), Value::Int(8)];
        let d = ev.distance(&spec, &req, &offered);
        assert!((d - 0.125).abs() < 1e-12, "d = {d}");
    }

    #[test]
    fn dimension_rank_discounts_later_dimensions() {
        // Same degradation magnitude placed in the audio dimension must
        // cost less than in the video dimension (video ranks first).
        let spec = catalog::av_spec();
        let req = catalog::video_conference_request().resolve(&spec).unwrap();
        let ev = Evaluator::default();
        let pref: Vec<Value> = req
            .preferred_choices()
            .into_iter()
            .map(|(_, v)| v)
            .collect();
        // Degrade color_depth one ladder step (24 -> 16).
        let mut video_deg = pref.clone();
        video_deg[1] = Value::Int(16);
        // Degrade sampling_rate one ladder step (44 -> 24).
        let mut audio_deg = pref.clone();
        audio_deg[2] = Value::Int(24);
        let dv = ev.distance(&spec, &req, &video_deg);
        let da = ev.distance(&spec, &req, &audio_deg);
        // Identical positional magnitude (one domain step), same in-dimension
        // rank (i=2? no: color_depth i=2/2 wi=0.5; sampling_rate i=1/2 wi=1).
        // Compute explicitly instead: dv = 1*0.5*(1/4), da = 0.5*1*(1/3).
        assert!((dv - 0.125).abs() < 1e-12);
        assert!((da - 1.0 / 6.0).abs() < 1e-12);
        assert!(dv < da);
    }

    #[test]
    fn admissibility_rejects_values_outside_ladders() {
        let (_spec, req, ev) = setup();
        // frame_rate 20 is inside the domain but outside the user's
        // acceptable ladder [10..1].
        let offered = vec![Value::Int(20), Value::Int(3), Value::Int(8), Value::Int(8)];
        match ev.admissible(&req, &offered) {
            Err(Inadmissible::UnacceptableValue {
                dimension,
                attribute,
            }) => {
                assert_eq!(dimension, "Video Quality");
                assert_eq!(attribute, "frame_rate");
            }
            other => panic!("expected UnacceptableValue, got {other:?}"),
        }
        // Wrong shape.
        assert_eq!(
            ev.admissible(&req, &[Value::Int(10)]),
            Err(Inadmissible::WrongShape)
        );
    }

    #[test]
    fn lower_distance_means_closer_to_preferences() {
        let (spec, req, ev) = setup();
        let best = vec![Value::Int(10), Value::Int(3), Value::Int(8), Value::Int(8)];
        let mid = vec![Value::Int(8), Value::Int(3), Value::Int(8), Value::Int(8)];
        let worst = vec![Value::Int(1), Value::Int(1), Value::Int(8), Value::Int(8)];
        let db = ev.distance(&spec, &req, &best);
        let dm = ev.distance(&spec, &req, &mid);
        let dw = ev.distance(&spec, &req, &worst);
        assert!(db < dm && dm < dw);
    }

    #[test]
    fn signed_mode_reproduces_paper_literal_formula() {
        let (spec, req, _) = setup();
        let ev = Evaluator::new(EvalConfig {
            weights: WeightScheme::PaperLinear,
            dif: DifMode::SignedPaperLiteral,
        });
        // Offering frame_rate 5 when preferring 10: signed dif is negative.
        let offered = vec![Value::Int(5), Value::Int(3), Value::Int(8), Value::Int(8)];
        let d = ev.distance(&spec, &req, &offered);
        assert!(d < 0.0, "signed literal mode rewards undershooting: {d}");
    }

    #[test]
    fn distance_of_levels_agrees_with_values() {
        let (spec, req, ev) = setup();
        let d_levels = ev.distance_of_levels(&spec, &req, &[3, 1, 0, 0]).unwrap();
        // Level 3 of frame_rate ladder [10,9,8,7,...] = 7; level 1 of
        // color_depth [3,1] = 1.
        let offered = vec![Value::Int(7), Value::Int(1), Value::Int(8), Value::Int(8)];
        let d_vals = ev.distance(&spec, &req, &offered);
        assert!((d_levels - d_vals).abs() < 1e-12);
        assert!(ev.distance_of_levels(&spec, &req, &[99, 0, 0, 0]).is_none());
        assert!(ev.distance_of_levels(&spec, &req, &[0, 0]).is_none());
    }

    #[test]
    fn single_valued_domains_contribute_zero() {
        // A discrete domain of length 1 cannot differentiate proposals.
        use qosc_spec::{Attribute, Dimension, Domain, LevelSpec, QosSpec, ServiceRequest};
        let spec = QosSpec::builder("s")
            .dimension(Dimension::new(
                "D",
                vec![Attribute::new("only", Domain::DiscreteInt(vec![5]))],
            ))
            .build()
            .unwrap();
        let req = ServiceRequest::builder("r")
            .dimension("D")
            .attribute("only", vec![LevelSpec::value(5i64)])
            .build()
            .resolve(&spec)
            .unwrap();
        let ev = Evaluator::default();
        assert_eq!(ev.distance(&spec, &req, &[Value::Int(5)]), 0.0);
    }
}
