//! Winner selection and the paper's three-level tie-break (§4.2).
//!
//! "The coalition is formed based on the set of proposals that presents:
//! lowest evaluation value … lowest communication cost … lowest number of
//! distinct nodes in coalition."
//!
//! The first two criteria are per-task; the third couples tasks (it is a
//! property of the whole assignment). The protocol's selection is the
//! greedy sequential reading: tasks are processed in submission order, each
//! filtered through the criteria in [`TieBreak::order`]; the member-count
//! criterion prefers candidates already chosen for an earlier task.
//! Experiment F6 compares this greedy against an exact distinct-member
//! minimiser (in `qosc-baselines`), and T3 ablates the criterion order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use qosc_spec::TaskId;

use crate::protocol::Pid;

/// One admissible, evaluated proposal for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Proposing node.
    pub node: Pid,
    /// Eq. 2 distance (lower = closer to the user's preferences).
    pub distance: f64,
    /// Estimated payload-shipping cost in seconds (0 for local execution).
    pub comm_cost: f64,
}

/// The three §4.2 criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Criterion {
    /// Lowest evaluation value (eq. 2 distance).
    Distance,
    /// Lowest communication cost.
    CommCost,
    /// Fewest distinct coalition members ("coalition operation's
    /// complexity increases with the number of distinct members").
    Members,
}

/// Ordered tie-break configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieBreak {
    /// Criteria applied lexicographically. The paper's order is
    /// `[Distance, CommCost, Members]`.
    pub order: [Criterion; 3],
    /// Two scores within `epsilon` are considered tied.
    pub epsilon: f64,
}

impl Default for TieBreak {
    fn default() -> Self {
        Self {
            order: [Criterion::Distance, Criterion::CommCost, Criterion::Members],
            epsilon: 1e-9,
        }
    }
}

impl TieBreak {
    /// All six permutations of the criteria (for the T3 ablation).
    pub fn permutations() -> Vec<TieBreak> {
        use Criterion::*;
        [
            [Distance, CommCost, Members],
            [Distance, Members, CommCost],
            [CommCost, Distance, Members],
            [CommCost, Members, Distance],
            [Members, Distance, CommCost],
            [Members, CommCost, Distance],
        ]
        .into_iter()
        .map(|order| TieBreak {
            order,
            epsilon: 1e-9,
        })
        .collect()
    }
}

/// Outcome of winner selection.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Selection {
    /// Winning node per task.
    pub assignments: BTreeMap<TaskId, Pid>,
    /// Tasks with no admissible proposal at all.
    pub unassigned: Vec<TaskId>,
    /// Total eq. 2 distance over assigned tasks.
    pub total_distance: f64,
    /// Total communication cost over assigned tasks (seconds).
    pub total_comm_cost: f64,
}

impl Selection {
    /// Number of distinct coalition members.
    pub fn distinct_members(&self) -> usize {
        let mut nodes: Vec<Pid> = self.assignments.values().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// True when every task found a home.
    pub fn complete(&self) -> bool {
        self.unassigned.is_empty()
    }
}

/// Greedy sequential winner selection over per-task candidate lists.
///
/// `candidates` maps each task to its admissible proposals (any order).
/// Tasks appear in the output in `BTreeMap` (submission) order; the final
/// deterministic tie-break is the lowest node id.
pub fn select_winners(
    candidates: &BTreeMap<TaskId, Vec<Candidate>>,
    tiebreak: &TieBreak,
) -> Selection {
    let mut sel = Selection::default();
    let mut chosen_nodes: Vec<Pid> = Vec::new();
    for (&task, cands) in candidates {
        if cands.is_empty() {
            sel.unassigned.push(task);
            continue;
        }
        let mut pool: Vec<&Candidate> = cands.iter().collect();
        for crit in tiebreak.order {
            if pool.len() <= 1 {
                break;
            }
            match crit {
                Criterion::Distance => {
                    let best = pool
                        .iter()
                        .map(|c| c.distance)
                        .fold(f64::INFINITY, f64::min);
                    pool.retain(|c| c.distance <= best + tiebreak.epsilon);
                }
                Criterion::CommCost => {
                    let best = pool
                        .iter()
                        .map(|c| c.comm_cost)
                        .fold(f64::INFINITY, f64::min);
                    pool.retain(|c| c.comm_cost <= best + tiebreak.epsilon);
                }
                Criterion::Members => {
                    if pool.iter().any(|c| chosen_nodes.contains(&c.node)) {
                        pool.retain(|c| chosen_nodes.contains(&c.node));
                    }
                }
            }
        }
        let winner = pool
            .into_iter()
            .min_by_key(|c| c.node)
            .expect("pool retained at least one candidate");
        sel.assignments.insert(task, winner.node);
        sel.total_distance += winner.distance;
        sel.total_comm_cost += winner.comm_cost;
        if !chosen_nodes.contains(&winner.node) {
            chosen_nodes.push(winner.node);
        }
    }
    sel
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(node: Pid, distance: f64, comm: f64) -> Candidate {
        Candidate {
            node,
            distance,
            comm_cost: comm,
        }
    }

    fn one_task(cands: Vec<Candidate>) -> BTreeMap<TaskId, Vec<Candidate>> {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), cands);
        m
    }

    #[test]
    fn lowest_distance_wins() {
        let sel = select_winners(
            &one_task(vec![
                cand(1, 0.5, 0.0),
                cand(2, 0.2, 9.0),
                cand(3, 0.9, 0.0),
            ]),
            &TieBreak::default(),
        );
        assert_eq!(sel.assignments[&TaskId(0)], 2);
        assert!((sel.total_distance - 0.2).abs() < 1e-12);
    }

    #[test]
    fn comm_cost_breaks_distance_ties() {
        let sel = select_winners(
            &one_task(vec![cand(1, 0.5, 3.0), cand(2, 0.5, 1.0)]),
            &TieBreak::default(),
        );
        assert_eq!(sel.assignments[&TaskId(0)], 2);
    }

    #[test]
    fn member_criterion_prefers_existing_members() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), vec![cand(5, 0.1, 1.0)]);
        // Task 1: node 5 (already member) ties with node 9 on both scores.
        m.insert(TaskId(1), vec![cand(9, 0.3, 1.0), cand(5, 0.3, 1.0)]);
        let sel = select_winners(&m, &TieBreak::default());
        assert_eq!(sel.assignments[&TaskId(1)], 5);
        assert_eq!(sel.distinct_members(), 1);
    }

    #[test]
    fn member_criterion_never_overrides_distance_in_paper_order() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), vec![cand(5, 0.1, 1.0)]);
        // Node 9 is strictly better on distance; member preference must not
        // override it under the paper's order.
        m.insert(TaskId(1), vec![cand(9, 0.2, 1.0), cand(5, 0.3, 1.0)]);
        let sel = select_winners(&m, &TieBreak::default());
        assert_eq!(sel.assignments[&TaskId(1)], 9);
        assert_eq!(sel.distinct_members(), 2);
    }

    #[test]
    fn members_first_order_consolidates() {
        use Criterion::*;
        let tb = TieBreak {
            order: [Members, Distance, CommCost],
            epsilon: 1e-9,
        };
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), vec![cand(5, 0.1, 1.0)]);
        m.insert(TaskId(1), vec![cand(9, 0.2, 1.0), cand(5, 0.3, 1.0)]);
        let sel = select_winners(&m, &tb);
        // Members-first keeps node 5 even at worse distance.
        assert_eq!(sel.assignments[&TaskId(1)], 5);
        assert_eq!(sel.distinct_members(), 1);
    }

    #[test]
    fn empty_candidate_list_leaves_task_unassigned() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), vec![cand(1, 0.1, 0.0)]);
        m.insert(TaskId(1), vec![]);
        let sel = select_winners(&m, &TieBreak::default());
        assert_eq!(sel.unassigned, vec![TaskId(1)]);
        assert!(!sel.complete());
        assert_eq!(sel.assignments.len(), 1);
    }

    #[test]
    fn final_tie_break_is_lowest_node_id() {
        let sel = select_winners(
            &one_task(vec![
                cand(9, 0.5, 1.0),
                cand(3, 0.5, 1.0),
                cand(7, 0.5, 1.0),
            ]),
            &TieBreak::default(),
        );
        assert_eq!(sel.assignments[&TaskId(0)], 3);
    }

    #[test]
    fn totals_accumulate_over_tasks() {
        let mut m = BTreeMap::new();
        m.insert(TaskId(0), vec![cand(1, 0.25, 2.0)]);
        m.insert(TaskId(1), vec![cand(2, 0.50, 3.0)]);
        let sel = select_winners(&m, &TieBreak::default());
        assert!((sel.total_distance - 0.75).abs() < 1e-12);
        assert!((sel.total_comm_cost - 5.0).abs() < 1e-12);
        assert_eq!(sel.distinct_members(), 2);
        assert!(sel.complete());
    }

    #[test]
    fn permutations_cover_all_orders() {
        let perms = TieBreak::permutations();
        assert_eq!(perms.len(), 6);
        let mut seen: Vec<_> = perms.iter().map(|p| p.order).collect();
        seen.dedup();
        assert_eq!(seen.len(), 6);
    }
}
