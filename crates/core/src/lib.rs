//! # qosc-core — Dynamic QoS-Aware Coalition Formation
//!
//! The primary contribution of Nogueira & Pinho (2005), as a library:
//!
//! * [`Evaluator`] — the multi-attribute proposal evaluation of §6
//!   (equations 2–5): rank-derived weights, normalised continuous
//!   differences, Quality-Index positional differences, admissibility.
//! * [`CompiledRequest`] — the same metric compiled once per resolved
//!   request (flat `w_k·w_i` weight products, domain normalizers,
//!   Quality-Index position tables) with batched scoring
//!   ([`CompiledRequest::evaluate_batch`]) for the hot paths.
//! * [`formulate`] / [`Formulator`] — the local proposal-formulation
//!   heuristic of §5 with the eq. 1 reward ([`LinearPenalty`],
//!   [`QuadraticPenalty`]), built as a reusable engine: heap-driven
//!   O(log A) degradation steps, prefix-feasibility shedding for
//!   overloaded bundles, and a per-provider compile cache
//!   ([`PreparedTask`]) keyed by spec + request.
//! * [`OrganizerEngine`] / [`ProviderEngine`] — the §4.2 negotiation
//!   protocol as sans-IO state machines covering the full coalition life
//!   cycle (Formation / Operation with heartbeat monitoring and
//!   failure-triggered reconfiguration / Dissolution).
//! * [`select_winners`] — winner selection with the paper's three-level
//!   tie-break (evaluation value ≻ communication cost ≻ distinct members),
//!   fully configurable for ablations ([`TieBreak`]).
//! * [`runtime`] — one execution API, four backends: the engines run
//!   unmodified on the deterministic DES ([`DesRuntime`]), its
//!   region-partitioned parallel sibling ([`DesShardedRuntime`]), the
//!   live threaded actor transport ([`ActorRuntime`]) or the
//!   zero-latency in-memory fast path ([`DirectRuntime`]).
//!
//! ## Quick start
//!
//! Three heterogeneous nodes negotiate a one-task coalition on the
//! zero-latency [`DirectRuntime`]; swap in [`DesRuntime`] or
//! [`ActorRuntime`] without touching the scenario (see the [`runtime`]
//! module docs for the three-backend version of this exact snippet).
//!
//! ```
//! use std::sync::Arc;
//! use qosc_core::{
//!     CoalitionNode, DirectRuntime, NegoEvent, OrganizerConfig, OrganizerEngine,
//!     ProviderConfig, ProviderEngine, Runtime,
//! };
//! use qosc_netsim::SimTime;
//! use qosc_resources::{av_demand_model, ResourceVector};
//! use qosc_spec::{catalog, ServiceDef, TaskDef};
//!
//! let spec = catalog::av_spec();
//! let mut rt = DirectRuntime::new();
//! for i in 0..3u32 {
//!     // Providers with heterogeneous CPU; node 0 also organizes.
//!     let mut p = ProviderEngine::new(
//!         i,
//!         ResourceVector::new(100.0 + 150.0 * i as f64, 256.0, 5000.0, 40.0, 4000.0),
//!         ProviderConfig::default(),
//!     );
//!     p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
//!     let mut node = CoalitionNode::new(i).with_provider(p);
//!     if i == 0 {
//!         node = node.with_organizer(OrganizerEngine::new(i, OrganizerConfig::default()));
//!     }
//!     rt.add_node(node).unwrap();
//! }
//! // One service with one surveillance task, requested at node 0.
//! let service = ServiceDef::new(
//!     "demo",
//!     vec![TaskDef {
//!         name: "camera".into(),
//!         spec: spec.clone(),
//!         request: catalog::surveillance_request(),
//!         input_bytes: 50_000,
//!         output_bytes: 5_000,
//!     }],
//! );
//! rt.submit(0, service, SimTime(1_000)).unwrap();
//! rt.run(SimTime(5_000_000));
//! assert!(rt
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e.event, NegoEvent::Formed { .. })));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compiled;
mod evaluation;
mod formation;
mod formulation;
mod metrics;
mod organizer;
mod protocol;
mod provider;
pub mod runtime;
pub mod snapshot;
pub mod strategy;

pub use compiled::CompiledRequest;
pub use evaluation::{DifMode, EvalConfig, Evaluator, Inadmissible, WeightScheme};
pub use formation::{select_winners, Candidate, Criterion, Selection, TieBreak};
pub use formulation::{
    formulate, formulate_prepared, formulate_reference, formulate_shedding, local_reward,
    Formulated, FormulationError, Formulator, LinearPenalty, PenaltyTable, PreparedTask,
    QuadraticPenalty, RewardModel, TaskInput,
};
pub use metrics::{NegoEvent, NegotiationMetrics, TaskOutcome};
pub use organizer::{NegoPhase, OrganizerConfig, OrganizerEngine, TaskLifecycle};
pub use protocol::{
    decode_timer, encode_timer, Action, Msg, NegoId, Pid, TaskAnnouncement, TaskProposal, TimerKind,
};
pub use provider::{ProposalStrategy, ProviderConfig, ProviderEngine};
pub use runtime::{
    dissolve_token, kickoff_token, single_organizer_scenario, ActorRuntime, ActorWire,
    CoalitionNode, DesRuntime, DesShardedRuntime, DirectRuntime, LoggedEvent, NodeEngine, Runtime,
    RuntimeError,
};
pub use snapshot::{digest_of, StableHasher, StateDigest};
pub use strategy::{OrganizerComponent, OrganizerStrategy, ProviderComponent, ProviderStrategy};
