//! # qosc-core — Dynamic QoS-Aware Coalition Formation
//!
//! The primary contribution of Nogueira & Pinho (2005), as a library:
//!
//! * [`Evaluator`] — the multi-attribute proposal evaluation of §6
//!   (equations 2–5): rank-derived weights, normalised continuous
//!   differences, Quality-Index positional differences, admissibility.
//! * [`CompiledRequest`] — the same metric compiled once per resolved
//!   request (flat `w_k·w_i` weight products, domain normalizers,
//!   Quality-Index position tables) with batched scoring
//!   ([`CompiledRequest::evaluate_batch`]) for the hot paths.
//! * [`formulate`] — the local proposal-formulation heuristic of §5 with
//!   the eq. 1 reward ([`LinearPenalty`], [`QuadraticPenalty`]).
//! * [`OrganizerEngine`] / [`ProviderEngine`] — the §4.2 negotiation
//!   protocol as sans-IO state machines covering the full coalition life
//!   cycle (Formation / Operation with heartbeat monitoring and
//!   failure-triggered reconfiguration / Dissolution).
//! * [`select_winners`] — winner selection with the paper's three-level
//!   tie-break (evaluation value ≻ communication cost ≻ distinct members),
//!   fully configurable for ablations ([`TieBreak`]).
//! * [`SimHost`] — glue that runs the engines inside the `qosc-netsim`
//!   ad-hoc network simulator (the live threaded transport is assembled
//!   from `qosc-actors` in the examples and integration tests).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use qosc_core::{
//!     single_organizer_scenario, OrganizerConfig, ProviderConfig, ProviderEngine,
//! };
//! use qosc_netsim::{Mobility, Point, SimConfig, SimDuration, SimTime, Simulator};
//! use qosc_resources::{av_demand_model, ResourceVector};
//! use qosc_spec::{catalog, ServiceDef, TaskDef};
//!
//! // Three static nodes in range of each other.
//! let mut sim = Simulator::new(SimConfig::default());
//! for i in 0..3 {
//!     sim.add_node(Point::new(10.0 * i as f64, 0.0), Mobility::Static);
//! }
//! // Providers with heterogeneous CPU.
//! let spec = catalog::av_spec();
//! let providers = (0..3u32)
//!     .map(|i| {
//!         let mut p = ProviderEngine::new(
//!             i,
//!             ResourceVector::new(100.0 + 150.0 * i as f64, 256.0, 5000.0, 40.0, 4000.0),
//!             ProviderConfig::default(),
//!         );
//!         p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
//!         p
//!     })
//!     .collect();
//! // One service with one surveillance task, requested at node 0.
//! let service = ServiceDef::new(
//!     "demo",
//!     vec![TaskDef {
//!         name: "camera".into(),
//!         spec: spec.clone(),
//!         request: catalog::surveillance_request(),
//!         input_bytes: 50_000,
//!         output_bytes: 5_000,
//!     }],
//! );
//! let (mut sim, mut host) = single_organizer_scenario(
//!     sim,
//!     OrganizerConfig::default(),
//!     providers,
//!     service,
//!     SimDuration::millis(1),
//! );
//! sim.run_until(&mut host, SimTime(5_000_000));
//! assert!(host.events.iter().any(|e| matches!(
//!     e.event,
//!     qosc_core::NegoEvent::Formed { .. }
//! )));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compiled;
mod evaluation;
mod formation;
mod formulation;
mod metrics;
mod organizer;
mod protocol;
mod provider;
mod simglue;

pub use compiled::CompiledRequest;
pub use evaluation::{DifMode, EvalConfig, Evaluator, Inadmissible, WeightScheme};
pub use formation::{select_winners, Candidate, Criterion, Selection, TieBreak};
pub use formulation::{
    formulate, local_reward, Formulated, FormulationError, LinearPenalty, QuadraticPenalty,
    RewardModel, TaskInput,
};
pub use metrics::{NegoEvent, NegotiationMetrics, TaskOutcome};
pub use organizer::{OrganizerConfig, OrganizerEngine};
pub use protocol::{
    decode_timer, encode_timer, Action, Msg, NegoId, Pid, TaskAnnouncement, TaskProposal, TimerKind,
};
pub use provider::{ProposalStrategy, ProviderConfig, ProviderEngine};
pub use simglue::{dissolve_token, kickoff_token, single_organizer_scenario, LoggedEvent, SimHost};
