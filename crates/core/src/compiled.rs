//! Compiled, batched proposal evaluation (§6 on the hot path).
//!
//! [`Evaluator`](crate::Evaluator) recomputes, for every proposal, the
//! eq. 3 weight products, the per-domain normalizers and the Quality-Index
//! positions by walking the spec. All of those are functions of the
//! *(spec, request, config)* triple alone, and the negotiation fixes that
//! triple once per resolved request — so a [`CompiledRequest`] hoists them
//! out of the per-proposal loop:
//!
//! * the flat per-attribute weight products `w_k·w_i` (eq. 3 applied at
//!   both ranks);
//! * the domain normalizers — `1/(len−1)` for discrete ladders and
//!   `1/span` for continuous intervals, with the ≤1-level and zero-span
//!   domains compiled to a zero factor (matching the reference guards);
//! * the Quality-Index position table `pos(·)` per discrete domain;
//! * the per-ladder-level score table, so proposals expressed as level
//!   indexes (the protocol's native encoding) price in one lookup per
//!   attribute.
//!
//! [`CompiledRequest::evaluate_batch`] scores a whole slate of proposals
//! against the tables and returns the §6 winner in one call. The
//! per-proposal [`Evaluator`](crate::Evaluator) remains the reference
//! implementation; the `compiled_props` integration test pins the two to
//! each other within 1e-12 across random specs, requests and proposals.

use qosc_spec::{Domain, QosSpec, ResolvedRequest, Value};

use crate::evaluation::{DifMode, EvalConfig, Inadmissible};

/// Quality-Index position table: the domain's values in declaration
/// order, specialised by value type. QoS domains are tiny (a handful of
/// levels), so a typed linear probe beats any hashing scheme — hashing a
/// [`Value`] costs more than scanning the whole table.
#[derive(Debug, Clone)]
enum PositionTable {
    /// Integer domain values.
    Int(Vec<i64>),
    /// Float or symbolic domain values.
    Other(Vec<Value>),
}

impl PositionTable {
    /// `pos(v)`, with the reference's `unwrap_or(0)` fallback for values
    /// outside the declaration (and for type mismatches).
    fn position(&self, v: &Value) -> f64 {
        let pos = match (self, v) {
            (PositionTable::Int(d), Value::Int(i)) => d.iter().position(|x| x == i),
            (PositionTable::Int(_), _) => None,
            (PositionTable::Other(d), v) => d.iter().position(|x| x == v),
        };
        pos.unwrap_or(0) as f64
    }
}

/// Compiled eq. 5 state for one attribute's domain.
#[derive(Debug, Clone)]
enum DifTable {
    /// Discrete domain: Quality-Index positions plus `1/(len−1)`.
    Discrete {
        /// `pos(v)` for every declared domain value.
        positions: PositionTable,
        /// `pos(Pref_ki)` — position of the user's preferred value.
        pref_pos: f64,
        /// `1/(len−1)`, or `0.0` when the domain has ≤ 1 level (such a
        /// domain cannot differentiate proposals).
        inv_norm: f64,
    },
    /// Continuous domain: preferred value plus `1/(max−min)`.
    Continuous {
        /// The user's preferred value, as a float.
        pref: f64,
        /// `1/span`, or `0.0` when the interval has zero width.
        inv_span: f64,
    },
}

/// One requested attribute, fully compiled.
#[derive(Debug, Clone)]
struct CompiledAttr {
    /// Dimension name (for [`Inadmissible`] diagnostics).
    dimension: String,
    /// Attribute name (for [`Inadmissible`] diagnostics).
    attribute: String,
    /// `w_k · w_i` — the eq. 3 weight product of the dimension rank and
    /// the attribute rank within the dimension.
    weight: f64,
    /// The user's acceptable ladder, most-preferred first (admissibility).
    ladder: Vec<Value>,
    /// Weighted score contribution per ladder level:
    /// `level_scores[j] = weight · dif(ladder[j])`.
    level_scores: Vec<f64>,
    /// Compiled eq. 5 difference state.
    dif: DifTable,
}

/// A [`ResolvedRequest`] compiled against its [`QosSpec`] for batched
/// evaluation. Build one per resolved request (the organizer does this at
/// `start_service`) and score any number of proposals against it.
#[derive(Debug, Clone)]
pub struct CompiledRequest {
    config: EvalConfig,
    attrs: Vec<CompiledAttr>,
}

impl CompiledRequest {
    /// Compiles `request` (already resolved against `spec`) under the
    /// given evaluation knobs.
    pub fn compile(spec: &QosSpec, request: &ResolvedRequest, config: EvalConfig) -> Self {
        let n = request.dim_count();
        let mut attrs = Vec::with_capacity(request.attr_count());
        for (k, dim) in request.dimensions.iter().enumerate() {
            let wk = config.weights.weight(k, n);
            let attrk = dim.attributes.len();
            for (i, pref) in dim.attributes.iter().enumerate() {
                let weight = wk * config.weights.weight(i, attrk);
                let attr = spec
                    .attribute_at(pref.path)
                    .expect("resolved request paths are in-bounds");
                let preferred = &pref.levels[0];
                let dif = if attr.domain.is_discrete() {
                    let len = attr.domain.len().unwrap_or(1);
                    let positions = match &attr.domain {
                        Domain::DiscreteInt(v) => PositionTable::Int(v.clone()),
                        d => PositionTable::Other(d.enumerate(0)),
                    };
                    DifTable::Discrete {
                        pref_pos: positions.position(preferred),
                        inv_norm: if len <= 1 {
                            0.0
                        } else {
                            1.0 / (len - 1) as f64
                        },
                        positions,
                    }
                } else {
                    let span = attr.domain.span().unwrap_or(0.0);
                    DifTable::Continuous {
                        pref: preferred.as_f64().unwrap_or(0.0),
                        inv_span: if span <= 0.0 { 0.0 } else { 1.0 / span },
                    }
                };
                let mut compiled = CompiledAttr {
                    dimension: dim.name.clone(),
                    attribute: pref.name.clone(),
                    weight,
                    ladder: pref.levels.clone(),
                    level_scores: Vec::with_capacity(pref.levels.len()),
                    dif,
                };
                compiled.level_scores = pref
                    .levels
                    .iter()
                    .map(|v| compiled.score_one(v, config.dif))
                    .collect();
                attrs.push(compiled);
            }
        }
        Self { config, attrs }
    }

    /// The evaluation knobs this request was compiled under.
    pub fn config(&self) -> EvalConfig {
        self.config
    }

    /// Number of requested attributes (expected proposal width).
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Admissibility (§6): the proposal must offer, for every requested
    /// attribute in `iter_attrs` order, a value from the user's acceptable
    /// ladder. Mirrors [`Evaluator::admissible`](crate::Evaluator::admissible).
    pub fn admissible(&self, offered: &[Value]) -> Result<(), Inadmissible> {
        if offered.len() != self.attrs.len() {
            return Err(Inadmissible::WrongShape);
        }
        for (a, v) in self.attrs.iter().zip(offered.iter()) {
            if !a.ladder.contains(v) {
                return Err(Inadmissible::UnacceptableValue {
                    dimension: a.dimension.clone(),
                    attribute: a.attribute.clone(),
                });
            }
        }
        Ok(())
    }

    /// Eq. 2 distance of one proposal against the compiled tables.
    /// Assumes shape validity (same contract as
    /// [`Evaluator::distance`](crate::Evaluator::distance)).
    pub fn distance(&self, offered: &[Value]) -> f64 {
        debug_assert_eq!(offered.len(), self.attrs.len(), "proposal shape");
        self.attrs
            .iter()
            .zip(offered.iter())
            .map(|(a, v)| a.score_one(v, self.config.dif))
            .sum()
    }

    /// Distance of a proposal expressed as level indexes into the
    /// request's ladders — one table lookup per attribute. `None` when
    /// the shape or any index is out of range.
    pub fn distance_of_levels(&self, level_indexes: &[usize]) -> Option<f64> {
        if level_indexes.len() != self.attrs.len() {
            return None;
        }
        let mut total = 0.0;
        for (a, &idx) in self.attrs.iter().zip(level_indexes.iter()) {
            total += a.level_scores.get(idx)?;
        }
        Some(total)
    }

    /// Admissibility check and eq. 2 distance fused into one pass over the
    /// attributes: `None` when the proposal is inadmissible, `Some(d)`
    /// otherwise. The organizer's per-proposal hot path and the batch
    /// evaluator both use this to avoid walking the attribute tables
    /// twice per proposal.
    pub fn score(&self, offered: &[Value]) -> Option<f64> {
        if offered.len() != self.attrs.len() {
            return None;
        }
        let mut total = 0.0;
        for (a, v) in self.attrs.iter().zip(offered.iter()) {
            if !a.ladder.contains(v) {
                return None;
            }
            total += a.score_one(v, self.config.dif);
        }
        Some(total)
    }

    /// Scores a batch of proposals and selects the §6 winner: the
    /// admissible proposal with the lowest eq. 2 distance (first such
    /// index on ties). Inadmissible proposals score `f64::INFINITY` and
    /// never win. Returns `(best_index, scores)` with `best_index = None`
    /// when no proposal is admissible.
    pub fn evaluate_batch<P: AsRef<[Value]>>(&self, proposals: &[P]) -> (Option<usize>, Vec<f64>) {
        let mut best: Option<(usize, f64)> = None;
        let mut scores = Vec::with_capacity(proposals.len());
        for (i, p) in proposals.iter().enumerate() {
            let score = match self.score(p.as_ref()) {
                Some(d) => {
                    match best {
                        Some((_, b)) if d >= b => {}
                        _ => best = Some((i, d)),
                    }
                    d
                }
                None => f64::INFINITY,
            };
            scores.push(score);
        }
        (best.map(|(i, _)| i), scores)
    }
}

impl CompiledAttr {
    /// Weighted eq. 5 contribution of one offered value.
    fn score_one(&self, offered: &Value, mode: DifMode) -> f64 {
        let raw = match &self.dif {
            DifTable::Discrete {
                positions,
                pref_pos,
                inv_norm,
            } => (positions.position(offered) - pref_pos) * inv_norm,
            DifTable::Continuous { pref, inv_span } => {
                (offered.as_f64().unwrap_or(0.0) - pref) * inv_span
            }
        };
        let dif = match mode {
            DifMode::Absolute => raw.abs(),
            DifMode::SignedPaperLiteral => raw,
        };
        self.weight * dif
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluation::{Evaluator, WeightScheme};
    use qosc_spec::{catalog, Value};

    fn setup() -> (QosSpec, ResolvedRequest) {
        let spec = catalog::av_spec();
        let req = catalog::surveillance_request().resolve(&spec).unwrap();
        (spec, req)
    }

    #[test]
    fn compiled_matches_reference_on_catalog_offers() {
        let (spec, req) = setup();
        for dif in [DifMode::Absolute, DifMode::SignedPaperLiteral] {
            for weights in [
                WeightScheme::PaperLinear,
                WeightScheme::Uniform,
                WeightScheme::Harmonic,
            ] {
                let config = EvalConfig { weights, dif };
                let ev = Evaluator::new(config);
                let compiled = CompiledRequest::compile(&spec, &req, config);
                for offered in [
                    vec![Value::Int(10), Value::Int(3), Value::Int(8), Value::Int(8)],
                    vec![Value::Int(5), Value::Int(1), Value::Int(8), Value::Int(8)],
                    vec![Value::Int(1), Value::Int(3), Value::Int(8), Value::Int(8)],
                    // Out-of-ladder values still price identically.
                    vec![Value::Int(20), Value::Int(24), Value::Int(8), Value::Int(8)],
                ] {
                    let d_ref = ev.distance(&spec, &req, &offered);
                    let d_new = compiled.distance(&offered);
                    assert!((d_ref - d_new).abs() < 1e-12, "{d_ref} vs {d_new}");
                    assert_eq!(ev.admissible(&req, &offered), compiled.admissible(&offered));
                }
            }
        }
    }

    #[test]
    fn level_tables_match_value_scoring() {
        let (spec, req) = setup();
        let ev = Evaluator::default();
        let compiled = CompiledRequest::compile(&spec, &req, EvalConfig::default());
        for levels in [[0, 0, 0, 0], [3, 1, 0, 0], [9, 1, 0, 0]] {
            let d_ref = ev.distance_of_levels(&spec, &req, &levels).unwrap();
            let d_new = compiled.distance_of_levels(&levels).unwrap();
            assert!((d_ref - d_new).abs() < 1e-12);
        }
        assert!(compiled.distance_of_levels(&[99, 0, 0, 0]).is_none());
        assert!(compiled.distance_of_levels(&[0, 0]).is_none());
    }

    #[test]
    fn batch_selects_lowest_admissible_distance() {
        let (spec, req) = setup();
        let compiled = CompiledRequest::compile(&spec, &req, EvalConfig::default());
        let proposals = vec![
            vec![Value::Int(7), Value::Int(3), Value::Int(8), Value::Int(8)],
            // Inadmissible: frame_rate 20 is outside the acceptable ladder.
            vec![Value::Int(20), Value::Int(3), Value::Int(8), Value::Int(8)],
            vec![Value::Int(10), Value::Int(3), Value::Int(8), Value::Int(8)],
            vec![Value::Int(9), Value::Int(1), Value::Int(8), Value::Int(8)],
        ];
        let (best, scores) = compiled.evaluate_batch(&proposals);
        assert_eq!(best, Some(2));
        assert_eq!(scores.len(), 4);
        assert_eq!(scores[2], 0.0);
        assert_eq!(scores[1], f64::INFINITY);
        assert!(scores[0] > 0.0 && scores[3] > 0.0);
    }

    #[test]
    fn batch_of_inadmissible_proposals_has_no_winner() {
        let (spec, req) = setup();
        let compiled = CompiledRequest::compile(&spec, &req, EvalConfig::default());
        let proposals = vec![
            vec![Value::Int(20), Value::Int(3), Value::Int(8), Value::Int(8)],
            vec![Value::Int(10)], // wrong shape
        ];
        let (best, scores) = compiled.evaluate_batch(&proposals);
        assert_eq!(best, None);
        assert!(scores.iter().all(|s| s.is_infinite()));
        let empty: Vec<Vec<Value>> = Vec::new();
        assert_eq!(compiled.evaluate_batch(&empty), (None, Vec::new()));
    }

    #[test]
    fn ties_keep_the_first_proposal() {
        let (spec, req) = setup();
        let compiled = CompiledRequest::compile(&spec, &req, EvalConfig::default());
        let p = vec![Value::Int(9), Value::Int(3), Value::Int(8), Value::Int(8)];
        let (best, scores) = compiled.evaluate_batch(&[p.clone(), p]);
        assert_eq!(best, Some(0));
        assert_eq!(scores[0], scores[1]);
    }
}
