//! The QoS Provider engine (paper §4.1/§5).
//!
//! "QoS Provider: a server that negotiates access to node's resources.
//! Rather than reserving resources directly it will contact the Resource
//! Managers to grant specific resource amounts to the requesting task."
//!
//! On a Call-for-Proposals the provider resolves the announced requests,
//! runs the §5 formulation heuristic against its *currently available*
//! capacity, places tentative holds through its [`NodeLedger`] (so two
//! concurrent negotiations cannot be promised the same CPU), and replies
//! with a multi-attribute proposal per task. Holds expire if the
//! negotiation dies; an [`Msg::Award`] upgrades them to committed grants
//! and starts the operation-phase heartbeats.

use std::collections::HashMap;
use std::sync::Arc;

use qosc_netsim::{SimDuration, SimTime};
use qosc_resources::{
    AdmissionControl, DemandModel, NodeLedger, ResourceVector, SchedulingPolicy, VectorHold,
};
use qosc_spec::{QosSpec, ServiceRequest, TaskId};

use crate::formulation::{local_reward, Formulator, LinearPenalty, PreparedTask, RewardModel};
use crate::protocol::{
    encode_timer, Action, Msg, NegoId, Pid, TaskAnnouncement, TaskProposal, TimerKind,
};
use crate::strategy::{AwardContext, CfpContext, ProviderStrategy, TaskOffer};

/// How the provider prices a multi-task CFP (see experiment F4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProposalStrategy {
    /// Paper-literal §5: one joint degradation over the announced set —
    /// every offer assumes the node wins everything announced.
    #[default]
    Joint,
    /// Price tasks one at a time, each against the capacity left after
    /// the holds already placed for this bundle.
    Sequential,
}

/// Provider tunables.
#[derive(Clone)]
pub struct ProviderConfig {
    /// Bandwidth this node can devote to task payloads (kbit/s); declared
    /// in proposals and used by the organizer's comm-cost tie-break.
    pub link_kbps: f64,
    /// Local CPU scheduling policy for the admission test.
    pub policy: SchedulingPolicy,
    /// How long tentative holds survive without an award.
    pub hold_ttl: SimDuration,
    /// Heartbeat period while executing tasks.
    pub heartbeat_interval: SimDuration,
    /// Whether this node volunteers at all (a battery policy may say no).
    pub participate: bool,
    /// Whether to arm operation-phase heartbeats on award. Disabled by
    /// model-checking scenarios: the periodic self-re-arming timer makes
    /// the reachable state space infinite, and liveness there is judged at
    /// negotiation quiescence instead.
    pub heartbeats: bool,
    /// Committed-grant lease: when set, every accepted award must be
    /// refreshed by [`Msg::LeaseRenew`] (or a fresh award) within this
    /// window or its resources are released. This is the partition
    /// backstop — capacity committed to an organizer that vanished behind
    /// a network cut is eventually returned to the pool instead of being
    /// trapped forever. `None` (the default) keeps commits durable until
    /// an explicit [`Msg::Release`], the exact pre-lease behaviour.
    pub commit_ttl: Option<SimDuration>,
    /// Reward model for the §5 heuristic.
    pub reward: Arc<dyn RewardModel>,
    /// Multi-task pricing strategy.
    pub strategy: ProposalStrategy,
    /// Pluggable decision chain consulted at every CFP/award decision
    /// point; empty = exact pre-chain behaviour (see [`crate::strategy`]).
    pub chain: ProviderStrategy,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        Self {
            link_kbps: 1000.0,
            policy: SchedulingPolicy::Edf,
            hold_ttl: SimDuration::millis(400),
            heartbeat_interval: SimDuration::millis(500),
            participate: true,
            heartbeats: true,
            commit_ttl: None,
            reward: Arc::new(LinearPenalty::default()),
            strategy: ProposalStrategy::Joint,
            chain: ProviderStrategy::default(),
        }
    }
}

impl ProviderConfig {
    /// The canonical tuning for exhaustive model checking (`qosc-mc`):
    /// zero hold TTL and no heartbeats. The explorer is time-abstract
    /// (every expiry-vs-award ordering is explored regardless of the
    /// TTL), so a zero TTL only keeps path-dependent expiry timestamps
    /// out of the canonical state digest; heartbeats re-arm their timer
    /// forever, which would leave the explorer no quiescent states.
    pub fn for_model_checking() -> Self {
        Self {
            hold_ttl: SimDuration::ZERO,
            heartbeats: false,
            ..Self::default()
        }
    }
}

impl std::fmt::Debug for ProviderConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Every tunable shows up, so property-test failure output carries
        // the full provider configuration (the `dyn RewardModel` prints
        // its name — trait objects cannot derive `Debug`).
        f.debug_struct("ProviderConfig")
            .field("link_kbps", &self.link_kbps)
            .field("policy", &self.policy)
            .field("hold_ttl", &self.hold_ttl)
            .field("heartbeat_interval", &self.heartbeat_interval)
            .field("participate", &self.participate)
            .field("heartbeats", &self.heartbeats)
            .field("commit_ttl", &self.commit_ttl)
            .field("reward", &self.reward.name())
            .field("strategy", &self.strategy)
            .field("chain", &self.chain)
            .finish()
    }
}

/// Warm-trajectory key for a negotiation: organizer pid in the high
/// word, per-organizer sequence in the low word — unique per negotiation.
/// (A collision would only cost a trajectory rebuild, never a wrong
/// result: warm entries verify bundle identity before replaying.)
fn warm_key(nego: NegoId) -> u64 {
    (u64::from(nego.organizer) << 32) | u64::from(nego.seq)
}

/// Batch-scoped prepare memo. CFPs in one batch repeatedly announce the
/// same `(spec, request)` pairs — every task of a service, every service
/// stamped from one template — and [`Formulator::prepare`] pays two
/// `String` key allocations plus a structural verification per call. The
/// memo answers repeats from a small vector keyed by name and verified by
/// content equality against the batch's first occurrence, so repeated
/// announcements cost one comparison and zero allocations. Resolution
/// failures are memoised too (`None`), matching `prepare`'s per-call
/// failure result.
#[derive(Default)]
struct PrepMemo<'a> {
    entries: Vec<(&'a QosSpec, &'a ServiceRequest, Option<Arc<PreparedTask>>)>,
}

impl<'a> PrepMemo<'a> {
    fn resolve(
        &mut self,
        formulator: &mut Formulator,
        spec: &'a QosSpec,
        request: &'a ServiceRequest,
        model: &Arc<dyn DemandModel>,
    ) -> Option<Arc<PreparedTask>> {
        for (s, r, prepared) in &self.entries {
            if s.name() == spec.name() && r.name == request.name {
                if **s == *spec && **r == *request {
                    return prepared.clone();
                }
                // Colliding name, different content: fall through to the
                // formulator, whose cache verifies structurally.
                break;
            }
        }
        let p = formulator.prepare(spec, request, model);
        self.entries.push((spec, request, p.clone()));
        p
    }
}

/// The sans-IO QoS Provider.
#[derive(Clone)]
pub struct ProviderEngine {
    id: Pid,
    config: ProviderConfig,
    ledger: NodeLedger,
    demand_models: HashMap<String, Arc<dyn DemandModel>>,
    /// The reusable §5 engine: compile cache + scratch, shared by every
    /// CFP this provider prices.
    formulator: Formulator,
    /// Tentative holds per (negotiation, task).
    holds: HashMap<(NegoId, TaskId), VectorHold>,
    /// Committed grants per (negotiation, task).
    committed: HashMap<(NegoId, TaskId), VectorHold>,
    /// Negotiations we execute tasks for (heartbeat targets).
    active: HashMap<NegoId, Vec<TaskId>>,
    /// Heartbeat timers armed per negotiation (avoid duplicates).
    heartbeat_armed: HashMap<NegoId, bool>,
    /// Highest CFP round heard per negotiation (partition recovery: a
    /// fresh round re-announcing a task we committed in an older round
    /// proves the organizer gave that award up).
    latest_round: HashMap<NegoId, u32>,
    /// The CFP round each committed grant was proposed in.
    commit_round: HashMap<(NegoId, TaskId), u32>,
    /// Commit-lease expiry per grant (only populated under `commit_ttl`).
    lease_deadline: HashMap<(NegoId, TaskId), SimTime>,
    /// Lease-check timers armed per negotiation (avoid duplicates).
    lease_armed: HashMap<NegoId, bool>,
}

impl ProviderEngine {
    /// Creates a provider for node `id` with the given capacity.
    pub fn new(id: Pid, capacity: ResourceVector, config: ProviderConfig) -> Self {
        let formulator = Formulator::new(Arc::clone(&config.reward));
        Self {
            id,
            config,
            ledger: NodeLedger::new(capacity),
            demand_models: HashMap::new(),
            formulator,
            holds: HashMap::new(),
            committed: HashMap::new(),
            active: HashMap::new(),
            heartbeat_armed: HashMap::new(),
            latest_round: HashMap::new(),
            commit_round: HashMap::new(),
            lease_deadline: HashMap::new(),
            lease_armed: HashMap::new(),
        }
    }

    /// This provider's node id.
    pub fn id(&self) -> Pid {
        self.id
    }

    /// Registers the a-priori demand analysis for an application class
    /// (keyed by the spec name). CFP tasks with unknown specs are skipped —
    /// the node genuinely cannot estimate their resource needs.
    ///
    /// Re-registering a spec's model invalidates that spec's entries in
    /// the formulation compile cache: their fully-degraded demands were
    /// computed under the old model.
    pub fn register_demand_model(
        &mut self,
        spec_name: impl Into<String>,
        model: Arc<dyn DemandModel>,
    ) {
        let name = spec_name.into();
        self.formulator.invalidate_spec(&name);
        self.demand_models.insert(name, model);
    }

    /// Read access to the reservation ledger (tests, metrics).
    pub fn ledger(&self) -> &NodeLedger {
        &self.ledger
    }

    /// Tasks this node currently executes.
    pub fn executing(&self) -> Vec<(NegoId, TaskId)> {
        let mut v: Vec<(NegoId, TaskId)> = self.committed.keys().copied().collect();
        v.sort();
        v
    }

    /// Tasks this node currently executes, with the CFP round each grant
    /// was won in — the model checker's no-split-brain invariant compares
    /// rounds across nodes to prove at most one executor per award.
    pub fn executing_rounds(&self) -> Vec<(NegoId, TaskId, u32)> {
        let mut v: Vec<(NegoId, TaskId, u32)> = self
            .committed
            .keys()
            .map(|k| (k.0, k.1, self.commit_round.get(k).copied().unwrap_or(0)))
            .collect();
        v.sort();
        v
    }

    /// Tasks this node has in-flight tentative holds for (proposed but not
    /// yet awarded/declined), sorted.
    pub fn holding(&self) -> Vec<(NegoId, TaskId)> {
        let mut v: Vec<(NegoId, TaskId)> = self.holds.keys().copied().collect();
        v.sort();
        v
    }

    /// Simulates a crash-restart of the provider process: volatile
    /// negotiation state (tentative holds, armed heartbeat timers) is
    /// lost, while committed grants — durable by the two-phase reservation
    /// contract — survive. The caller (fault injector) is responsible for
    /// discarding this node's pending timers; the engine itself keeps
    /// executing whatever it already accepted.
    pub fn crash_restart(&mut self) {
        for (_, hold) in self.holds.drain() {
            self.ledger.release(hold);
        }
        self.heartbeat_armed.clear();
    }

    /// Handles an inbound protocol message addressed to this provider.
    pub fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action> {
        match msg {
            Msg::CallForProposals { nego, tasks, round } => self.on_cfp(now, *nego, tasks, *round),
            Msg::Award { nego, task, round } => self.on_award(now, *nego, *task, *round),
            Msg::Release { nego } => self.on_release(*nego),
            Msg::LeaseRenew { nego } => {
                self.on_lease_renew(now, *nego);
                Vec::new()
            }
            _ => {
                let _ = from;
                Vec::new()
            }
        }
    }

    /// Handles a provider-side timer.
    pub fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action> {
        match kind {
            TimerKind::HoldExpiry => {
                self.expire_holds(now);
                Vec::new()
            }
            TimerKind::HeartbeatSend => self.on_heartbeat_send(nego),
            TimerKind::LeaseCheck => self.on_lease_check(now, nego),
            _ => Vec::new(),
        }
    }

    /// Drops expired tentative holds (ledger + bookkeeping).
    fn expire_holds(&mut self, now: SimTime) {
        self.ledger.expire(now.as_micros());
        // Bookkeeping entries whose holds expired become stale; committing
        // them later fails gracefully (commit() returns UnknownHold) and is
        // handled by the Decline path, but pruning keeps the map small.
        // We conservatively keep entries; the ledger is the truth.
    }

    fn on_cfp(
        &mut self,
        now: SimTime,
        nego: NegoId,
        tasks: &[TaskAnnouncement],
        round: u32,
    ) -> Vec<Action> {
        self.price_cfp(now, nego, tasks, round, &mut PrepMemo::default())
    }

    /// Prices a batch of concurrent deliveries in one pass, sharing one
    /// prepare memo across every CFP in the batch — exactly equivalent to
    /// calling [`ProviderEngine::on_message`] per entry in order (pinned
    /// by the `provider_batch` property test), but announcements repeated
    /// across the batch are resolved and verified once. Non-CFP messages
    /// are legal in the batch and take the normal path.
    pub fn on_cfp_batch<'a>(&mut self, now: SimTime, batch: &[(Pid, &'a Msg)]) -> Vec<Action> {
        let mut memo = PrepMemo::default();
        let mut out = Vec::new();
        for &(from, msg) in batch {
            match msg {
                Msg::CallForProposals { nego, tasks, round } => {
                    out.extend(self.price_cfp(now, *nego, tasks, *round, &mut memo));
                }
                _ => out.extend(self.on_message(now, from, msg)),
            }
        }
        out
    }

    fn price_cfp<'a>(
        &mut self,
        now: SimTime,
        nego: NegoId,
        tasks: &'a [TaskAnnouncement],
        round: u32,
        memo: &mut PrepMemo<'a>,
    ) -> Vec<Action> {
        if !self.config.participate || tasks.is_empty() {
            return Vec::new();
        }
        // Partition recovery: the organizer only re-announces tasks it has
        // no live assignment for, so a CFP round fresher than one of our
        // commits that *names that committed task* proves the organizer
        // reopened it (our Accept was lost behind a cut, or it struck us
        // after silence). The grant will never be released explicitly —
        // return its resources to the pool now, before pricing the retry.
        let prev_round = self.latest_round.get(&nego).copied();
        if prev_round.is_none_or(|r| round > r) {
            self.latest_round.insert(nego, round);
        }
        let reopened: Vec<(NegoId, TaskId)> = tasks
            .iter()
            .map(|t| (nego, t.task))
            .filter(|k| {
                self.committed.contains_key(k)
                    && self.commit_round.get(k).copied().unwrap_or(0) < round
            })
            .collect();
        for k in reopened {
            self.release_commit(k);
        }
        // A fresh CFP round for a negotiation supersedes this provider's
        // earlier unanswered offers: the organizer has moved on, so their
        // tentative holds are dead capacity — release them before pricing.
        let stale: Vec<(NegoId, TaskId)> = self
            .holds
            .keys()
            .filter(|(n, _)| *n == nego)
            .copied()
            .collect();
        for k in stale {
            if let Some(h) = self.holds.remove(&k) {
                self.ledger.release(h);
            }
        }
        // Strategy-chain participation gate (battery policies, etc.),
        // evaluated against the capacity actually uncommitted right now.
        let ctx = CfpContext {
            node: self.id,
            round,
            task_count: tasks.len(),
            available: self.ledger.available(),
            capacity: self.ledger.capacity(),
        };
        if !self.config.chain.participates(&ctx) {
            return Vec::new();
        }
        // Resolve + compile every announced request through the engine's
        // cache (repeated rounds and repeated specs hit it); unknown specs
        // or invalid requests exclude the task.
        struct Prepared<'a> {
            ann: &'a TaskAnnouncement,
            task: Arc<PreparedTask>,
        }
        let mut prepared: Vec<Prepared<'_>> = Vec::new();
        for ann in tasks {
            let Some(model) = self.demand_models.get(ann.spec.name()).cloned() else {
                continue;
            };
            let Some(task) = memo.resolve(&mut self.formulator, &ann.spec, &ann.request, &model)
            else {
                continue;
            };
            prepared.push(Prepared { ann, task });
        }
        if prepared.is_empty() {
            return Vec::new();
        }

        // Per-task pricing: (task, levels, demand, reward).
        let mut priced: Vec<(usize, Vec<usize>, qosc_resources::ResourceVector, f64)> = Vec::new();
        match self.config.strategy {
            ProposalStrategy::Joint => {
                // §5: joint formulation over the announced task set against
                // the *available* capacity (capacity minus existing holds /
                // grants). If even fully degraded the whole set does not
                // fit, shed tasks from the tail until a feasible subset
                // remains — proposing for a subset is better than silence.
                // The engine finds that subset from the prefix-summed
                // fully-degraded demands, so shedding costs one admission
                // test per dropped task instead of a full degradation.
                // Warm-started per negotiation: later rounds (and repeated
                // capacities under contention) replay the recorded
                // degradation trajectory instead of re-running it; the
                // trajectory is dropped again in `on_release`.
                let admission = AdmissionControl::new(self.config.policy, self.ledger.available());
                let bundle: Vec<Arc<PreparedTask>> =
                    prepared.iter().map(|p| Arc::clone(&p.task)).collect();
                let Some((_, outcome)) =
                    self.formulator
                        .formulate_shedding_warm(warm_key(nego), &bundle, &admission)
                else {
                    return Vec::new();
                };
                for (i, (levels, demand)) in
                    outcome.levels.into_iter().zip(outcome.demands).enumerate()
                {
                    priced.push((i, levels, demand, outcome.reward));
                }
            }
            ProposalStrategy::Sequential => {
                // Price each task alone against what is left after the
                // offers already in this bundle; unpriceable tasks are
                // simply skipped.
                let mut left = self.ledger.available();
                for (i, p) in prepared.iter().enumerate() {
                    let admission = AdmissionControl::new(self.config.policy, left);
                    if let Ok(out) = self.formulator.formulate(&[p.task.as_ref()], &admission) {
                        left -= out.demands[0];
                        priced.push((i, out.levels[0].clone(), out.demands[0], out.reward));
                    }
                }
            }
        }
        if priced.is_empty() {
            return Vec::new();
        }

        // Strategy-chain offer review: each priced entry becomes a
        // [`TaskOffer`] components may adjust (degrade, re-price) or
        // withhold before any hold is placed. The empty chain keeps every
        // offer exactly as formulated.
        let mut offers: Vec<(usize, TaskOffer)> = Vec::with_capacity(priced.len());
        for (i, levels, demand, reward) in priced {
            let p = &prepared[i];
            let request = p.task.request();
            let ladder: Vec<usize> = request.iter_attrs().map(|(_, a)| a.levels.len()).collect();
            let task_reward = local_reward(request, &levels, self.config.reward.as_ref());
            let mut offer = TaskOffer {
                task: p.ann.task,
                levels,
                ladder,
                demand,
                reward,
                task_reward,
            };
            if self.config.chain.review_offer(&ctx, &mut offer) {
                offers.push((i, offer));
            }
        }
        if offers.is_empty() {
            return Vec::new();
        }

        // Place tentative holds; roll back everything if any hold fails
        // (the ledger raced with another negotiation's award).
        let expires = (now + self.config.hold_ttl).as_micros();
        let mut placed: Vec<(TaskId, VectorHold)> = Vec::new();
        for (_, offer) in &offers {
            match self.ledger.prepare(&offer.demand, expires) {
                Ok(h) => placed.push((offer.task, h)),
                Err(_) => {
                    for (_, h) in placed {
                        self.ledger.release(h);
                    }
                    return Vec::new();
                }
            }
        }
        for (task, hold) in &placed {
            self.holds.insert((nego, *task), *hold);
        }

        // Build the proposal bundle (levels clamped to each ladder, so a
        // component cannot push an offer off the announced value range).
        let mut proposals = Vec::with_capacity(offers.len());
        for (i, offer) in offers {
            let p = &prepared[i];
            let levels: Vec<usize> = p
                .task
                .request()
                .iter_attrs()
                .zip(offer.levels.iter())
                .map(|((_, a), &l)| l.min(a.levels.len() - 1))
                .collect();
            let offered: Vec<qosc_spec::Value> = p
                .task
                .request()
                .iter_attrs()
                .zip(levels.iter())
                .map(|((_, a), &l)| a.levels[l].clone())
                .collect();
            proposals.push(TaskProposal {
                task: offer.task,
                offered,
                levels,
                demand: offer.demand,
                link_kbps: self.config.link_kbps,
                reward: offer.reward,
            });
        }
        vec![
            Action::send(
                nego.organizer,
                Msg::Proposal {
                    nego,
                    from: self.id,
                    proposals,
                },
            ),
            Action::Timer {
                delay: self.config.hold_ttl,
                token: encode_timer(nego, TimerKind::HoldExpiry),
            },
        ]
    }

    /// Returns one committed grant's resources to the pool and scrubs
    /// every per-grant record (round stamp, lease, heartbeat target).
    fn release_commit(&mut self, key: (NegoId, TaskId)) {
        if let Some(h) = self.committed.remove(&key) {
            self.ledger.release(h);
        }
        self.commit_round.remove(&key);
        self.lease_deadline.remove(&key);
        if let Some(tasks) = self.active.get_mut(&key.0) {
            tasks.retain(|t| *t != key.1);
            if tasks.is_empty() {
                self.active.remove(&key.0);
            }
        }
    }

    fn on_award(&mut self, now: SimTime, nego: NegoId, task: TaskId, round: u32) -> Vec<Action> {
        let decline = |from: Pid| {
            vec![Action::send(
                nego.organizer,
                Msg::Decline {
                    nego,
                    task,
                    from,
                    round,
                },
            )]
        };
        if self.latest_round.get(&nego).copied().unwrap_or(0) > round {
            // The award belongs to a round we already know is superseded
            // (a fresh CFP re-announced its task): committing now would
            // resurrect exactly the stale grant the re-announce released.
            return decline(self.id);
        }
        let Some(hold) = self.holds.remove(&(nego, task)) else {
            // Hold expired (or we never proposed): we cannot honour the
            // award any more.
            return decline(self.id);
        };
        if !self.config.chain.accepts_award(&AwardContext {
            node: self.id,
            task,
        }) {
            // A strategy component vetoed the award: decline and release
            // the tentative hold rather than letting it expire.
            self.ledger.release(hold);
            return decline(self.id);
        }
        if self.ledger.commit(hold).is_err() {
            // The tentative hold expired between proposal and award.
            return decline(self.id);
        }
        self.committed.insert((nego, task), hold);
        self.commit_round.insert((nego, task), round);
        self.active.entry(nego).or_default().push(task);
        let mut actions = vec![Action::send(
            nego.organizer,
            Msg::Accept {
                nego,
                task,
                from: self.id,
                round,
            },
        )];
        if self.config.heartbeats && !self.heartbeat_armed.get(&nego).copied().unwrap_or(false) {
            self.heartbeat_armed.insert(nego, true);
            actions.push(Action::Timer {
                delay: self.config.heartbeat_interval,
                token: encode_timer(nego, TimerKind::HeartbeatSend),
            });
        }
        if let Some(ttl) = self.config.commit_ttl {
            self.lease_deadline.insert((nego, task), now + ttl);
            if !self.lease_armed.get(&nego).copied().unwrap_or(false) {
                self.lease_armed.insert(nego, true);
                actions.push(Action::Timer {
                    delay: ttl,
                    token: encode_timer(nego, TimerKind::LeaseCheck),
                });
            }
        }
        actions
    }

    fn on_heartbeat_send(&mut self, nego: NegoId) -> Vec<Action> {
        let Some(tasks) = self.active.get(&nego) else {
            self.heartbeat_armed.remove(&nego);
            return Vec::new();
        };
        if tasks.is_empty() {
            self.heartbeat_armed.remove(&nego);
            return Vec::new();
        }
        let mut actions: Vec<Action> = tasks
            .iter()
            .map(|t| {
                Action::send(
                    nego.organizer,
                    Msg::Heartbeat {
                        nego,
                        task: *t,
                        from: self.id,
                    },
                )
            })
            .collect();
        actions.push(Action::Timer {
            delay: self.config.heartbeat_interval,
            token: encode_timer(nego, TimerKind::HeartbeatSend),
        });
        actions
    }

    /// Lease sweep for one negotiation: expired grants are released; the
    /// timer re-arms for the earliest surviving deadline, and disarms when
    /// nothing leased remains.
    fn on_lease_check(&mut self, now: SimTime, nego: NegoId) -> Vec<Action> {
        let expired: Vec<(NegoId, TaskId)> = self
            .lease_deadline
            .iter()
            .filter(|((n, _), at)| *n == nego && **at <= now)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            self.release_commit(k);
        }
        let next = self
            .lease_deadline
            .iter()
            .filter(|((n, _), _)| *n == nego)
            .map(|(_, at)| *at)
            .min();
        let Some(next) = next else {
            self.lease_armed.remove(&nego);
            return Vec::new();
        };
        vec![Action::Timer {
            delay: SimDuration::micros(next.since(now).as_micros().max(1)),
            token: encode_timer(nego, TimerKind::LeaseCheck),
        }]
    }

    /// The organizer refreshed its claim on this negotiation's grants:
    /// every lease extends by a full `commit_ttl` from now.
    fn on_lease_renew(&mut self, now: SimTime, nego: NegoId) {
        let Some(ttl) = self.config.commit_ttl else {
            return;
        };
        for ((n, _), at) in self.lease_deadline.iter_mut() {
            if *n == nego {
                *at = now + ttl;
            }
        }
    }

    fn on_release(&mut self, nego: NegoId) -> Vec<Action> {
        // Release committed grants of this negotiation.
        let keys: Vec<(NegoId, TaskId)> = self
            .committed
            .keys()
            .filter(|(n, _)| *n == nego)
            .copied()
            .collect();
        for k in keys {
            if let Some(h) = self.committed.remove(&k) {
                self.ledger.release(h);
            }
        }
        // Also drop any leftover tentative holds.
        let keys: Vec<(NegoId, TaskId)> = self
            .holds
            .keys()
            .filter(|(n, _)| *n == nego)
            .copied()
            .collect();
        for k in keys {
            if let Some(h) = self.holds.remove(&k) {
                self.ledger.release(h);
            }
        }
        self.active.remove(&nego);
        self.heartbeat_armed.remove(&nego);
        self.latest_round.remove(&nego);
        self.commit_round.retain(|(n, _), _| *n != nego);
        self.lease_deadline.retain(|(n, _), _| *n != nego);
        self.lease_armed.remove(&nego);
        // The negotiation is over: its warm degradation trajectories will
        // never be replayed again.
        self.formulator.forget_warm(warm_key(nego));
        Vec::new()
    }
}

impl crate::snapshot::StateDigest for ProviderEngine {
    fn digest(&self, h: &mut crate::snapshot::StableHasher) {
        // Hold ids are opaque monotonic handles: hash each hold by its
        // allocation *rank* among the manager's live holds, so states
        // that differ only by historical id churn merge (see the
        // `NodeLedger` digest).
        let rank_of = |kind: qosc_resources::ResourceKind, id: qosc_resources::HoldId| {
            self.ledger
                .manager(kind)
                .holds_snapshot()
                .iter()
                .position(|(hid, ..)| *hid == id.0)
                .map_or(0, |r| r as u64 + 1)
        };
        let write_hold = |h: &mut crate::snapshot::StableHasher, hold: &VectorHold| {
            for kind in qosc_resources::ResourceKind::ALL {
                // rank + 1 so `None` (0) is distinct from the first hold.
                h.write_u64(hold.get(kind).map_or(0, |id| rank_of(kind, id)));
            }
        };
        let write_keyed_holds =
            |h: &mut crate::snapshot::StableHasher, map: &HashMap<(NegoId, TaskId), VectorHold>| {
                let mut keys: Vec<&(NegoId, TaskId)> = map.keys().collect();
                keys.sort();
                h.write_usize(keys.len());
                for k in keys {
                    h.write_u64(k.0.organizer as u64);
                    h.write_u64(k.0.seq as u64);
                    h.write_u64(k.1 .0 as u64);
                    write_hold(h, &map[k]);
                }
            };
        h.write_u64(self.id as u64);
        self.ledger.digest(h);
        write_keyed_holds(h, &self.holds);
        write_keyed_holds(h, &self.committed);
        let mut negos: Vec<&NegoId> = self.active.keys().collect();
        negos.sort();
        h.write_usize(negos.len());
        for n in negos {
            h.write_u64(n.organizer as u64);
            h.write_u64(n.seq as u64);
            // Task arrival order within a negotiation only affects
            // heartbeat emission order, not protocol decisions: canonical
            // sorted order lets permuted-but-equivalent states merge.
            let mut tasks = self.active[n].clone();
            tasks.sort();
            h.write_usize(tasks.len());
            for t in tasks {
                h.write_u64(t.0 as u64);
            }
        }
        let mut armed: Vec<(&NegoId, &bool)> = self.heartbeat_armed.iter().collect();
        armed.sort();
        h.write_usize(armed.len());
        for (n, a) in armed {
            h.write_u64(n.organizer as u64);
            h.write_u64(n.seq as u64);
            h.write_bool(*a);
        }
        // Round bookkeeping drives the stale-commit release decision, so
        // it is protocol state and must be hashed. Lease deadlines are
        // path-dependent timestamps but only exist under `commit_ttl`,
        // which model-checking configs leave off (empty map, no forking).
        let mut rounds: Vec<(&NegoId, &u32)> = self.latest_round.iter().collect();
        rounds.sort();
        h.write_usize(rounds.len());
        for (n, r) in rounds {
            h.write_u64(n.organizer as u64);
            h.write_u64(n.seq as u64);
            h.write_u64(*r as u64);
        }
        let mut commit_rounds: Vec<(&(NegoId, TaskId), &u32)> = self.commit_round.iter().collect();
        commit_rounds.sort();
        h.write_usize(commit_rounds.len());
        for (k, r) in commit_rounds {
            h.write_u64(k.0.organizer as u64);
            h.write_u64(k.0.seq as u64);
            h.write_u64(k.1 .0 as u64);
            h.write_u64(*r as u64);
        }
        let mut leases: Vec<(&(NegoId, TaskId), &SimTime)> = self.lease_deadline.iter().collect();
        leases.sort();
        h.write_usize(leases.len());
        for (k, at) in leases {
            h.write_u64(k.0.organizer as u64);
            h.write_u64(k.0.seq as u64);
            h.write_u64(k.1 .0 as u64);
            h.write_u64(at.0);
        }
        // Config and demand models are immutable after setup and the
        // formulator cache is behaviour-neutral: all excluded by design.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_resources::{av_demand_model, ResourceKind};
    use qosc_spec::catalog;

    #[test]
    fn config_debug_exposes_every_tunable() {
        let dbg = format!("{:?}", ProviderConfig::default());
        for field in [
            "link_kbps",
            "policy",
            "hold_ttl",
            "heartbeat_interval",
            "participate",
            "heartbeats",
            "commit_ttl",
            "reward",
            "strategy",
            "chain",
        ] {
            assert!(dbg.contains(field), "missing {field} in {dbg}");
        }
        assert!(dbg.contains("linear-penalty"), "reward model name: {dbg}");
        let dbg = format!("{:?}", crate::OrganizerConfig::default());
        for field in [
            "tiebreak",
            "max_rounds",
            "eval",
            "monitor",
            "renew_leases",
            "chain",
        ] {
            assert!(dbg.contains(field), "missing {field} in {dbg}");
        }
    }

    fn announcement(task: u32) -> TaskAnnouncement {
        TaskAnnouncement {
            task: TaskId(task),
            spec: catalog::av_spec(),
            request: catalog::surveillance_request(),
            input_bytes: 100_000,
            output_bytes: 10_000,
        }
    }

    fn provider(cpu: f64) -> ProviderEngine {
        let mut p = ProviderEngine::new(
            5,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
            ProviderConfig::default(),
        );
        let spec = catalog::av_spec();
        p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
        p
    }

    fn nego() -> NegoId {
        NegoId {
            organizer: 0,
            seq: 0,
        }
    }

    fn cfp(tasks: Vec<TaskAnnouncement>) -> Msg {
        Msg::CallForProposals {
            nego: nego(),
            tasks,
            round: 0,
        }
    }

    #[test]
    fn cfp_produces_proposal_and_places_holds() {
        let mut p = provider(500.0);
        let before = p.ledger().available();
        let actions = p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        let proposal = actions.iter().find_map(|a| match a {
            Action::Send { to: 0, msg } => match &**msg {
                Msg::Proposal { proposals, .. } => Some(proposals.clone()),
                _ => None,
            },
            _ => None,
        });
        let proposals = proposal.expect("provider should propose");
        assert_eq!(proposals.len(), 1);
        // Rich node proposes the preferred quality.
        assert_eq!(proposals[0].levels, vec![0, 0, 0, 0]);
        // Resources are tentatively held.
        let after = p.ledger().available();
        assert!(after.get(ResourceKind::Cpu) < before.get(ResourceKind::Cpu));
        // Hold-expiry timer armed.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Timer { token, .. }
            if crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::HoldExpiry)));
    }

    #[test]
    fn scarce_provider_proposes_degraded_quality() {
        // Preferred-level demand is ~18.25 MIPS; 10 MIPS forces degradation.
        let mut p = provider(10.0);
        let actions = p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        let proposals = actions
            .iter()
            .find_map(|a| match a.payload() {
                Some(Msg::Proposal { proposals, .. }) => Some(proposals.clone()),
                _ => None,
            })
            .unwrap();
        assert!(proposals[0].levels.iter().any(|&l| l > 0));
    }

    #[test]
    fn hopeless_provider_stays_silent() {
        let mut p = provider(0.5);
        let actions = p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        assert!(actions.is_empty());
        // Nothing held either.
        assert_eq!(
            p.ledger().available(),
            ResourceVector::new(0.5, 512.0, 10_000.0, 60.0, 10_000.0)
        );
    }

    #[test]
    fn unknown_spec_is_skipped() {
        let mut p = ProviderEngine::new(
            5,
            ResourceVector::new(500.0, 512.0, 10_000.0, 60.0, 10_000.0),
            ProviderConfig::default(),
        );
        // No demand model registered.
        let actions = p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        assert!(actions.is_empty());
    }

    #[test]
    fn non_participating_node_is_silent() {
        let mut p = ProviderEngine::new(
            5,
            ResourceVector::new(500.0, 512.0, 10_000.0, 60.0, 10_000.0),
            ProviderConfig {
                participate: false,
                ..Default::default()
            },
        );
        let spec = catalog::av_spec();
        p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
        let actions = p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        assert!(actions.is_empty());
    }

    #[test]
    fn award_commits_hold_and_accepts() {
        let mut p = provider(500.0);
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        let actions = p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 0, msg } if matches!(&**msg, Msg::Accept { .. })
        )));
        assert_eq!(p.executing(), vec![(nego(), TaskId(0))]);
        // Committed grants survive expiry.
        p.on_timer(SimTime(10_000_000), nego(), TimerKind::HoldExpiry);
        assert_eq!(p.executing(), vec![(nego(), TaskId(0))]);
        // Heartbeat timer armed exactly once.
        let hb_timers = actions
            .iter()
            .filter(|a| {
                matches!(a, Action::Timer { token, .. }
                if crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::HeartbeatSend)
            })
            .count();
        assert_eq!(hb_timers, 1);
    }

    #[test]
    fn award_after_expiry_declines() {
        let mut p = provider(500.0);
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        // Expire tentative holds (TTL default 400 ms).
        p.on_timer(SimTime(10_000_000), nego(), TimerKind::HoldExpiry);
        let actions = p.on_message(
            SimTime(10_000_001),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 0, msg } if matches!(&**msg, Msg::Decline { .. })
        )));
        assert!(p.executing().is_empty());
    }

    #[test]
    fn heartbeats_flow_while_active() {
        let mut p = provider(500.0);
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        let actions = p.on_timer(SimTime(502_000), nego(), TimerKind::HeartbeatSend);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 0, msg } if matches!(&**msg, Msg::Heartbeat { .. })
        )));
        // Re-armed.
        assert!(actions.iter().any(|a| matches!(a, Action::Timer { .. })));
    }

    #[test]
    fn release_returns_resources_and_stops_heartbeats() {
        let mut p = provider(500.0);
        let full = p.ledger().available();
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        p.on_message(SimTime(3000), 0, &Msg::Release { nego: nego() });
        assert_eq!(p.ledger().available(), full);
        assert!(p.executing().is_empty());
        let actions = p.on_timer(SimTime(502_000), nego(), TimerKind::HeartbeatSend);
        assert!(actions.is_empty());
    }

    #[test]
    fn overload_sheds_tasks_from_the_tail() {
        // Fully degraded, one task needs ~5.95 MIPS: 13 MIPS fits two
        // tasks at best but never three; provider proposes a prefix subset.
        let mut p = provider(13.0);
        let actions = p.on_message(
            SimTime(1000),
            0,
            &cfp(vec![announcement(0), announcement(1), announcement(2)]),
        );
        let proposals = actions
            .iter()
            .find_map(|a| match a.payload() {
                Some(Msg::Proposal { proposals, .. }) => Some(proposals.clone()),
                _ => None,
            })
            .unwrap();
        assert!(!proposals.is_empty() && proposals.len() < 3);
        assert_eq!(proposals[0].task, TaskId(0));
    }

    #[test]
    fn fresh_round_reannouncing_committed_task_releases_the_grant() {
        let mut p = provider(500.0);
        let full = p.ledger().available();
        // Win task 0 in round 0.
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        assert_eq!(p.executing_rounds(), vec![(nego(), TaskId(0), 0)]);
        // The organizer re-announces task 0 in round 1: our Accept was
        // lost, the award was struck — the old grant must be released
        // (and we re-propose against restored capacity).
        let round1 = Msg::CallForProposals {
            nego: nego(),
            tasks: vec![announcement(0)],
            round: 1,
        };
        let actions = p.on_message(SimTime(3000), 0, &round1);
        assert!(p.executing().is_empty(), "stale commit must be released");
        assert!(actions
            .iter()
            .any(|a| matches!(a.payload(), Some(Msg::Proposal { .. }))));
        // Re-award in round 1: commit stamped with the fresh round, and
        // capacity bounded as if the round-0 grant never existed.
        p.on_message(
            SimTime(4000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 1,
            },
        );
        assert_eq!(p.executing_rounds(), vec![(nego(), TaskId(0), 1)]);
        p.on_message(SimTime(5000), 0, &Msg::Release { nego: nego() });
        assert_eq!(p.ledger().available(), full);
    }

    #[test]
    fn fresh_round_spares_commits_for_other_tasks() {
        let mut p = provider(500.0);
        // Win both tasks in round 0.
        p.on_message(
            SimTime(1000),
            0,
            &cfp(vec![announcement(0), announcement(1)]),
        );
        for t in [0, 1] {
            p.on_message(
                SimTime(2000),
                0,
                &Msg::Award {
                    nego: nego(),
                    task: TaskId(t),
                    round: 0,
                },
            );
        }
        // Round 1 re-announces only task 1: the task-0 grant survives.
        let round1 = Msg::CallForProposals {
            nego: nego(),
            tasks: vec![announcement(1)],
            round: 1,
        };
        p.on_message(SimTime(3000), 0, &round1);
        assert_eq!(p.executing(), vec![(nego(), TaskId(0))]);
    }

    #[test]
    fn commit_lease_expires_without_renewal_and_survives_with_it() {
        let config = ProviderConfig {
            commit_ttl: Some(SimDuration::millis(100)),
            ..Default::default()
        };
        let mut p = ProviderEngine::new(
            5,
            ResourceVector::new(500.0, 512.0, 10_000.0, 60.0, 10_000.0),
            config,
        );
        let spec = catalog::av_spec();
        p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
        let full = p.ledger().available();
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        let actions = p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        assert!(
            actions
                .iter()
                .any(|a| matches!(a, Action::Timer { token, .. }
                if crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::LeaseCheck)),
            "award under commit_ttl arms a lease check"
        );
        // A renewal inside the window pushes the deadline out...
        p.on_message(SimTime(50_000), 0, &Msg::LeaseRenew { nego: nego() });
        let actions = p.on_timer(SimTime(102_000), nego(), TimerKind::LeaseCheck);
        assert_eq!(p.executing(), vec![(nego(), TaskId(0))]);
        assert!(
            actions.iter().any(|a| matches!(a, Action::Timer { .. })),
            "lease check re-arms while grants remain"
        );
        // ...but silence past the renewed deadline releases the grant.
        let actions = p.on_timer(SimTime(200_000), nego(), TimerKind::LeaseCheck);
        assert!(p.executing().is_empty(), "expired lease releases capacity");
        assert_eq!(p.ledger().available(), full);
        assert!(
            !actions.iter().any(|a| matches!(a, Action::Timer { .. })),
            "nothing leased: the check disarms"
        );
    }

    #[test]
    fn leases_are_off_by_default() {
        let mut p = provider(500.0);
        p.on_message(SimTime(1000), 0, &cfp(vec![announcement(0)]));
        let actions = p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: nego(),
                task: TaskId(0),
                round: 0,
            },
        );
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::Timer { token, .. }
            if crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::LeaseCheck)));
        // A stray LeaseCheck (or renewal) is inert without commit_ttl.
        assert!(p
            .on_timer(SimTime(10_000_000), nego(), TimerKind::LeaseCheck)
            .is_empty());
        assert_eq!(p.executing(), vec![(nego(), TaskId(0))]);
    }

    #[test]
    fn concurrent_negotiations_cannot_double_book() {
        // Node can serve exactly one task at preferred quality; two
        // concurrent CFPs must not both receive full-capacity offers that
        // could both be awarded.
        let mut p = provider(60.0);
        let n1 = NegoId {
            organizer: 0,
            seq: 0,
        };
        let n2 = NegoId {
            organizer: 1,
            seq: 0,
        };
        let mk = |n: NegoId| Msg::CallForProposals {
            nego: n,
            tasks: vec![announcement(0)],
            round: 0,
        };
        let a1 = p.on_message(SimTime(1000), 0, &mk(n1));
        let a2 = p.on_message(SimTime(1100), 1, &mk(n2));
        let demand_of = |actions: &[Action]| {
            actions.iter().find_map(|a| match a.payload() {
                Some(Msg::Proposal { proposals, .. }) => Some(proposals[0].demand),
                _ => None,
            })
        };
        let d1 = demand_of(&a1).expect("first CFP gets an offer");
        // The second offer (if any) must fit in what is left after d1.
        if let Some(d2) = demand_of(&a2) {
            let total = d1 + d2;
            assert!(total.get(ResourceKind::Cpu) <= 60.0 + 1e-9);
        }
        // Award both; accepts must still be resource-consistent.
        p.on_message(
            SimTime(2000),
            0,
            &Msg::Award {
                nego: n1,
                task: TaskId(0),
                round: 0,
            },
        );
        p.on_message(
            SimTime(2100),
            1,
            &Msg::Award {
                nego: n2,
                task: TaskId(0),
                round: 0,
            },
        );
        let committed_cpu = p.ledger().capacity().get(ResourceKind::Cpu)
            - p.ledger().available().get(ResourceKind::Cpu);
        assert!(committed_cpu <= 60.0 + 1e-9);
    }
}
