//! Canonical state hashing for the model checker.
//!
//! The `qosc-mc` explorer deduplicates system states by a 64-bit digest:
//! two states with equal digests are assumed to have identical future
//! behaviour and the later one is pruned. That puts two obligations on the
//! digest, both discharged here rather than in the checker:
//!
//! * **Determinism across executions** — the digest must not depend on
//!   allocation addresses or hash-map iteration order. [`StableHasher`] is
//!   a fixed-constant FNV-1a over explicitly ordered writes; every
//!   [`StateDigest`] impl iterates unordered containers through a sorted
//!   view and hashes floats by their IEEE bit patterns.
//! * **Completeness** — everything that can influence an engine's future
//!   [`Action`](crate::protocol::Action)s must be written. Pure
//!   configuration (which never mutates after construction) and caches
//!   (which change performance, never behaviour) are deliberately
//!   excluded so equivalent states actually merge.
//!
//! Engines implement [`StateDigest`] next to their private fields; this
//! module provides the hasher, the trait, and impls for the shared leaf
//! types (`Msg`, resource ledgers).

use qosc_resources::{HoldState, NodeLedger, ResourceKind};

use crate::protocol::Msg;

/// Deterministic 64-bit FNV-1a hasher with explicit typed writes.
///
/// Unlike `std::hash::Hasher` implementations, the output is a pure
/// function of the written byte sequence — stable across processes,
/// platforms and runs, which the model checker's dedup set relies on.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl StableHasher {
    /// Creates a hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Writes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Writes a `usize` (as `u64`, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes an `f64` by bit pattern (`-0.0` and `NaN` payloads are
    /// distinct on purpose: engines never produce them on live paths, and
    /// collapsing them would hide a bug rather than canonicalise state).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a `bool`.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Writes a string (length-prefixed, so `"ab","c"` ≠ `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    /// The digest of everything written so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// A type whose semantically relevant state can be written into a
/// [`StableHasher`] in a canonical order.
pub trait StateDigest {
    /// Writes this value's canonical representation into `h`.
    fn digest(&self, h: &mut StableHasher);
}

/// Convenience: the digest of one value on a fresh hasher.
pub fn digest_of<T: StateDigest + ?Sized>(value: &T) -> u64 {
    let mut h = StableHasher::new();
    value.digest(&mut h);
    h.finish()
}

impl StateDigest for Msg {
    fn digest(&self, h: &mut StableHasher) {
        // Msg is a tree of Vecs and scalars (no unordered containers), so
        // its derived Debug rendering is already canonical — and it covers
        // nested spec/request structures without per-field plumbing.
        h.write_str(&format!("{self:?}"));
    }
}

impl StateDigest for NodeLedger {
    fn digest(&self, h: &mut StableHasher) {
        for kind in ResourceKind::ALL {
            let m = self.manager(kind);
            h.write_usize(kind.index());
            h.write_f64(m.capacity());
            let holds = m.holds_snapshot();
            h.write_usize(holds.len());
            // Holds are written in allocation-rank order but their raw
            // ids are omitted: ids are opaque monotonic handles, so two
            // ledgers that differ only by historical churn (an expired
            // hold shifting every later id) are behaviourally identical
            // and must hash equal, or the explorer forks dead states.
            for (_id, amount, state, expires_at) in holds {
                h.write_f64(amount);
                h.write_bool(state == HoldState::Committed);
                h.write_u64(expires_at);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_resources::ResourceVector;

    #[test]
    fn hasher_is_order_sensitive_and_stable() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = StableHasher::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = StableHasher::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn string_writes_are_length_prefixed() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn ledger_digest_tracks_holds() {
        let cap = ResourceVector::new(100.0, 256.0, 1000.0, 40.0, 500.0);
        let mut l = NodeLedger::new(cap);
        let clean = digest_of(&l);
        let demand = ResourceVector::new(10.0, 0.0, 0.0, 0.0, 0.0);
        let hold = l.prepare(&demand, 500).expect("fits");
        assert_ne!(digest_of(&l), clean);
        l.release(hold);
        assert_eq!(digest_of(&l), clean);
    }

    #[test]
    fn msg_digest_differs_by_content() {
        use crate::protocol::NegoId;
        use qosc_spec::TaskId;
        let nego = NegoId {
            organizer: 0,
            seq: 0,
        };
        let a = Msg::Award {
            nego,
            task: TaskId(0),
            round: 0,
        };
        let b = Msg::Award {
            nego,
            task: TaskId(1),
            round: 0,
        };
        assert_ne!(digest_of(&a), digest_of(&b));
    }
}
