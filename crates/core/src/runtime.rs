//! One runtime API, three backends.
//!
//! The negotiation engines ([`OrganizerEngine`], [`ProviderEngine`]) are
//! sans-IO state machines: they consume [`Msg`]s and timers and emit
//! [`Action`]s. This module packages them behind a uniform execution API so
//! a scenario description runs unmodified on any of three backends:
//!
//! * [`DesRuntime`] — the deterministic discrete-event simulator of
//!   `qosc-netsim`: geometry, latency, loss, mobility, failures. The
//!   backend every experiment sweep uses. [`DesShardedRuntime`] is the
//!   same semantics on the region-partitioned parallel simulator, for
//!   large node counts.
//! * [`DirectRuntime`] — a zero-latency in-memory event loop (FIFO message
//!   queue + timer wheel, no geometry, full connectivity). The fast path
//!   for tests, property checks and benches; at zero network latency it is
//!   event-for-event identical to the DES (pinned by the
//!   `runtime_equivalence` system test).
//! * [`ActorRuntime`] — the live threaded transport of `qosc-actors`: one
//!   OS thread per node, wall-clock timers, a process-wide
//!   [`Directory`] playing the radio's role.
//!
//! Per node the backends host a [`CoalitionNode`] — an organizer and/or a
//! provider engine plus the service queue — through the [`NodeEngine`]
//! trait (`on_start` / `on_message` / `on_timer`, all returning actions).
//!
//! # Quickstart — the same scenario on all three backends
//!
//! ```
//! use std::sync::Arc;
//! use qosc_core::{
//!     ActorRuntime, CoalitionNode, DesRuntime, DirectRuntime, NegoEvent, OrganizerConfig,
//!     OrganizerEngine, ProviderConfig, ProviderEngine, Runtime,
//! };
//! use qosc_netsim::{Mobility, Point, SimConfig, SimTime, Simulator};
//! use qosc_resources::{av_demand_model, ResourceVector};
//! use qosc_spec::{catalog, ServiceDef, TaskDef};
//!
//! // Backend-agnostic scenario description: three heterogeneous nodes,
//! // node 0 organizes a one-task surveillance service.
//! let nodes = || -> Vec<CoalitionNode> {
//!     let spec = catalog::av_spec();
//!     (0..3u32)
//!         .map(|i| {
//!             let mut p = ProviderEngine::new(
//!                 i,
//!                 ResourceVector::new(100.0 + 150.0 * i as f64, 256.0, 5000.0, 40.0, 4000.0),
//!                 ProviderConfig::default(),
//!             );
//!             p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
//!             let node = CoalitionNode::new(i).with_provider(p);
//!             if i == 0 {
//!                 node.with_organizer(OrganizerEngine::new(i, OrganizerConfig::default()))
//!             } else {
//!                 node
//!             }
//!         })
//!         .collect()
//! };
//! let service = || {
//!     ServiceDef::new(
//!         "demo",
//!         vec![TaskDef {
//!             name: "camera".into(),
//!             spec: catalog::av_spec(),
//!             request: catalog::surveillance_request(),
//!             input_bytes: 50_000,
//!             output_bytes: 5_000,
//!         }],
//!     )
//! };
//!
//! // Three backends, one driver.
//! let mut sim = Simulator::new(SimConfig::default());
//! for i in 0..3 {
//!     sim.add_node(Point::new(10.0 * i as f64, 0.0), Mobility::Static);
//! }
//! let backends: Vec<Box<dyn Runtime>> = vec![
//!     Box::new(DirectRuntime::new()),
//!     Box::new(DesRuntime::new(sim)),
//!     Box::new(ActorRuntime::new()),
//! ];
//! for mut rt in backends {
//!     for node in nodes() {
//!         rt.add_node(node).unwrap();
//!     }
//!     rt.submit(0, service(), SimTime(1_000)).unwrap();
//!     // DES/Direct: virtual deadline; Actor: the same horizon in wall time,
//!     // returning as soon as the negotiation settles.
//!     rt.run_until_settled(1, SimTime(5_000_000));
//!     assert!(
//!         rt.events()
//!             .iter()
//!             .any(|e| matches!(e.event, NegoEvent::Formed { .. })),
//!         "no coalition on {}",
//!         rt.backend_name(),
//!     );
//!     rt.shutdown();
//! }
//! ```

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use qosc_actors::{Actor, ActorCtx, ActorSystem, Addr, Directory};
use qosc_netsim::{
    Ctx, DeliveryFault, FaultPlan, FaultSampler, NetApp, NetStats, NodeId, PartitionPlan,
    PartitionTimeline, ShardedSimulator, SimDuration, SimTime, Simulator,
};
use qosc_spec::ServiceDef;

use crate::metrics::NegoEvent;
use crate::organizer::{OrganizerConfig, OrganizerEngine};
use crate::protocol::{decode_timer, encode_timer, Action, Msg, NegoId, Pid, TimerKind};
use crate::provider::ProviderEngine;

// ---------------------------------------------------------------------------
// NodeEngine: the uniform sans-IO surface the backends drive.
// ---------------------------------------------------------------------------

/// Uniform interface of one node's protocol logic, as the backends see it.
///
/// Implemented by [`OrganizerEngine`] and [`ProviderEngine`] individually
/// and by [`CoalitionNode`], the composite every backend hosts.
pub trait NodeEngine {
    /// The node id this engine answers for.
    fn id(&self) -> Pid;

    /// Called once when the runtime starts the node, before any message.
    fn on_start(&mut self, _now: SimTime) -> Vec<Action> {
        Vec::new()
    }

    /// A protocol message from `from` arrived.
    fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action>;

    /// A timer armed by this node fired.
    fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action>;
}

impl NodeEngine for OrganizerEngine {
    fn id(&self) -> Pid {
        OrganizerEngine::id(self)
    }

    fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action> {
        OrganizerEngine::on_message(self, now, from, msg)
    }

    fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action> {
        match kind {
            TimerKind::Dissolve => self.dissolve(nego),
            _ => OrganizerEngine::on_timer(self, now, nego, kind),
        }
    }
}

impl NodeEngine for ProviderEngine {
    fn id(&self) -> Pid {
        ProviderEngine::id(self)
    }

    fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action> {
        ProviderEngine::on_message(self, now, from, msg)
    }

    fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action> {
        ProviderEngine::on_timer(self, now, nego, kind)
    }
}

/// One node of a scenario: an optional organizer, an optional provider,
/// and the queue of services this node will originate.
///
/// The composite owns the one transport-level subtlety of the protocol: a
/// radio broadcast does not reach its own sender, but the paper explicitly
/// allows the organizer's node to join the coalition ("may include the node
/// that starts the negotiation"). Whenever the organizer broadcasts a CFP,
/// the local provider is handed it synchronously and its response actions
/// are spliced in; the proposal then travels the normal (zero-distance)
/// self-unicast path so message accounting stays honest on every backend.
#[derive(Clone)]
pub struct CoalitionNode {
    id: Pid,
    organizer: Option<OrganizerEngine>,
    provider: Option<ProviderEngine>,
    /// Services awaiting their kickoff, ordered by kickoff time (ties by
    /// submission order). Kickoff timers carry no payload, so the pop
    /// must mirror the timers' firing order, not submission order.
    pending: Vec<(SimTime, ServiceDef)>,
}

impl CoalitionNode {
    /// Creates an empty node (no engines installed yet).
    pub fn new(id: Pid) -> Self {
        Self {
            id,
            organizer: None,
            provider: None,
            pending: Vec::new(),
        }
    }

    /// Installs the organizer engine. Panics if its id differs.
    pub fn with_organizer(mut self, organizer: OrganizerEngine) -> Self {
        assert_eq!(organizer.id(), self.id, "organizer id must match node id");
        self.organizer = Some(organizer);
        self
    }

    /// Installs the provider engine. Panics if its id differs.
    pub fn with_provider(mut self, provider: ProviderEngine) -> Self {
        assert_eq!(
            ProviderEngine::id(&provider),
            self.id,
            "provider id must match node id"
        );
        self.provider = Some(provider);
        self
    }

    /// The organizer engine, if installed.
    pub fn organizer(&self) -> Option<&OrganizerEngine> {
        self.organizer.as_ref()
    }

    /// The provider engine, if installed.
    pub fn provider(&self) -> Option<&ProviderEngine> {
        self.provider.as_ref()
    }

    /// Mutable organizer access (fault injectors, model checking).
    pub fn organizer_mut(&mut self) -> Option<&mut OrganizerEngine> {
        self.organizer.as_mut()
    }

    /// Mutable provider access (fault injectors, model checking).
    pub fn provider_mut(&mut self) -> Option<&mut ProviderEngine> {
        self.provider.as_mut()
    }

    /// Services still queued for kickoff, in kickoff order.
    pub fn pending_services(&self) -> &[(SimTime, ServiceDef)] {
        &self.pending
    }

    /// Queues a service to be started by the kickoff timer armed for
    /// `at` (see [`kickoff_token`]; [`Runtime::submit`] arms it for you).
    /// Entries are kept in kickoff-time order — kickoff timers all look
    /// alike, so the earliest-firing timer must pop the earliest-`at`
    /// service even when submissions arrive out of time order.
    pub fn queue_service_at(&mut self, at: SimTime, service: ServiceDef) {
        let idx = self.pending.partition_point(|(t, _)| *t <= at);
        self.pending.insert(idx, (at, service));
    }

    /// Splices the local provider's synchronous CFP response in front of
    /// each CFP broadcast (see type docs). Providers never broadcast, so
    /// one pass suffices.
    fn absorb_local(&mut self, now: SimTime, actions: Vec<Action>) -> Vec<Action> {
        let is_cfp = |a: &Action| {
            matches!(a.payload(), Some(Msg::CallForProposals { .. }))
                && matches!(a, Action::Broadcast(_))
        };
        if self.provider.is_none() || !actions.iter().any(is_cfp) {
            return actions;
        }
        let mut out = Vec::with_capacity(actions.len() + 2);
        for action in actions {
            if let Action::Broadcast(msg) = &action {
                if matches!(&**msg, Msg::CallForProposals { .. }) {
                    let p = self.provider.as_mut().expect("checked above");
                    out.extend(p.on_message(now, self.id, msg));
                }
            }
            out.push(action);
        }
        out
    }

    /// Routes a burst of same-instant deliveries through the provider's
    /// batched pricing path ([`ProviderEngine::on_cfp_batch`]): exactly
    /// equivalent to delivering each message in order, but announcements
    /// repeated across the batch's CFPs are resolved and compiled once.
    /// Bursts that are not all CFPs (or a node without a provider) fall
    /// back to sequential delivery, so callers may hand over any
    /// same-destination burst.
    pub fn on_message_batch(&mut self, now: SimTime, batch: &[(Pid, &Msg)]) -> Vec<Action> {
        let all_cfps = batch
            .iter()
            .all(|(_, m)| matches!(m, Msg::CallForProposals { .. }));
        if !all_cfps || self.provider.is_none() || batch.len() <= 1 {
            let mut out = Vec::new();
            for &(from, msg) in batch {
                out.extend(self.on_message(now, from, msg));
            }
            return out;
        }
        let p = self.provider.as_mut().expect("checked above");
        let actions = p.on_cfp_batch(now, batch);
        self.absorb_local(now, actions)
    }

    fn start_next_service(&mut self, now: SimTime) -> Vec<Action> {
        if self.pending.is_empty() {
            return Vec::new();
        }
        let (_, service) = self.pending.remove(0);
        let Some(org) = self.organizer.as_mut() else {
            return Vec::new();
        };
        match org.start_service(now, &service) {
            Ok((_nego, actions)) => actions,
            Err(e) => {
                // An invalid request is a host programming error; surface
                // loudly in tests without crashing long experiment sweeps.
                eprintln!("node {}: service `{}` rejected: {e}", self.id, service.name);
                Vec::new()
            }
        }
    }
}

impl NodeEngine for CoalitionNode {
    fn id(&self) -> Pid {
        self.id
    }

    fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action> {
        let actions = match msg {
            Msg::CallForProposals { .. }
            | Msg::Award { .. }
            | Msg::Release { .. }
            | Msg::LeaseRenew { .. } => self
                .provider
                .as_mut()
                .map(|p| p.on_message(now, from, msg))
                .unwrap_or_default(),
            Msg::Proposal { .. }
            | Msg::Accept { .. }
            | Msg::Decline { .. }
            | Msg::Heartbeat { .. } => self
                .organizer
                .as_mut()
                .map(|o| o.on_message(now, from, msg))
                .unwrap_or_default(),
        };
        self.absorb_local(now, actions)
    }

    fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action> {
        let actions = match kind {
            TimerKind::Kickoff => self.start_next_service(now),
            TimerKind::Dissolve => self
                .organizer
                .as_mut()
                .map(|o| o.dissolve(nego))
                .unwrap_or_default(),
            TimerKind::ProposalDeadline
            | TimerKind::AwardDeadline
            | TimerKind::HeartbeatCheck
            | TimerKind::ReAnnounce => self
                .organizer
                .as_mut()
                .map(|o| o.on_timer(now, nego, kind))
                .unwrap_or_default(),
            TimerKind::HeartbeatSend | TimerKind::HoldExpiry | TimerKind::LeaseCheck => self
                .provider
                .as_mut()
                .map(|p| p.on_timer(now, nego, kind))
                .unwrap_or_default(),
        };
        self.absorb_local(now, actions)
    }
}

impl crate::snapshot::StateDigest for CoalitionNode {
    fn digest(&self, h: &mut crate::snapshot::StableHasher) {
        h.write_u64(self.id as u64);
        h.write_bool(self.organizer.is_some());
        if let Some(o) = &self.organizer {
            o.digest(h);
        }
        h.write_bool(self.provider.is_some());
        if let Some(p) = &self.provider {
            p.digest(h);
        }
        h.write_usize(self.pending.len());
        for (at, service) in &self.pending {
            h.write_u64(at.0);
            h.write_str(&format!("{service:?}"));
        }
    }
}

// ---------------------------------------------------------------------------
// The Runtime trait and its shared vocabulary.
// ---------------------------------------------------------------------------

/// Per-run event log entry, identical across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// When the event surfaced (virtual time on DES/Direct, wall time
    /// since runtime creation on Actor).
    pub at: SimTime,
    /// The node whose engine emitted it.
    pub node: Pid,
    /// The event.
    pub event: NegoEvent,
}

/// Errors of the runtime registration/submission API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// `add_node` saw a node id that is already registered.
    DuplicateNode(Pid),
    /// `submit`/`schedule_dissolve` addressed an unregistered node.
    UnknownNode(Pid),
    /// `submit` addressed a node with no organizer engine — its kickoff
    /// timer would pop the service and silently drop it.
    NoOrganizer(Pid),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DuplicateNode(p) => write!(f, "node {p} is already registered"),
            RuntimeError::UnknownNode(p) => write!(f, "node {p} is not registered"),
            RuntimeError::NoOrganizer(p) => write!(f, "node {p} has no organizer engine"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// True for events that settle a formation round (used by
/// [`Runtime::run_until_settled`]).
fn is_settled(e: &LoggedEvent) -> bool {
    matches!(
        e.event,
        NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
    )
}

/// Counts settled formation rounds in an event log.
pub fn settled_count(events: &[LoggedEvent]) -> usize {
    events.iter().filter(|e| is_settled(e)).count()
}

/// Uniform execution API over the three backends.
///
/// Time is a virtual `SimTime` measured from the runtime's creation. The
/// DES and Direct backends interpret it exactly; the Actor backend maps it
/// onto the wall clock (1 µs of `SimTime` = 1 µs of real time).
pub trait Runtime {
    /// Short backend identifier for logs and tables.
    fn backend_name(&self) -> &'static str;

    /// Registers a node. Duplicate ids are rejected — silently replacing
    /// an engine mid-scenario was a classic source of lost state.
    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError>;

    /// Queues `service` at `node` and schedules its negotiation to start
    /// at `at`.
    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError>;

    /// Asks `nego`'s organizer to dissolve the coalition at `at`.
    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError>;

    /// Runs until `deadline`. Returns the number of backend events
    /// processed (0 on backends that cannot count them).
    fn run(&mut self, deadline: SimTime) -> u64;

    /// Runs until at least `settled` negotiations settled (Formed or
    /// FormationIncomplete, cumulative over this runtime's life) or
    /// `deadline` passed; returns the settled count. On the Actor backend
    /// this returns as soon as the count is reached instead of sleeping
    /// out the horizon.
    fn run_until_settled(&mut self, settled: usize, deadline: SimTime) -> usize {
        if settled_count(self.events()) < settled {
            self.run(deadline);
        }
        settled_count(self.events())
    }

    /// Installs a message-fault plan for this run, sampled per delivery
    /// (drop / duplicate / reorder; see [`FaultPlan`]). Returns `false` if
    /// the backend does not support fault injection (the default). Call
    /// before the first `run`; a plan that samples nothing leaves the
    /// backend bit-identical to an uninstalled one.
    fn set_fault_plan(&mut self, _plan: FaultPlan) -> bool {
        false
    }

    /// Installs a link-partition schedule for this run (see
    /// [`PartitionPlan`]): deliveries whose arrival falls inside a window
    /// that separates sender and receiver are cut. Returns `false` if the
    /// backend does not enforce partitions (the default). Call before the
    /// first `run`; a plan with no events leaves the backend bit-identical
    /// to an uninstalled one.
    fn set_partition_plan(&mut self, _plan: &PartitionPlan) -> bool {
        false
    }

    /// Everything the engines reported so far, in emission order.
    fn events(&self) -> &[LoggedEvent];

    /// Messages that entered the transport (unicasts + broadcasts).
    fn messages_sent(&self) -> u64;

    /// Direct access to a hosted node, where the backend permits it
    /// (`None` on the Actor backend, whose nodes live on their threads).
    fn node(&self, id: Pid) -> Option<&CoalitionNode>;

    /// Releases backend resources (joins actor threads). Idempotent;
    /// no-op on the in-process backends.
    fn shutdown(&mut self) {}
}

/// Timer token that triggers "start the next queued service" at a node.
pub fn kickoff_token(node: Pid) -> u64 {
    encode_timer(
        NegoId {
            organizer: node,
            seq: 0,
        },
        TimerKind::Kickoff,
    )
}

/// Timer token that dissolves `nego` at its organizer when it fires.
pub fn dissolve_token(nego: NegoId) -> u64 {
    encode_timer(nego, TimerKind::Dissolve)
}

// ---------------------------------------------------------------------------
// DES backend.
// ---------------------------------------------------------------------------

/// The engine host plugged into the DES event loop.
#[derive(Default)]
struct DesHost {
    nodes: BTreeMap<Pid, CoalitionNode>,
    events: Vec<LoggedEvent>,
}

impl DesHost {
    fn apply(&mut self, ctx: &mut Ctx<'_, Msg>, at: Pid, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    let bytes = msg.estimated_bytes();
                    ctx.broadcast(NodeId(at), bytes, msg);
                }
                Action::Send { to, msg } => {
                    let bytes = msg.estimated_bytes();
                    ctx.unicast(NodeId(at), NodeId(to), bytes, msg);
                }
                Action::Timer { delay, token } => ctx.timer(NodeId(at), delay, token),
                Action::Event(event) => self.events.push(LoggedEvent {
                    at: ctx.now,
                    node: at,
                    event,
                }),
            }
        }
    }
}

impl NetApp<Msg> for DesHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, from: NodeId, msg: &Msg) {
        let pid = at.0;
        if let Some(node) = self.nodes.get_mut(&pid) {
            let actions = node.on_message(ctx.now, from.0, msg);
            self.apply(ctx, pid, actions);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, token: u64) {
        let Some((nego, kind)) = decode_timer(token) else {
            return;
        };
        let pid = at.0;
        if let Some(node) = self.nodes.get_mut(&pid) {
            let actions = node.on_timer(ctx.now, nego, kind);
            self.apply(ctx, pid, actions);
        }
    }
}

/// [`Runtime`] backend over the `qosc-netsim` discrete-event simulator:
/// geometry, latency, loss, mobility and failure injection.
///
/// Construct the [`Simulator`] first (node positions, radio model,
/// mobility, scheduled failures), then register one [`CoalitionNode`] per
/// simulator node id.
pub struct DesRuntime {
    sim: Simulator<Msg>,
    host: DesHost,
    started: bool,
}

impl DesRuntime {
    /// Wraps a prepared simulator.
    pub fn new(sim: Simulator<Msg>) -> Self {
        Self {
            sim,
            host: DesHost::default(),
            started: false,
        }
    }

    /// The underlying simulator (positions, stats, radio).
    pub fn sim(&self) -> &Simulator<Msg> {
        &self.sim
    }

    /// Mutable simulator access for DES-only controls (failure injection,
    /// extra timers).
    pub fn sim_mut(&mut self) -> &mut Simulator<Msg> {
        &mut self.sim
    }

    /// The full network counters (the trait's [`Runtime::messages_sent`]
    /// is a summary of these).
    pub fn net_stats(&self) -> &NetStats {
        self.sim.stats()
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let now = self.sim.now();
        let mut startup: Vec<(Pid, Vec<Action>)> = Vec::new();
        for (pid, node) in self.host.nodes.iter_mut() {
            let actions = node.on_start(now);
            if !actions.is_empty() {
                startup.push((*pid, actions));
            }
        }
        for (pid, actions) in startup {
            for action in actions {
                match action {
                    Action::Timer { delay, token } => {
                        self.sim.schedule_timer(NodeId(pid), delay, token)
                    }
                    Action::Event(event) => self.host.events.push(LoggedEvent {
                        at: now,
                        node: pid,
                        event,
                    }),
                    // Startup runs outside the event loop, where the DES
                    // has no delivery context; an engine that needs to
                    // announce itself must arm a zero-delay timer instead.
                    // Failing loudly here keeps the DES-vs-Direct
                    // equivalence contract honest.
                    Action::Broadcast(_) | Action::Send { .. } => unreachable!(
                        "on_start must not emit messages directly; arm a zero-delay timer"
                    ),
                }
            }
        }
    }
}

impl Runtime for DesRuntime {
    fn backend_name(&self) -> &'static str {
        "des"
    }

    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError> {
        let id = node.id();
        if self.host.nodes.contains_key(&id) {
            return Err(RuntimeError::DuplicateNode(id));
        }
        debug_assert!(
            (id as usize) < self.sim.node_count(),
            "register sim node {id} (geometry) before its engines"
        );
        self.host.nodes.insert(id, node);
        Ok(())
    }

    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError> {
        let slot = self
            .host
            .nodes
            .get_mut(&node)
            .ok_or(RuntimeError::UnknownNode(node))?;
        if slot.organizer.is_none() {
            return Err(RuntimeError::NoOrganizer(node));
        }
        slot.queue_service_at(at, service);
        let delay = at.since(self.sim.now());
        self.sim
            .schedule_timer(NodeId(node), delay, kickoff_token(node));
        Ok(())
    }

    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError> {
        if !self.host.nodes.contains_key(&nego.organizer) {
            return Err(RuntimeError::UnknownNode(nego.organizer));
        }
        let delay = at.since(self.sim.now());
        self.sim
            .schedule_timer(NodeId(nego.organizer), delay, dissolve_token(nego));
        Ok(())
    }

    fn run(&mut self, deadline: SimTime) -> u64 {
        self.start_nodes();
        self.sim.run_until(&mut self.host, deadline)
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) -> bool {
        self.sim.set_fault_plan(plan);
        true
    }

    fn set_partition_plan(&mut self, plan: &PartitionPlan) -> bool {
        self.sim.set_partition_plan(plan);
        true
    }

    fn events(&self) -> &[LoggedEvent] {
        &self.host.events
    }

    fn messages_sent(&self) -> u64 {
        self.sim.stats().messages_sent()
    }

    fn node(&self, id: Pid) -> Option<&CoalitionNode> {
        self.host.nodes.get(&id)
    }
}

/// Convenience: builds a DES runtime where node 0 is the organizer (and a
/// provider) and the given engines are the providers, with `service`
/// queued at node 0 and its kickoff scheduled at `start`. The simulator
/// must already hold the matching geometry.
///
/// This is the canonical harness used by tests and several experiments;
/// richer topologies register [`CoalitionNode`]s directly.
pub fn single_organizer_scenario(
    sim: Simulator<Msg>,
    organizer_config: OrganizerConfig,
    providers: Vec<ProviderEngine>,
    service: ServiceDef,
    start: SimDuration,
) -> DesRuntime {
    let mut rt = DesRuntime::new(sim);
    let mut organizer = Some(OrganizerEngine::new(0, organizer_config));
    for p in providers {
        let id = ProviderEngine::id(&p);
        let mut node = CoalitionNode::new(id).with_provider(p);
        if id == 0 {
            node = node.with_organizer(organizer.take().expect("one provider per id"));
        }
        // Route every registration through add_node so a duplicate
        // provider id fails loudly instead of shadowing an engine.
        rt.add_node(node)
            .unwrap_or_else(|e| panic!("single_organizer_scenario: {e}"));
    }
    if let Some(org) = organizer {
        // No provider on node 0: the organizer still needs a home.
        rt.add_node(CoalitionNode::new(0).with_organizer(org))
            .unwrap_or_else(|e| panic!("single_organizer_scenario: {e}"));
    }
    rt.submit(0, service, SimTime::ZERO + start)
        .expect("node 0 registered");
    rt
}

// ---------------------------------------------------------------------------
// Sharded DES backend: region-partitioned conservative parallel simulation.
// ---------------------------------------------------------------------------

/// One shard's engine host: the [`CoalitionNode`]s of that shard's nodes
/// plus its slice of the event log. Run events are tagged with the
/// simulator's total-order key so per-shard logs merge into one
/// deterministic sequence afterwards.
#[derive(Default)]
struct ShardHost {
    nodes: BTreeMap<Pid, CoalitionNode>,
    events: Vec<((SimTime, u32, u64), LoggedEvent)>,
}

impl ShardHost {
    fn apply(&mut self, ctx: &mut Ctx<'_, Msg>, at: Pid, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    let bytes = msg.estimated_bytes();
                    ctx.broadcast(NodeId(at), bytes, msg);
                }
                Action::Send { to, msg } => {
                    let bytes = msg.estimated_bytes();
                    ctx.unicast(NodeId(at), NodeId(to), bytes, msg);
                }
                Action::Timer { delay, token } => ctx.timer(NodeId(at), delay, token),
                Action::Event(event) => self.events.push((
                    ctx.order_key(),
                    LoggedEvent {
                        at: ctx.now,
                        node: at,
                        event,
                    },
                )),
            }
        }
    }
}

impl NetApp<Msg> for ShardHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, from: NodeId, msg: &Msg) {
        let pid = at.0;
        if let Some(node) = self.nodes.get_mut(&pid) {
            let actions = node.on_message(ctx.now, from.0, msg);
            self.apply(ctx, pid, actions);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, token: u64) {
        let Some((nego, kind)) = decode_timer(token) else {
            return;
        };
        let pid = at.0;
        if let Some(node) = self.nodes.get_mut(&pid) {
            let actions = node.on_timer(ctx.now, nego, kind);
            self.apply(ctx, pid, actions);
        }
    }
}

/// [`Runtime`] backend over the region-partitioned parallel simulator
/// ([`ShardedSimulator`]): same geometry, latency, loss and failure
/// semantics as [`DesRuntime`], with the event loop split across worker
/// threads under a conservative-lookahead horizon protocol.
///
/// Engine hosting follows the partition: nodes registered before the
/// first `run` are distributed into one host per shard, so a
/// worker thread only ever touches its own shard's engines. The event
/// log is merged across shards in total-order-key order after every run
/// — at one worker it is identical, entry for entry, to what
/// [`DesRuntime`] logs for the same scenario (pinned by the
/// sharded-equivalence system test); at higher worker counts it is the
/// same set of events in the same deterministic order for a given
/// partition.
pub struct DesShardedRuntime {
    sim: ShardedSimulator<Msg>,
    /// Nodes registered before the partition froze (pid order).
    staged: BTreeMap<Pid, CoalitionNode>,
    /// One host per shard once frozen.
    hosts: Vec<ShardHost>,
    /// Events emitted by `on_start`, before any simulator context exists.
    prelude: Vec<LoggedEvent>,
    /// Merged log: prelude + key-sorted run events; rebuilt after runs.
    merged: Vec<LoggedEvent>,
    frozen: bool,
}

impl DesShardedRuntime {
    /// Wraps a prepared sharded simulator.
    pub fn new(sim: ShardedSimulator<Msg>) -> Self {
        Self {
            sim,
            staged: BTreeMap::new(),
            hosts: Vec::new(),
            prelude: Vec::new(),
            merged: Vec::new(),
            frozen: false,
        }
    }

    /// The underlying simulator (positions, stats, radio, shard layout).
    pub fn sim(&self) -> &ShardedSimulator<Msg> {
        &self.sim
    }

    /// Mutable simulator access for DES-only controls (failure injection,
    /// extra timers).
    pub fn sim_mut(&mut self) -> &mut ShardedSimulator<Msg> {
        &mut self.sim
    }

    /// The full network counters, merged across shards.
    pub fn net_stats(&self) -> NetStats {
        self.sim.stats()
    }

    /// Starts every engine (pid order, like [`DesRuntime`]) and
    /// distributes the staged nodes into per-shard hosts. Runs once,
    /// implied by the first `run`.
    fn freeze(&mut self) {
        if self.frozen {
            return;
        }
        self.frozen = true;
        let now = self.sim.now();
        for (pid, node) in self.staged.iter_mut() {
            for action in node.on_start(now) {
                match action {
                    Action::Timer { delay, token } => {
                        self.sim.schedule_timer(NodeId(*pid), delay, token)
                    }
                    Action::Event(event) => self.prelude.push(LoggedEvent {
                        at: now,
                        node: *pid,
                        event,
                    }),
                    // Same contract as the sequential DES backend: no
                    // delivery context exists outside the event loop.
                    Action::Broadcast(_) | Action::Send { .. } => unreachable!(
                        "on_start must not emit messages directly; arm a zero-delay timer"
                    ),
                }
            }
        }
        let shards = self.sim.shard_count();
        self.hosts = (0..shards).map(|_| ShardHost::default()).collect();
        for (pid, node) in std::mem::take(&mut self.staged) {
            let q = self.sim.shard_of(NodeId(pid));
            self.hosts[q].nodes.insert(pid, node);
        }
        self.merged = self.prelude.clone();
    }

    /// Rebuilds the merged event log: prelude first (startup precedes the
    /// event loop), then every shard's entries sorted by total-order key.
    /// Equal keys only arise within one handler invocation — one shard —
    /// so the stable sort preserves their emission order.
    fn rebuild_events(&mut self) {
        let mut tagged: Vec<&((SimTime, u32, u64), LoggedEvent)> =
            self.hosts.iter().flat_map(|h| h.events.iter()).collect();
        tagged.sort_by_key(|(key, _)| *key);
        self.merged.clear();
        self.merged.extend(self.prelude.iter().cloned());
        self.merged
            .extend(tagged.into_iter().map(|(_, e)| e.clone()));
    }

    fn node_mut(&mut self, id: Pid) -> Option<&mut CoalitionNode> {
        if self.staged.contains_key(&id) {
            return self.staged.get_mut(&id);
        }
        self.hosts.iter_mut().find_map(|h| h.nodes.get_mut(&id))
    }
}

impl Runtime for DesShardedRuntime {
    fn backend_name(&self) -> &'static str {
        "des-sharded"
    }

    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError> {
        let id = node.id();
        if self.staged.contains_key(&id) || self.hosts.iter().any(|h| h.nodes.contains_key(&id)) {
            return Err(RuntimeError::DuplicateNode(id));
        }
        debug_assert!(
            (id as usize) < self.sim.node_count(),
            "register sim node {id} (geometry) before its engines"
        );
        if self.frozen {
            let q = self.sim.shard_of(NodeId(id));
            self.hosts[q].nodes.insert(id, node);
        } else {
            self.staged.insert(id, node);
        }
        Ok(())
    }

    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError> {
        let slot = self.node_mut(node).ok_or(RuntimeError::UnknownNode(node))?;
        if slot.organizer.is_none() {
            return Err(RuntimeError::NoOrganizer(node));
        }
        slot.queue_service_at(at, service);
        let delay = at.since(self.sim.now());
        self.sim
            .schedule_timer(NodeId(node), delay, kickoff_token(node));
        Ok(())
    }

    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError> {
        if self.node_mut(nego.organizer).is_none() {
            return Err(RuntimeError::UnknownNode(nego.organizer));
        }
        let delay = at.since(self.sim.now());
        self.sim
            .schedule_timer(NodeId(nego.organizer), delay, dissolve_token(nego));
        Ok(())
    }

    fn run(&mut self, deadline: SimTime) -> u64 {
        self.freeze();
        let n = self.sim.run_until(&mut self.hosts, deadline);
        self.rebuild_events();
        n
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) -> bool {
        self.sim.set_fault_plan(plan);
        true
    }

    fn set_partition_plan(&mut self, plan: &PartitionPlan) -> bool {
        self.sim.set_partition_plan(plan);
        true
    }

    fn events(&self) -> &[LoggedEvent] {
        &self.merged
    }

    fn messages_sent(&self) -> u64 {
        self.sim.stats().messages_sent()
    }

    fn node(&self, id: Pid) -> Option<&CoalitionNode> {
        self.staged
            .get(&id)
            .or_else(|| self.hosts.iter().find_map(|h| h.nodes.get(&id)))
    }
}

// ---------------------------------------------------------------------------
// Direct backend: zero-latency in-memory FIFO + timer wheel.
// ---------------------------------------------------------------------------

enum DirectKind {
    Deliver {
        from: Pid,
        to: Pid,
        /// Shared payload: a broadcast's deliveries all point at one
        /// allocation.
        msg: Arc<Msg>,
    },
    Timer {
        node: Pid,
        token: u64,
    },
}

struct DirectEvent {
    at: SimTime,
    seq: u64,
    kind: DirectKind,
}

impl PartialEq for DirectEvent {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for DirectEvent {}
impl PartialOrd for DirectEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DirectEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// [`Runtime`] backend with no network at all: messages are delivered at
/// their send timestamp (FIFO among simultaneous events), timers drive the
/// clock, every node hears every broadcast.
///
/// This is the fast path for tests, property checks and benches — and the
/// reference semantics for the DES at zero latency: for fully connected,
/// static, lossless scenarios the two produce identical event logs (the
/// `runtime_equivalence` system test pins this).
#[derive(Default)]
pub struct DirectRuntime {
    nodes: BTreeMap<Pid, CoalitionNode>,
    heap: BinaryHeap<DirectEvent>,
    seq: u64,
    now: SimTime,
    started: bool,
    events: Vec<LoggedEvent>,
    unicasts: u64,
    broadcasts: u64,
    /// Reused broadcast fan-out buffer (the same per-delivery allocation
    /// `Simulator` avoids with its scratch vec).
    bcast_scratch: Vec<Pid>,
    /// Installed when a [`FaultPlan`] with sampling content is set;
    /// `None` keeps the no-fault path allocation- and RNG-free.
    fault: Option<FaultSampler>,
    /// Partition schedule as installed; expanded against the registered
    /// node set on the first `run` (sampled plans bisect `0..node_count`,
    /// so expansion must wait until every node is known).
    partition_plan: Option<PartitionPlan>,
    /// Expanded schedule consulted per delivery; `None` = never cuts.
    partition: Option<PartitionTimeline>,
    /// Deliveries suppressed by the partition schedule.
    partition_cuts: u64,
    /// Coalesce same-instant CFP deliveries per target node (see
    /// [`DirectRuntime::set_cfp_batching`]).
    cfp_batching: bool,
}

impl DirectRuntime {
    /// Creates an empty runtime.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deliveries suppressed so far by the installed partition schedule.
    pub fn partition_cuts(&self) -> u64 {
        self.partition_cuts
    }

    /// True when the partition schedule separates `a` and `b` at `at`.
    fn cuts(&self, at: SimTime, a: Pid, b: Pid) -> bool {
        self.partition
            .as_ref()
            .is_some_and(|tl| tl.cuts_at(at, a, b))
    }

    /// Enables (or disables) coalescing of same-instant CFP deliveries to
    /// one node into a single batched pricing pass
    /// ([`CoalitionNode::on_message_batch`]) — the open-loop load path:
    /// when many negotiations kick off in the same instant, every
    /// provider hears all their CFPs back-to-back, and batching prepares
    /// the repeated announcements once instead of once per negotiation.
    ///
    /// Off by default. Batching preserves each node's own delivery order
    /// (the engine outcome per node is pinned identical by the
    /// `provider_batch` property test) but it *does* regroup
    /// same-timestamp deliveries across nodes, so the event-for-event
    /// `runtime_equivalence` pin only applies with batching off.
    pub fn set_cfp_batching(&mut self, on: bool) {
        self.cfp_batching = on;
    }

    fn push(&mut self, at: SimTime, kind: DirectKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(DirectEvent { at, seq, kind });
    }

    /// When (and how often) one logical delivery lands, after consulting
    /// the fault sampler: `[None, None]` = dropped, one slot = normal,
    /// two slots = duplicated; reorder jitter pushes a copy later in time.
    /// Mirrors the DES simulator's fault hook so the two sampled backends
    /// inject the same fault vocabulary.
    fn fault_delivery_times(&mut self, base_at: SimTime) -> [Option<SimTime>; 2] {
        let Some(f) = self.fault.as_mut() else {
            return [Some(base_at), None];
        };
        let mut times = match f.on_delivery() {
            DeliveryFault::Drop => [None, None],
            DeliveryFault::None => [Some(base_at), None],
            DeliveryFault::Duplicate => [Some(base_at), Some(base_at)],
        };
        for slot in times.iter_mut().flatten() {
            if let Some(jitter) = f.reorder() {
                *slot += jitter;
            }
        }
        times
    }

    fn apply(&mut self, at: Pid, actions: Vec<Action>) {
        let now = self.now;
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    self.broadcasts += 1;
                    // Ascending-pid fan-out mirrors the DES's node order;
                    // each delivery clones the Arc, never the payload.
                    let mut targets = std::mem::take(&mut self.bcast_scratch);
                    targets.clear();
                    targets.extend(self.nodes.keys().copied().filter(|p| *p != at));
                    for &to in &targets {
                        for when in self.fault_delivery_times(now).into_iter().flatten() {
                            // Cut after the fault draws, on the arrival
                            // timestamp — the same discipline as the DES
                            // `Medium`, so RNG streams stay aligned.
                            if self.cuts(when, at, to) {
                                self.partition_cuts += 1;
                                continue;
                            }
                            self.push(
                                when,
                                DirectKind::Deliver {
                                    from: at,
                                    to,
                                    msg: Arc::clone(&msg),
                                },
                            );
                        }
                    }
                    self.bcast_scratch = targets;
                }
                Action::Send { to, msg } => {
                    self.unicasts += 1;
                    if self.nodes.contains_key(&to) {
                        for when in self.fault_delivery_times(now).into_iter().flatten() {
                            if self.cuts(when, at, to) {
                                self.partition_cuts += 1;
                                continue;
                            }
                            self.push(
                                when,
                                DirectKind::Deliver {
                                    from: at,
                                    to,
                                    msg: Arc::clone(&msg),
                                },
                            );
                        }
                    }
                }
                Action::Timer { delay, token } => {
                    self.push(now + delay, DirectKind::Timer { node: at, token });
                }
                Action::Event(event) => self.events.push(LoggedEvent {
                    at: now,
                    node: at,
                    event,
                }),
            }
        }
    }

    fn start_nodes(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        if let Some(plan) = self.partition_plan.take() {
            let width = self.nodes.keys().next_back().map_or(0, |p| *p as usize + 1);
            let tl = plan.expand(width);
            self.partition = (!tl.is_empty()).then_some(tl);
        }
        let now = self.now;
        let pids: Vec<Pid> = self.nodes.keys().copied().collect();
        for pid in pids {
            let actions = self
                .nodes
                .get_mut(&pid)
                .map(|n| n.on_start(now))
                .unwrap_or_default();
            self.apply(pid, actions);
        }
    }
}

impl Runtime for DirectRuntime {
    fn backend_name(&self) -> &'static str {
        "direct"
    }

    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError> {
        let id = node.id();
        if self.nodes.contains_key(&id) {
            return Err(RuntimeError::DuplicateNode(id));
        }
        self.nodes.insert(id, node);
        Ok(())
    }

    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError> {
        let slot = self
            .nodes
            .get_mut(&node)
            .ok_or(RuntimeError::UnknownNode(node))?;
        if slot.organizer.is_none() {
            return Err(RuntimeError::NoOrganizer(node));
        }
        let at = at.max(self.now);
        slot.queue_service_at(at, service);
        self.push(
            at,
            DirectKind::Timer {
                node,
                token: kickoff_token(node),
            },
        );
        Ok(())
    }

    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError> {
        if !self.nodes.contains_key(&nego.organizer) {
            return Err(RuntimeError::UnknownNode(nego.organizer));
        }
        let at = at.max(self.now);
        self.push(
            at,
            DirectKind::Timer {
                node: nego.organizer,
                token: dissolve_token(nego),
            },
        );
        Ok(())
    }

    fn run(&mut self, deadline: SimTime) -> u64 {
        self.start_nodes();
        let mut n = 0;
        while let Some(head) = self.heap.peek() {
            if head.at > deadline {
                self.now = deadline;
                break;
            }
            let ev = self.heap.pop().expect("peeked");
            self.now = ev.at;
            match ev.kind {
                DirectKind::Deliver { from, to, msg } => {
                    if self.cfp_batching && matches!(&*msg, Msg::CallForProposals { .. }) {
                        // Coalesce every same-instant CFP delivery bound
                        // for the same node. Queued same-time events all
                        // predate anything the batch will push (their seqs
                        // are lower), so draining them here and re-queueing
                        // the non-matching ones preserves their order.
                        let mut batch: Vec<(Pid, Arc<Msg>)> = vec![(from, msg)];
                        let mut rest: Vec<DirectEvent> = Vec::new();
                        while self.heap.peek().is_some_and(|e| e.at == ev.at) {
                            let e = self.heap.pop().expect("peeked");
                            match e.kind {
                                DirectKind::Deliver {
                                    from,
                                    to: target,
                                    msg,
                                } if target == to
                                    && matches!(&*msg, Msg::CallForProposals { .. }) =>
                                {
                                    batch.push((from, msg));
                                }
                                kind => rest.push(DirectEvent {
                                    at: e.at,
                                    seq: e.seq,
                                    kind,
                                }),
                            }
                        }
                        for e in rest {
                            self.heap.push(e);
                        }
                        n += batch.len() as u64 - 1;
                        let refs: Vec<(Pid, &Msg)> =
                            batch.iter().map(|(f, m)| (*f, &**m)).collect();
                        let actions = self
                            .nodes
                            .get_mut(&to)
                            .map(|node| node.on_message_batch(ev.at, &refs))
                            .unwrap_or_default();
                        self.apply(to, actions);
                    } else {
                        let actions = self
                            .nodes
                            .get_mut(&to)
                            .map(|node| node.on_message(ev.at, from, &msg))
                            .unwrap_or_default();
                        self.apply(to, actions);
                    }
                }
                DirectKind::Timer { node, token } => {
                    let Some((nego, kind)) = decode_timer(token) else {
                        continue;
                    };
                    let actions = self
                        .nodes
                        .get_mut(&node)
                        .map(|n| n.on_timer(ev.at, nego, kind))
                        .unwrap_or_default();
                    self.apply(node, actions);
                }
            }
            n += 1;
        }
        n
    }

    fn events(&self) -> &[LoggedEvent] {
        &self.events
    }

    fn set_fault_plan(&mut self, plan: FaultPlan) -> bool {
        self.fault = plan.samples_anything().then(|| FaultSampler::new(plan));
        true
    }

    fn set_partition_plan(&mut self, plan: &PartitionPlan) -> bool {
        self.partition_plan = (!plan.is_none()).then(|| plan.clone());
        true
    }

    fn messages_sent(&self) -> u64 {
        self.unicasts + self.broadcasts
    }

    fn node(&self, id: Pid) -> Option<&CoalitionNode> {
        self.nodes.get(&id)
    }
}

// ---------------------------------------------------------------------------
// Actor backend: live threads, wall-clock timers.
// ---------------------------------------------------------------------------

/// Wire format of the actor backend. `Clone` lets the [`Directory`] fan a
/// broadcast to every mailbox, but the payload rides behind `Arc` — each
/// fan-out copy is a pointer clone, not a message clone.
#[derive(Clone)]
pub enum ActorWire {
    /// A protocol message from a peer.
    Proto {
        /// Sending node.
        from: Pid,
        /// The shared payload.
        msg: Arc<Msg>,
    },
    /// A timer armed by one of the node's engines fired.
    Timer(u64),
    /// Control: enqueue a service on the node's kickoff queue, keyed by
    /// its kickoff time.
    Queue(SimTime, ServiceDef),
}

struct ActorNode {
    node: CoalitionNode,
    dir: Directory<ActorWire>,
    epoch: Instant,
    events: Sender<LoggedEvent>,
    sent: Arc<AtomicU64>,
}

impl ActorNode {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&mut self, ctx: &ActorCtx<ActorWire>, actions: Vec<Action>) {
        let id = self.node.id();
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    self.sent.fetch_add(1, AtomicOrdering::Relaxed);
                    // The directory clones the wire struct per peer; every
                    // clone shares this one payload allocation.
                    self.dir.broadcast(id, &ActorWire::Proto { from: id, msg });
                }
                Action::Send { to, msg } => {
                    self.sent.fetch_add(1, AtomicOrdering::Relaxed);
                    self.dir.send(id, to, ActorWire::Proto { from: id, msg });
                }
                Action::Timer { delay, token } => {
                    send_timer_after(ctx.myself(), token, delay);
                }
                Action::Event(event) => {
                    let _ = self.events.send(LoggedEvent {
                        at: self.now(),
                        node: id,
                        event,
                    });
                }
            }
        }
    }
}

impl Actor for ActorNode {
    type Msg = ActorWire;

    fn on_start(&mut self, ctx: &ActorCtx<ActorWire>) {
        let now = self.now();
        let actions = self.node.on_start(now);
        self.apply(ctx, actions);
    }

    fn handle(&mut self, ctx: &ActorCtx<ActorWire>, msg: ActorWire) {
        let now = self.now();
        match msg {
            ActorWire::Proto { from, msg } => {
                let actions = self.node.on_message(now, from, &msg);
                self.apply(ctx, actions);
            }
            ActorWire::Timer(token) => {
                let Some((nego, kind)) = decode_timer(token) else {
                    return;
                };
                let actions = self.node.on_timer(now, nego, kind);
                self.apply(ctx, actions);
            }
            ActorWire::Queue(at, service) => self.node.queue_service_at(at, service),
        }
    }
}

/// Fires `token` at `addr` after `delay`, from a detached timer thread
/// (dropped silently if the actor has stopped meanwhile).
fn send_timer_after(addr: Addr<ActorWire>, token: u64, delay: SimDuration) {
    let d = Duration::from_micros(delay.as_micros());
    std::thread::spawn(move || {
        std::thread::sleep(d);
        let _ = addr.send(ActorWire::Timer(token));
    });
}

/// [`Runtime`] backend on the live threaded transport: each node runs on
/// its own OS thread with real wall-clock timers; a process-wide
/// [`Directory`] plays the radio's role (broadcast = clone-to-all, with an
/// optional reachability restriction for emulating partial topologies).
///
/// `SimTime` maps 1:1 onto microseconds of wall time since the runtime
/// was created; event timestamps and formation latencies are therefore
/// real measurements, not simulated ones.
pub struct ActorRuntime {
    system: ActorSystem,
    dir: Directory<ActorWire>,
    addrs: BTreeMap<Pid, Addr<ActorWire>>,
    /// Pids whose node had an organizer at registration (the nodes
    /// themselves live on their threads, so submit checks this copy).
    organizers: std::collections::BTreeSet<Pid>,
    epoch: Instant,
    rx: Receiver<LoggedEvent>,
    tx: Sender<LoggedEvent>,
    events: Vec<LoggedEvent>,
    sent: Arc<AtomicU64>,
    down: bool,
}

impl ActorRuntime {
    /// Creates an empty runtime (the epoch of its wall clock).
    pub fn new() -> Self {
        let (tx, rx) = unbounded();
        Self {
            system: ActorSystem::new(),
            dir: Directory::new(),
            addrs: BTreeMap::new(),
            organizers: std::collections::BTreeSet::new(),
            epoch: Instant::now(),
            rx,
            tx,
            events: Vec::new(),
            sent: Arc::new(AtomicU64::new(0)),
            down: false,
        }
    }

    /// The peer directory — restrict reachability with
    /// [`Directory::set_reachable`] to emulate partial topologies.
    pub fn directory(&self) -> &Directory<ActorWire> {
        &self.dir
    }

    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn drain(&mut self) {
        while let Ok(e) = self.rx.try_recv() {
            self.events.push(e);
        }
    }

    /// Wall-clock instant corresponding to a virtual deadline.
    fn wall(&self, deadline: SimTime) -> Instant {
        self.epoch + Duration::from_micros(deadline.as_micros())
    }
}

impl Default for ActorRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime for ActorRuntime {
    fn backend_name(&self) -> &'static str {
        "actor"
    }

    fn add_node(&mut self, node: CoalitionNode) -> Result<(), RuntimeError> {
        let id = node.id();
        if self.addrs.contains_key(&id) {
            return Err(RuntimeError::DuplicateNode(id));
        }
        if node.organizer().is_some() {
            self.organizers.insert(id);
        }
        let actor = ActorNode {
            node,
            dir: self.dir.clone(),
            epoch: self.epoch,
            events: self.tx.clone(),
            sent: Arc::clone(&self.sent),
        };
        let addr = self.system.spawn(format!("node-{id}"), actor);
        self.dir.register(id, addr.clone());
        self.addrs.insert(id, addr);
        Ok(())
    }

    fn submit(&mut self, node: Pid, service: ServiceDef, at: SimTime) -> Result<(), RuntimeError> {
        let addr = self
            .addrs
            .get(&node)
            .ok_or(RuntimeError::UnknownNode(node))?;
        if !self.organizers.contains(&node) {
            return Err(RuntimeError::NoOrganizer(node));
        }
        // The queue entry rides the FIFO mailbox ahead of the kickoff.
        addr.send(ActorWire::Queue(at, service));
        let delay = at.since(self.now());
        send_timer_after(addr.clone(), kickoff_token(node), delay);
        Ok(())
    }

    fn schedule_dissolve(&mut self, nego: NegoId, at: SimTime) -> Result<(), RuntimeError> {
        let addr = self
            .addrs
            .get(&nego.organizer)
            .ok_or(RuntimeError::UnknownNode(nego.organizer))?;
        let delay = at.since(self.now());
        send_timer_after(addr.clone(), dissolve_token(nego), delay);
        Ok(())
    }

    fn run(&mut self, deadline: SimTime) -> u64 {
        let wall = self.wall(deadline);
        let mut n = 0;
        loop {
            let now = Instant::now();
            if now >= wall {
                break;
            }
            let step = (wall - now).min(Duration::from_millis(50));
            if let Ok(e) = self.rx.recv_timeout(step) {
                self.events.push(e);
                n += 1;
            }
        }
        self.drain();
        n
    }

    fn run_until_settled(&mut self, settled: usize, deadline: SimTime) -> usize {
        let wall = self.wall(deadline);
        loop {
            self.drain();
            let count = settled_count(&self.events);
            if count >= settled {
                return count;
            }
            let now = Instant::now();
            if now >= wall {
                return count;
            }
            let step = (wall - now).min(Duration::from_millis(50));
            if let Ok(e) = self.rx.recv_timeout(step) {
                self.events.push(e);
            }
        }
    }

    fn events(&self) -> &[LoggedEvent] {
        &self.events
    }

    fn messages_sent(&self) -> u64 {
        self.sent.load(AtomicOrdering::Relaxed)
    }

    fn node(&self, _id: Pid) -> Option<&CoalitionNode> {
        None
    }

    fn shutdown(&mut self) {
        if !self.down {
            self.down = true;
            self.system.shutdown();
            self.drain();
        }
    }
}

impl Drop for ActorRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organizer::OrganizerConfig;
    use crate::provider::{ProviderConfig, ProviderEngine};
    use qosc_netsim::{Area, Mobility, Point, SimConfig};
    use qosc_resources::{av_demand_model, ResourceVector};
    use qosc_spec::{catalog, TaskDef};

    fn provider(id: Pid, cpu: f64) -> ProviderEngine {
        let mut p = ProviderEngine::new(
            id,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
            ProviderConfig::default(),
        );
        let spec = catalog::av_spec();
        p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
        p
    }

    fn service(tasks: usize) -> ServiceDef {
        ServiceDef::new(
            "svc",
            (0..tasks)
                .map(|i| TaskDef {
                    name: format!("t{i}"),
                    spec: catalog::av_spec(),
                    request: catalog::surveillance_request(),
                    input_bytes: 100_000,
                    output_bytes: 10_000,
                })
                .collect(),
        )
    }

    fn clustered_sim(n: usize) -> Simulator<Msg> {
        let mut sim = Simulator::new(SimConfig {
            area: Area::new(100.0, 100.0),
            seed: 42,
            ..Default::default()
        });
        for i in 0..n {
            // All nodes within a 30 m cluster; default range is 50 m.
            let angle = i as f64;
            sim.add_node(
                Point::new(50.0 + 10.0 * angle.cos(), 50.0 + 10.0 * angle.sin()),
                Mobility::Static,
            );
        }
        sim
    }

    fn direct_runtime(cpus: &[f64]) -> DirectRuntime {
        let mut rt = DirectRuntime::new();
        for (i, cpu) in cpus.iter().enumerate() {
            let id = i as Pid;
            let mut node = CoalitionNode::new(id).with_provider(provider(id, *cpu));
            if i == 0 {
                node = node.with_organizer(OrganizerEngine::new(id, OrganizerConfig::default()));
            }
            rt.add_node(node).unwrap();
        }
        rt
    }

    #[test]
    fn des_end_to_end_formation() {
        let sim = clustered_sim(4);
        let providers = (0..4)
            .map(|i| provider(i, 200.0 + 100.0 * i as f64))
            .collect();
        let mut rt = single_organizer_scenario(
            sim,
            OrganizerConfig::default(),
            providers,
            service(2),
            SimDuration::millis(1),
        );
        rt.run(SimTime(5_000_000));
        let formed: Vec<_> = rt
            .events()
            .iter()
            .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .collect();
        assert_eq!(formed.len(), 1, "events: {:?}", rt.events());
        if let NegoEvent::Formed { metrics, .. } = &formed[0].event {
            assert_eq!(metrics.outcomes.len(), 2);
            assert!(metrics.unassigned.is_empty());
            // Every winner offered the preferred quality (all nodes rich).
            for o in metrics.outcomes.values() {
                assert_eq!(o.distance, 0.0);
            }
        }
    }

    #[test]
    fn des_organizer_node_can_win_local_tasks() {
        // Only node 0 exists: the coalition must be the organizer itself.
        let sim = clustered_sim(1);
        let providers = vec![provider(0, 500.0)];
        let mut rt = single_organizer_scenario(
            sim,
            OrganizerConfig::default(),
            providers,
            service(1),
            SimDuration::millis(1),
        );
        rt.run(SimTime(5_000_000));
        let formed = rt
            .events()
            .iter()
            .find(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .expect("coalition should form locally");
        if let NegoEvent::Formed { metrics, .. } = &formed.event {
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].node, 0);
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].comm_cost, 0.0);
        }
    }

    #[test]
    fn des_no_capable_neighbours_yields_incomplete_formation() {
        let sim = clustered_sim(3);
        // All providers far too weak for even the most degraded level.
        let providers = (0..3).map(|i| provider(i, 0.5)).collect();
        let mut rt = single_organizer_scenario(
            sim,
            OrganizerConfig {
                max_rounds: 2,
                ..Default::default()
            },
            providers,
            service(1),
            SimDuration::millis(1),
        );
        rt.run(SimTime(5_000_000));
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::FormationIncomplete { .. })));
    }

    #[test]
    fn des_failure_during_operation_reconfigures_to_surviving_node() {
        let sim = clustered_sim(3);
        // Node 0 (the organizer) is too weak to offer preferred quality, so
        // a remote node wins; nodes 1 and 2 tie at distance 0 and equal
        // comm cost, and the lowest id (1) is selected. Node 2 is the
        // fallback after node 1 dies.
        let providers = vec![provider(0, 10.0), provider(1, 500.0), provider(2, 400.0)];
        let mut rt = single_organizer_scenario(
            sim,
            OrganizerConfig::default(),
            providers,
            service(1),
            SimDuration::millis(1),
        );
        // Kill node 1 after formation settles (~300 ms), then run long
        // enough for miss detection (3 × 500 ms) and reconfiguration.
        rt.sim_mut()
            .schedule_down(NodeId(1), SimDuration::millis(600));
        rt.run(SimTime(10_000_000));
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::MemberFailed { node: 1, .. })));
        let formed_events = rt
            .events()
            .iter()
            .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .count();
        assert!(formed_events >= 1);
    }

    #[test]
    fn des_deterministic_across_runs() {
        let run = || {
            let sim = clustered_sim(5);
            let providers = (0..5)
                .map(|i| provider(i, 100.0 + 50.0 * i as f64))
                .collect();
            let mut rt = single_organizer_scenario(
                sim,
                OrganizerConfig::default(),
                providers,
                service(3),
                SimDuration::millis(1),
            );
            rt.run(SimTime(5_000_000));
            (rt.events().to_vec(), rt.net_stats().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn direct_forms_same_coalition_as_des() {
        let cpus = [12.0, 60.0, 500.0];
        let mut rt = direct_runtime(&cpus);
        rt.submit(0, service(1), SimTime(1_000)).unwrap();
        rt.run(SimTime(5_000_000));
        let formed = rt
            .events()
            .iter()
            .find(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .expect("direct coalition");
        if let NegoEvent::Formed { metrics, .. } = &formed.event {
            // Node 0 cannot serve preferred quality; 1 and 2 tie at
            // distance 0 and the lowest id wins.
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].node, 1);
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].distance, 0.0);
        }
    }

    #[test]
    fn direct_is_deterministic() {
        let run = || {
            let mut rt = direct_runtime(&[30.0, 70.0, 200.0, 90.0]);
            rt.submit(0, service(2), SimTime(1_000)).unwrap();
            rt.run(SimTime(5_000_000));
            (rt.events().to_vec(), rt.messages_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn duplicate_registration_is_rejected_on_every_backend() {
        // Regression: SimHost silently overwrote engines registered under
        // a duplicate Pid, losing ledgers and negotiations.
        let mut direct = DirectRuntime::new();
        assert!(direct.add_node(CoalitionNode::new(7)).is_ok());
        assert_eq!(
            direct.add_node(CoalitionNode::new(7)),
            Err(RuntimeError::DuplicateNode(7))
        );

        let mut sim = Simulator::new(SimConfig::default());
        sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        let mut des = DesRuntime::new(sim);
        assert!(des.add_node(CoalitionNode::new(0)).is_ok());
        assert_eq!(
            des.add_node(CoalitionNode::new(0)),
            Err(RuntimeError::DuplicateNode(0))
        );

        let mut actor = ActorRuntime::new();
        assert!(actor.add_node(CoalitionNode::new(3)).is_ok());
        assert_eq!(
            actor.add_node(CoalitionNode::new(3)),
            Err(RuntimeError::DuplicateNode(3))
        );
        actor.shutdown();
    }

    #[test]
    fn unknown_node_submission_is_rejected() {
        let mut rt = DirectRuntime::new();
        assert_eq!(
            rt.submit(9, service(1), SimTime::ZERO),
            Err(RuntimeError::UnknownNode(9))
        );
        // A provider-only node would pop the kickoff and drop the service
        // on the floor; submit must refuse up front instead.
        rt.add_node(CoalitionNode::new(4).with_provider(provider(4, 100.0)))
            .unwrap();
        assert_eq!(
            rt.submit(4, service(1), SimTime::ZERO),
            Err(RuntimeError::NoOrganizer(4))
        );
        assert_eq!(
            rt.schedule_dissolve(
                NegoId {
                    organizer: 9,
                    seq: 0
                },
                SimTime::ZERO
            ),
            Err(RuntimeError::UnknownNode(9))
        );
    }

    #[test]
    fn out_of_order_submissions_start_in_kickoff_time_order() {
        // Regression: kickoff timers all look alike, so a service
        // submitted later but scheduled earlier must still be the one
        // the earlier timer starts. The one-task service kicks off at
        // t=1s, the two-task one at t=2s — submitted in reverse.
        let mut rt = direct_runtime(&[500.0, 400.0, 300.0]);
        rt.submit(0, service(2), SimTime(2_000_000)).unwrap();
        rt.submit(0, service(1), SimTime(1_000_000)).unwrap();
        rt.run(SimTime(10_000_000));
        let formed: Vec<_> = rt
            .events()
            .iter()
            .filter_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(formed.len(), 2, "events: {:?}", rt.events());
        assert_eq!(formed[0].started_at, Some(SimTime(1_000_000)));
        assert_eq!(
            formed[0].outcomes.len(),
            1,
            "t=1s starts the 1-task service"
        );
        assert_eq!(formed[1].started_at, Some(SimTime(2_000_000)));
        assert_eq!(
            formed[1].outcomes.len(),
            2,
            "t=2s starts the 2-task service"
        );
    }

    #[test]
    fn direct_dissolution_releases_resources() {
        let mut rt = direct_runtime(&[500.0, 400.0]);
        rt.submit(0, service(1), SimTime(1_000)).unwrap();
        rt.run(SimTime(1_000_000));
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::Formed { .. })));
        let nego = NegoId {
            organizer: 0,
            seq: 0,
        };
        rt.schedule_dissolve(nego, SimTime(1_500_000)).unwrap();
        rt.run(SimTime(3_000_000));
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::Dissolved { .. })));
    }

    #[test]
    fn actor_backend_forms_a_coalition() {
        let mut rt = ActorRuntime::new();
        for (i, cpu) in [12.0f64, 60.0, 500.0].iter().enumerate() {
            let id = i as Pid;
            let mut node = CoalitionNode::new(id).with_provider(provider(id, *cpu));
            if i == 0 {
                node = node.with_organizer(OrganizerEngine::new(id, OrganizerConfig::default()));
            }
            rt.add_node(node).unwrap();
        }
        rt.submit(0, service(1), SimTime(1_000)).unwrap();
        let settled = rt.run_until_settled(1, SimTime(15_000_000));
        assert_eq!(settled, 1, "live coalition should settle within 15 s");
        assert!(rt
            .events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::Formed { .. })));
        assert!(rt.messages_sent() > 0);
        rt.shutdown();
    }
}
