//! Negotiation outcome records and host-visible events.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use qosc_netsim::SimTime;
use qosc_spec::TaskId;

use crate::protocol::{NegoId, Pid};

/// Outcome of one task's allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Winning node.
    pub node: Pid,
    /// Eq. 2 distance of the winning proposal.
    pub distance: f64,
    /// Communication cost of the winning proposal (seconds).
    pub comm_cost: f64,
}

/// Running metrics of one negotiation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NegotiationMetrics {
    /// When the first CFP went out.
    pub started_at: Option<SimTime>,
    /// When the coalition entered operation (all accepts received).
    pub formed_at: Option<SimTime>,
    /// Distinct proposal bundles received (all rounds).
    pub proposal_bundles: u32,
    /// Awards sent (all rounds).
    pub awards_sent: u32,
    /// Declines received.
    pub declines: u32,
    /// Reconfiguration rounds triggered by member failure.
    pub reconfigurations: u32,
    /// Final per-task outcomes.
    pub outcomes: BTreeMap<TaskId, TaskOutcome>,
    /// Tasks that could not be placed.
    pub unassigned: Vec<TaskId>,
}

impl NegotiationMetrics {
    /// Mean distance over placed tasks (0 when none placed).
    pub fn mean_distance(&self) -> f64 {
        if self.outcomes.is_empty() {
            0.0
        } else {
            self.outcomes.values().map(|o| o.distance).sum::<f64>() / self.outcomes.len() as f64
        }
    }

    /// Distinct member count of the formed coalition.
    pub fn distinct_members(&self) -> usize {
        let mut nodes: Vec<Pid> = self.outcomes.values().map(|o| o.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes.len()
    }

    /// Formation latency, if the coalition formed.
    pub fn formation_latency(&self) -> Option<qosc_netsim::SimDuration> {
        match (self.started_at, self.formed_at) {
            (Some(s), Some(f)) => Some(f.since(s)),
            _ => None,
        }
    }
}

/// Events engines surface to their host (experiment harness, tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NegoEvent {
    /// Every task accepted; the coalition is operating.
    Formed {
        /// Negotiation.
        nego: NegoId,
        /// Final metrics snapshot.
        metrics: NegotiationMetrics,
    },
    /// Formation (or a reconfiguration round) left tasks unassigned.
    FormationIncomplete {
        /// Negotiation.
        nego: NegoId,
        /// Tasks without a home.
        unassigned: Vec<TaskId>,
        /// Metrics snapshot.
        metrics: NegotiationMetrics,
    },
    /// A member was declared failed; a reconfiguration round started.
    MemberFailed {
        /// Negotiation.
        nego: NegoId,
        /// The failed member.
        node: Pid,
        /// Tasks being re-auctioned.
        tasks: Vec<TaskId>,
    },
    /// The coalition was dissolved (normal termination).
    Dissolved {
        /// Negotiation.
        nego: NegoId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_distance_and_members() {
        let mut m = NegotiationMetrics::default();
        m.outcomes.insert(
            TaskId(0),
            TaskOutcome {
                node: 1,
                distance: 0.2,
                comm_cost: 0.0,
            },
        );
        m.outcomes.insert(
            TaskId(1),
            TaskOutcome {
                node: 1,
                distance: 0.4,
                comm_cost: 1.0,
            },
        );
        assert!((m.mean_distance() - 0.3).abs() < 1e-12);
        assert_eq!(m.distinct_members(), 1);
    }

    #[test]
    fn empty_metrics_are_benign() {
        let m = NegotiationMetrics::default();
        assert_eq!(m.mean_distance(), 0.0);
        assert_eq!(m.distinct_members(), 0);
        assert!(m.formation_latency().is_none());
    }

    #[test]
    fn formation_latency() {
        let m = NegotiationMetrics {
            started_at: Some(SimTime(1_000)),
            formed_at: Some(SimTime(5_000)),
            ..Default::default()
        };
        assert_eq!(
            m.formation_latency(),
            Some(qosc_netsim::SimDuration::micros(4_000))
        );
    }
}
