//! The negotiation wire protocol (paper §4.2).
//!
//! The paper's algorithm:
//!
//! 1. the Negotiation Organizer broadcasts the description of each service
//!    and the user's preferences — [`Msg::CallForProposals`];
//! 2. each QoS Provider contacts its Resource Managers and replies with a
//!    multi-attribute proposal — [`Msg::Proposal`];
//! 3. the Organizer evaluates all proposals and selects the best utility —
//!    [`Msg::Award`] / [`Msg::Accept`] / [`Msg::Decline`];
//! 4. relevant data for task execution is sent to the winning node —
//!    modelled by the task's payload sizes, which drive the
//!    communication-cost tie-break.
//!
//! Operation-phase monitoring ([`Msg::Heartbeat`]) and dissolution
//! ([`Msg::Release`]) extend the formation protocol to the full coalition
//! life cycle of §4.
//!
//! Engines are sans-IO: they consume [`Msg`]s and emit [`Action`]s; the DES
//! glue and the live actor glue translate actions into their transports.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use qosc_netsim::SimDuration;
use qosc_resources::ResourceVector;
use qosc_spec::{QosSpec, ServiceRequest, TaskId, Value};

/// Node identifier shared by both transports (maps 1:1 onto
/// `qosc_netsim::NodeId` and onto `qosc_actors::Directory` keys).
pub type Pid = u32;

/// Globally unique negotiation identifier: the organizer node plus its
/// per-organizer sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NegoId {
    /// Organizer node.
    pub organizer: Pid,
    /// Per-organizer sequence number.
    pub seq: u32,
}

impl std::fmt::Display for NegoId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "nego({}/{})", self.organizer, self.seq)
    }
}

/// One task inside a Call-for-Proposals: the full application spec and the
/// user's preference-ordered request, plus payload sizes (the "relevant
/// data for task execution" whose shipping cost the tie-break weighs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskAnnouncement {
    /// Task being solicited.
    pub task: TaskId,
    /// The application's QoS spec (§3).
    pub spec: QosSpec,
    /// The user's request (§3.1).
    pub request: ServiceRequest,
    /// Input payload the winner must receive.
    pub input_bytes: u64,
    /// Output payload the winner must ship back.
    pub output_bytes: u64,
}

/// One provider's offer for one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskProposal {
    /// Task the offer is for.
    pub task: TaskId,
    /// Offered value per requested attribute, in the request's
    /// `iter_attrs` order — the multi-attribute proposal of §4.2.
    pub offered: Vec<Value>,
    /// Same offer as ladder level indexes (saves the organizer a lookup).
    pub levels: Vec<usize>,
    /// Resources the provider has tentatively reserved for this offer.
    pub demand: ResourceVector,
    /// Bandwidth the provider can devote to shipping this task's payloads
    /// (kbit/s); the organizer derives the communication cost from it.
    pub link_kbps: f64,
    /// The provider's local reward (eq. 1) at the offered levels —
    /// diagnostic, not used for selection (selection is user-utility side).
    pub reward: f64,
}

/// Protocol messages. Delivery is zero-copy: engines emit messages into
/// [`Action`]s as `Arc<Msg>`, and every backend fans a broadcast out by
/// cloning the pointer — one payload allocation regardless of recipient
/// count. (`Clone` is kept for building fixtures and re-announcing tasks,
/// never used on a delivery path.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Msg {
    /// Step 1: organizer broadcasts service description + preferences.
    CallForProposals {
        /// Negotiation this CFP belongs to.
        nego: NegoId,
        /// Tasks being solicited (a reconfiguration round re-announces
        /// only the affected tasks).
        tasks: Vec<TaskAnnouncement>,
        /// Formation round: 0 for the initial CFP, >0 for reconfigurations.
        round: u32,
    },
    /// Step 2: a provider's multi-attribute proposals.
    Proposal {
        /// Negotiation.
        nego: NegoId,
        /// Proposing node.
        from: Pid,
        /// One entry per task the provider can serve.
        proposals: Vec<TaskProposal>,
    },
    /// Step 3: the organizer awards a task to the best proposal.
    Award {
        /// Negotiation.
        nego: NegoId,
        /// Task awarded.
        task: TaskId,
        /// Round the award was struck in; the winner echoes it so the
        /// organizer can discard answers to superseded awards (a
        /// partition can strand a round-`r` accept in flight while a
        /// re-announce has already moved the negotiation to round `r+1`).
        round: u32,
    },
    /// Winner confirms it committed its reservation.
    Accept {
        /// Negotiation.
        nego: NegoId,
        /// Task accepted.
        task: TaskId,
        /// Accepting node.
        from: Pid,
        /// Round of the award being answered.
        round: u32,
    },
    /// Winner could no longer honour the offer (e.g. holds expired).
    Decline {
        /// Negotiation.
        nego: NegoId,
        /// Task declined.
        task: TaskId,
        /// Declining node.
        from: Pid,
        /// Round of the award being answered.
        round: u32,
    },
    /// Operation phase: periodic liveness signal from a member.
    Heartbeat {
        /// Negotiation.
        nego: NegoId,
        /// Task the member executes.
        task: TaskId,
        /// Member node.
        from: Pid,
    },
    /// Dissolution: members release their committed resources.
    Release {
        /// Negotiation being dissolved.
        nego: NegoId,
    },
    /// Operation phase: the organizer renews its members' commit leases
    /// (only sent when lease renewal is enabled; see
    /// `OrganizerConfig::renew_leases`). Providers running with a commit
    /// TTL release commitments whose lease lapses — the backstop that
    /// frees capacity trapped behind a partition that never heals.
    LeaseRenew {
        /// Negotiation whose leases are renewed.
        nego: NegoId,
    },
}

impl Msg {
    /// Rough wire size, used by the latency model. Derived from the
    /// structural size of what a compact binary encoding would ship; the
    /// absolute constants only need to be consistent across experiments.
    pub fn estimated_bytes(&self) -> u64 {
        match self {
            Msg::CallForProposals { tasks, .. } => {
                // Spec + request dominate; ~300 B per task announcement.
                64 + 300 * tasks.len() as u64
            }
            Msg::Proposal { proposals, .. } => 48 + 64 * proposals.len() as u64,
            Msg::Award { .. } => 36,
            Msg::Accept { .. } | Msg::Decline { .. } => 36,
            Msg::Heartbeat { .. } => 24,
            Msg::Release { .. } => 24,
            Msg::LeaseRenew { .. } => 24,
        }
    }
}

/// Timer kinds multiplexed over the transports' integer timer tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerKind {
    /// Organizer: stop collecting proposals and evaluate.
    ProposalDeadline,
    /// Organizer: winners that have not accepted are treated as declined.
    AwardDeadline,
    /// Organizer: check member heartbeats.
    HeartbeatCheck,
    /// Provider: send the next heartbeat.
    HeartbeatSend,
    /// Provider: garbage-collect expired tentative holds.
    HoldExpiry,
    /// Host bootstrap: start the next queued service at this node.
    Kickoff,
    /// Host request: dissolve the identified negotiation (organizer side).
    Dissolve,
    /// Organizer: backed-off re-announce of the still-open tasks fires
    /// (armed by the `TimeoutBackoff` strategy component after a round
    /// settles with open tasks).
    ReAnnounce,
    /// Provider: check committed-reservation leases and release the
    /// expired ones (armed while a commit TTL is configured).
    LeaseCheck,
}

impl TimerKind {
    const fn code(self) -> u64 {
        match self {
            TimerKind::ProposalDeadline => 0,
            TimerKind::AwardDeadline => 1,
            TimerKind::HeartbeatCheck => 2,
            TimerKind::HeartbeatSend => 3,
            TimerKind::HoldExpiry => 4,
            TimerKind::Kickoff => 5,
            TimerKind::Dissolve => 6,
            TimerKind::ReAnnounce => 7,
            TimerKind::LeaseCheck => 8,
        }
    }

    fn from_code(c: u64) -> Option<Self> {
        Some(match c {
            0 => TimerKind::ProposalDeadline,
            1 => TimerKind::AwardDeadline,
            2 => TimerKind::HeartbeatCheck,
            3 => TimerKind::HeartbeatSend,
            4 => TimerKind::HoldExpiry,
            5 => TimerKind::Kickoff,
            6 => TimerKind::Dissolve,
            7 => TimerKind::ReAnnounce,
            8 => TimerKind::LeaseCheck,
            _ => return None,
        })
    }
}

/// Encodes `(nego, kind)` into the transports' `u64` timer token:
/// organizer pid in bits 40.., sequence in bits 8..40, kind in bits 0..8.
/// Organizer pids must fit 24 bits (≤ 16M nodes — far beyond any run).
pub fn encode_timer(nego: NegoId, kind: TimerKind) -> u64 {
    debug_assert!(nego.organizer < (1 << 24));
    ((nego.organizer as u64) << 40) | ((nego.seq as u64) << 8) | kind.code()
}

/// Decodes a timer token produced by [`encode_timer`].
pub fn decode_timer(token: u64) -> Option<(NegoId, TimerKind)> {
    let kind = TimerKind::from_code(token & 0xFF)?;
    let seq = ((token >> 8) & 0xFFFF_FFFF) as u32;
    let organizer = (token >> 40) as u32;
    Some((NegoId { organizer, seq }, kind))
}

/// What an engine wants its transport to do.
///
/// Message-bearing actions hold their payload behind [`Arc`] so the
/// backends can route and fan it out without ever cloning the [`Msg`]
/// itself; construct them with [`Action::broadcast`] / [`Action::send`].
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// One-hop broadcast from this node.
    Broadcast(Arc<Msg>),
    /// Unicast to a peer.
    Send {
        /// Destination node.
        to: Pid,
        /// Payload.
        msg: Arc<Msg>,
    },
    /// Arm a one-shot timer at this node.
    Timer {
        /// Delay from now.
        delay: SimDuration,
        /// Encoded `(nego, kind)` token.
        token: u64,
    },
    /// Surface a negotiation event to the host (metrics, assertions).
    Event(crate::metrics::NegoEvent),
}

impl Action {
    /// Wraps `msg` for a one-hop broadcast (the payload's single
    /// allocation — every recipient shares it).
    pub fn broadcast(msg: Msg) -> Self {
        Action::Broadcast(Arc::new(msg))
    }

    /// Wraps `msg` for a unicast to `to`.
    pub fn send(to: Pid, msg: Msg) -> Self {
        Action::Send {
            to,
            msg: Arc::new(msg),
        }
    }

    /// The wire payload this action carries, if any.
    pub fn payload(&self) -> Option<&Msg> {
        match self {
            Action::Broadcast(msg) => Some(msg),
            Action::Send { msg, .. } => Some(msg),
            Action::Timer { .. } | Action::Event(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_token_roundtrip() {
        let nego = NegoId {
            organizer: 7,
            seq: 123_456,
        };
        for kind in [
            TimerKind::ProposalDeadline,
            TimerKind::AwardDeadline,
            TimerKind::HeartbeatCheck,
            TimerKind::HeartbeatSend,
            TimerKind::HoldExpiry,
            TimerKind::Kickoff,
            TimerKind::Dissolve,
            TimerKind::ReAnnounce,
            TimerKind::LeaseCheck,
        ] {
            let token = encode_timer(nego, kind);
            assert_eq!(decode_timer(token), Some((nego, kind)));
        }
    }

    #[test]
    fn timer_tokens_are_distinct_across_negotiations() {
        let a = encode_timer(
            NegoId {
                organizer: 1,
                seq: 0,
            },
            TimerKind::ProposalDeadline,
        );
        let b = encode_timer(
            NegoId {
                organizer: 2,
                seq: 0,
            },
            TimerKind::ProposalDeadline,
        );
        let c = encode_timer(
            NegoId {
                organizer: 1,
                seq: 1,
            },
            TimerKind::ProposalDeadline,
        );
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_kind_decodes_to_none() {
        assert_eq!(decode_timer(0xFE), None);
    }

    #[test]
    fn message_sizes_scale_with_content() {
        let nego = NegoId {
            organizer: 0,
            seq: 0,
        };
        let cfp1 = Msg::CallForProposals {
            nego,
            tasks: vec![announcement(0)],
            round: 0,
        };
        let cfp2 = Msg::CallForProposals {
            nego,
            tasks: vec![announcement(0), announcement(1)],
            round: 0,
        };
        assert!(cfp2.estimated_bytes() > cfp1.estimated_bytes());
        assert!(
            Msg::Heartbeat {
                nego,
                task: TaskId(0),
                from: 0
            }
            .estimated_bytes()
                < cfp1.estimated_bytes()
        );
    }

    fn announcement(i: u32) -> TaskAnnouncement {
        TaskAnnouncement {
            task: TaskId(i),
            spec: qosc_spec::catalog::av_spec(),
            request: qosc_spec::catalog::surveillance_request(),
            input_bytes: 1000,
            output_bytes: 100,
        }
    }
}
