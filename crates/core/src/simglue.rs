//! Glue between the sans-IO engines and the `qosc-netsim` DES.
//!
//! [`SimHost`] owns one [`OrganizerEngine`] and/or one [`ProviderEngine`]
//! per simulated node and implements [`NetApp`] by routing messages to the
//! right engine and translating [`Action`]s into simulator commands.
//!
//! One transport-level subtlety lives here: a radio broadcast does not
//! reach its own sender, but the paper explicitly allows the organizer's
//! node to join the coalition ("may include the node that starts the
//! negotiation"). The glue therefore hands every locally originated CFP to
//! the local provider synchronously; its proposal then travels through the
//! normal (zero-distance) unicast path so message accounting stays honest.

use std::collections::{HashMap, VecDeque};

use qosc_netsim::{Ctx, NetApp, NodeId, SimDuration, SimTime};
use qosc_spec::ServiceDef;

use crate::metrics::NegoEvent;
use crate::organizer::OrganizerEngine;
use crate::protocol::{decode_timer, encode_timer, Action, Msg, NegoId, Pid, TimerKind};
use crate::provider::ProviderEngine;

/// Per-run event log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LoggedEvent {
    /// When the event surfaced.
    pub at: SimTime,
    /// The node whose engine emitted it.
    pub node: Pid,
    /// The event.
    pub event: NegoEvent,
}

/// Hosts the coalition engines inside a [`qosc_netsim::Simulator`].
#[derive(Default)]
pub struct SimHost {
    organizers: HashMap<Pid, OrganizerEngine>,
    providers: HashMap<Pid, ProviderEngine>,
    pending: HashMap<Pid, VecDeque<ServiceDef>>,
    /// Everything the engines reported, in emission order.
    pub events: Vec<LoggedEvent>,
}

impl SimHost {
    /// Creates an empty host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs an organizer engine on a node.
    pub fn add_organizer(&mut self, engine: OrganizerEngine) {
        self.organizers.insert(engine.id(), engine);
    }

    /// Installs a provider engine on a node.
    pub fn add_provider(&mut self, engine: ProviderEngine) {
        self.providers.insert(engine.id(), engine);
    }

    /// Organizer of a node, if installed.
    pub fn organizer(&self, node: Pid) -> Option<&OrganizerEngine> {
        self.organizers.get(&node)
    }

    /// Provider of a node, if installed.
    pub fn provider(&self, node: Pid) -> Option<&ProviderEngine> {
        self.providers.get(&node)
    }

    /// Queues a service to be started by `node` when its kickoff timer
    /// fires. Use [`kickoff_token`] to schedule that timer.
    pub fn queue_service(&mut self, node: Pid, service: ServiceDef) {
        self.pending.entry(node).or_default().push_back(service);
    }

    /// Events of a given negotiation.
    pub fn events_for(&self, nego: NegoId) -> Vec<&LoggedEvent> {
        self.events
            .iter()
            .filter(|e| match &e.event {
                NegoEvent::Formed { nego: n, .. }
                | NegoEvent::FormationIncomplete { nego: n, .. }
                | NegoEvent::MemberFailed { nego: n, .. }
                | NegoEvent::Dissolved { nego: n } => *n == nego,
            })
            .collect()
    }

    fn apply(&mut self, ctx: &mut Ctx<'_, Msg>, at: Pid, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    let bytes = msg.estimated_bytes();
                    // Feed locally originated CFPs to the local provider —
                    // the radio never echoes a broadcast to its sender.
                    if matches!(msg, Msg::CallForProposals { .. }) {
                        if let Some(p) = self.providers.get_mut(&at) {
                            let local = p.on_message(ctx.now, at, &msg);
                            self.apply(ctx, at, local);
                        }
                    }
                    ctx.broadcast(NodeId(at), bytes, msg);
                }
                Action::Send { to, msg } => {
                    let bytes = msg.estimated_bytes();
                    ctx.unicast(NodeId(at), NodeId(to), bytes, msg);
                }
                Action::Timer { delay, token } => {
                    ctx.timer(NodeId(at), delay, token);
                }
                Action::Event(event) => {
                    self.events.push(LoggedEvent {
                        at: ctx.now,
                        node: at,
                        event,
                    });
                }
            }
        }
    }

    fn start_next_service(&mut self, ctx: &mut Ctx<'_, Msg>, at: Pid) {
        let Some(service) = self.pending.get_mut(&at).and_then(VecDeque::pop_front) else {
            return;
        };
        let Some(org) = self.organizers.get_mut(&at) else {
            return;
        };
        match org.start_service(ctx.now, &service) {
            Ok((_nego, actions)) => self.apply(ctx, at, actions),
            Err(e) => {
                // An invalid request is a host programming error; surface
                // loudly in tests without crashing long experiment sweeps.
                eprintln!("node {at}: service `{}` rejected: {e}", service.name);
            }
        }
    }
}

/// Timer token that triggers "start the next queued service" at a node.
pub fn kickoff_token(node: Pid) -> u64 {
    encode_timer(
        NegoId {
            organizer: node,
            seq: 0,
        },
        TimerKind::Kickoff,
    )
}

/// Timer token that dissolves `nego` at its organizer when it fires —
/// schedule it with `Simulator::schedule_timer` on the organizer node.
pub fn dissolve_token(nego: NegoId) -> u64 {
    encode_timer(nego, TimerKind::Dissolve)
}

impl NetApp<Msg> for SimHost {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, from: NodeId, msg: &Msg) {
        let at = at.0;
        let from = from.0;
        let actions = match msg {
            Msg::CallForProposals { .. } | Msg::Award { .. } | Msg::Release { .. } => self
                .providers
                .get_mut(&at)
                .map(|p| p.on_message(ctx.now, from, msg)),
            Msg::Proposal { .. }
            | Msg::Accept { .. }
            | Msg::Decline { .. }
            | Msg::Heartbeat { .. } => self
                .organizers
                .get_mut(&at)
                .map(|o| o.on_message(ctx.now, from, msg)),
        };
        if let Some(actions) = actions {
            self.apply(ctx, at, actions);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, at: NodeId, token: u64) {
        let at = at.0;
        let Some((nego, kind)) = decode_timer(token) else {
            return;
        };
        match kind {
            TimerKind::Kickoff => self.start_next_service(ctx, at),
            TimerKind::Dissolve => {
                if let Some(o) = self.organizers.get_mut(&at) {
                    let actions = o.dissolve(nego);
                    self.apply(ctx, at, actions);
                }
            }
            TimerKind::ProposalDeadline | TimerKind::AwardDeadline | TimerKind::HeartbeatCheck => {
                if let Some(o) = self.organizers.get_mut(&at) {
                    let actions = o.on_timer(ctx.now, nego, kind);
                    self.apply(ctx, at, actions);
                }
            }
            TimerKind::HeartbeatSend | TimerKind::HoldExpiry => {
                if let Some(p) = self.providers.get_mut(&at) {
                    let actions = p.on_timer(ctx.now, nego, kind);
                    self.apply(ctx, at, actions);
                }
            }
        }
    }
}

/// Convenience: builds a simulation where node 0 is the organizer (and a
/// provider) and nodes `1..n` are providers, all static within radio range,
/// with the given capacities. Returns the simulator and host, with the
/// service queued at node 0 and its kickoff scheduled at `start`.
///
/// This is the canonical harness used by tests and several experiments;
/// richer topologies build [`SimHost`] directly.
pub fn single_organizer_scenario(
    mut sim: qosc_netsim::Simulator<Msg>,
    organizer_config: crate::organizer::OrganizerConfig,
    providers: Vec<ProviderEngine>,
    service: ServiceDef,
    start: SimDuration,
) -> (qosc_netsim::Simulator<Msg>, SimHost) {
    let mut host = SimHost::new();
    host.add_organizer(OrganizerEngine::new(0, organizer_config));
    for p in providers {
        host.add_provider(p);
    }
    host.queue_service(0, service);
    sim.schedule_timer(NodeId(0), start, kickoff_token(0));
    (sim, host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::organizer::OrganizerConfig;
    use crate::provider::{ProviderConfig, ProviderEngine};
    use qosc_netsim::{Area, Mobility, Point, SimConfig, Simulator};
    use qosc_resources::{av_demand_model, ResourceVector};
    use qosc_spec::{catalog, TaskDef};
    use std::sync::Arc;

    fn provider(id: Pid, cpu: f64) -> ProviderEngine {
        let mut p = ProviderEngine::new(
            id,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
            ProviderConfig::default(),
        );
        let spec = catalog::av_spec();
        p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
        p
    }

    fn service(tasks: usize) -> ServiceDef {
        ServiceDef::new(
            "svc",
            (0..tasks)
                .map(|i| TaskDef {
                    name: format!("t{i}"),
                    spec: catalog::av_spec(),
                    request: catalog::surveillance_request(),
                    input_bytes: 100_000,
                    output_bytes: 10_000,
                })
                .collect(),
        )
    }

    fn clustered_sim(n: usize) -> Simulator<Msg> {
        let mut sim = Simulator::new(SimConfig {
            area: Area::new(100.0, 100.0),
            seed: 42,
            ..Default::default()
        });
        for i in 0..n {
            // All nodes within a 30 m cluster; default range is 50 m.
            let angle = i as f64;
            sim.add_node(
                Point::new(50.0 + 10.0 * angle.cos(), 50.0 + 10.0 * angle.sin()),
                Mobility::Static,
            );
        }
        sim
    }

    #[test]
    fn end_to_end_formation_in_simulation() {
        let sim = clustered_sim(4);
        let providers = (0..4)
            .map(|i| provider(i, 200.0 + 100.0 * i as f64))
            .collect();
        let (mut sim, mut host) = single_organizer_scenario(
            sim,
            OrganizerConfig::default(),
            providers,
            service(2),
            SimDuration::millis(1),
        );
        sim.run_until(&mut host, SimTime(5_000_000));
        let formed: Vec<_> = host
            .events
            .iter()
            .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .collect();
        assert_eq!(formed.len(), 1, "events: {:?}", host.events);
        if let NegoEvent::Formed { metrics, .. } = &formed[0].event {
            assert_eq!(metrics.outcomes.len(), 2);
            assert!(metrics.unassigned.is_empty());
            // Every winner offered the preferred quality (all nodes rich).
            for o in metrics.outcomes.values() {
                assert_eq!(o.distance, 0.0);
            }
        }
    }

    #[test]
    fn organizer_node_can_win_local_tasks() {
        // Only node 0 exists: the coalition must be the organizer itself.
        let sim = clustered_sim(1);
        let providers = vec![provider(0, 500.0)];
        let (mut sim, mut host) = single_organizer_scenario(
            sim,
            OrganizerConfig::default(),
            providers,
            service(1),
            SimDuration::millis(1),
        );
        sim.run_until(&mut host, SimTime(5_000_000));
        let formed = host
            .events
            .iter()
            .find(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .expect("coalition should form locally");
        if let NegoEvent::Formed { metrics, .. } = &formed.event {
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].node, 0);
            assert_eq!(metrics.outcomes[&qosc_spec::TaskId(0)].comm_cost, 0.0);
        }
    }

    #[test]
    fn no_capable_neighbours_yields_incomplete_formation() {
        let sim = clustered_sim(3);
        // All providers far too weak for even the most degraded level.
        let providers = (0..3).map(|i| provider(i, 0.5)).collect();
        let (mut sim, mut host) = single_organizer_scenario(
            sim,
            OrganizerConfig {
                max_rounds: 2,
                ..Default::default()
            },
            providers,
            service(1),
            SimDuration::millis(1),
        );
        sim.run_until(&mut host, SimTime(5_000_000));
        assert!(host
            .events
            .iter()
            .any(|e| matches!(e.event, NegoEvent::FormationIncomplete { .. })));
    }

    #[test]
    fn failure_during_operation_reconfigures_to_surviving_node() {
        let sim = clustered_sim(3);
        // Node 0 (the organizer) is too weak to offer preferred quality, so
        // a remote node wins; nodes 1 and 2 tie at distance 0 and equal
        // comm cost, and the lowest id (1) is selected. Node 2 is the
        // fallback after node 1 dies.
        let providers = vec![provider(0, 10.0), provider(1, 500.0), provider(2, 400.0)];
        let mut sim2 = sim;
        let (ref mut simr, mut host) = {
            let (s, h) = single_organizer_scenario(
                std::mem::replace(&mut sim2, Simulator::new(SimConfig::default())),
                OrganizerConfig::default(),
                providers,
                service(1),
                SimDuration::millis(1),
            );
            (s, h)
        };
        // Kill node 1 after formation settles (~300 ms), then run long
        // enough for miss detection (3 × 500 ms) and reconfiguration.
        simr.schedule_down(NodeId(1), SimDuration::millis(600));
        simr.run_until(&mut host, SimTime(10_000_000));
        assert!(host
            .events
            .iter()
            .any(|e| matches!(e.event, NegoEvent::MemberFailed { node: 1, .. })));
        // The task must have been re-awarded to a surviving node.
        let org = host.organizer(0).unwrap();
        let formed_events = host
            .events
            .iter()
            .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
            .count();
        assert!(formed_events >= 1);
        let _ = org;
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let sim = clustered_sim(5);
            let providers = (0..5)
                .map(|i| provider(i, 100.0 + 50.0 * i as f64))
                .collect();
            let (mut sim, mut host) = single_organizer_scenario(
                sim,
                OrganizerConfig::default(),
                providers,
                service(3),
                SimDuration::millis(1),
            );
            sim.run_until(&mut host, SimTime(5_000_000));
            (host.events.len(), sim.stats().clone())
        };
        assert_eq!(run(), run());
    }
}
