//! Local proposal formulation (paper §5).
//!
//! When a Call-for-Proposals arrives, the QoS Provider runs "a local QoS
//! optimization heuristic" (after Abdelzaher et al. [1]):
//!
//! 1. start with the user's preferred values for every QoS dimension;
//! 2. while the set of tasks is not schedulable: for each task receiving
//!    service at level `Q_kj < Q_kn`, determine the decrease in *local
//!    reward* from degrading attribute `j` to `j+1`, then degrade the
//!    task/attribute whose decrease is minimal.
//!
//! The local reward is eq. 1:
//!
//! ```text
//! r = n                      if every attribute is served at Q_k1
//!   = n − Σ_j penalty_j      otherwise
//! ```
//!
//! "penalty … can be defined according to user's own criteria and its value
//! increases with the distance from user's preferred value" — so the
//! penalty is a pluggable [`RewardModel`]; [`LinearPenalty`] (default)
//! makes the penalty the rank-weighted normalised ladder distance, and
//! [`QuadraticPenalty`] penalises deep degradation superlinearly (an
//! ablation point: quadratic penalties spread degradation across
//! attributes instead of sacrificing one).
//!
//! Beyond the paper's letter we also enforce the spec's inter-attribute
//! dependencies (§3's `Deps`, which §4.2 requires the negotiation to
//! honour): a configuration is acceptable only if it is schedulable *and*
//! dependency-consistent.

use qosc_resources::{AdmissionControl, DemandModel, ResourceVector};
use qosc_spec::{QosSpec, ResolvedRequest};

use crate::evaluation::WeightScheme;

/// Pluggable penalty of eq. 1.
pub trait RewardModel: Send + Sync {
    /// Penalty of serving one attribute at ladder level `level` (0 =
    /// preferred) out of `ladder_len` levels, where the attribute has
    /// 0-based rank `attr_rank` of `attr_count` inside a dimension of
    /// 0-based rank `dim_rank` of `dim_count`.
    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64;
}

/// Penalty = `w_k · w_i · level/(len−1)` — linear in ladder distance,
/// discounted by the user's importance ranks so degrading what the user
/// cares least about costs least reward.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearPenalty {
    /// Rank weighting (shared with the evaluator for symmetry).
    pub weights: WeightScheme,
}

impl RewardModel for LinearPenalty {
    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64 {
        if ladder_len <= 1 {
            return 0.0;
        }
        let frac = level as f64 / (ladder_len - 1) as f64;
        self.weights.weight(dim_rank, dim_count) * self.weights.weight(attr_rank, attr_count) * frac
    }
}

/// Penalty = `w_k · w_i · (level/(len−1))²` — shallow degradation is nearly
/// free, deep degradation expensive, so the heuristic spreads cuts.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadraticPenalty {
    /// Rank weighting.
    pub weights: WeightScheme,
}

impl RewardModel for QuadraticPenalty {
    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64 {
        if ladder_len <= 1 {
            return 0.0;
        }
        let frac = level as f64 / (ladder_len - 1) as f64;
        self.weights.weight(dim_rank, dim_count)
            * self.weights.weight(attr_rank, attr_count)
            * frac
            * frac
    }
}

/// Eq. 1 for one task: `n − Σ penalty`, where `n` is the number of
/// requested attributes (so `r = n` exactly when everything sits at the
/// preferred level).
pub fn local_reward(request: &ResolvedRequest, levels: &[usize], model: &dyn RewardModel) -> f64 {
    let n = request.attr_count() as f64;
    let dim_count = request.dim_count();
    let mut penalty_sum = 0.0;
    for (((k, i), pref), &lvl) in request.iter_attrs().zip(levels.iter()) {
        if lvl > 0 {
            let attr_count = request.dimensions[k].attributes.len();
            penalty_sum += model.penalty(k, dim_count, i, attr_count, lvl, pref.levels.len());
        }
    }
    n - penalty_sum
}

/// Per-task compiled penalty ladders: `rows[flat][lvl]` caches
/// [`RewardModel::penalty`] for every requested attribute and ladder
/// level. The degradation loop of [`formulate`] probes candidate steps
/// thousands of times over the same `(rank, level)` grid; compiling the
/// grid once per task shares the rank-weight products with the whole run
/// instead of re-deriving them (twice!) per probed candidate.
struct PenaltyTable {
    /// `rows[flat][lvl]` = penalty of serving attribute `flat` at `lvl`.
    rows: Vec<Vec<f64>>,
    /// Number of requested attributes (eq. 1's `n`).
    attr_count: usize,
}

impl PenaltyTable {
    fn new(request: &ResolvedRequest, model: &dyn RewardModel) -> Self {
        let dim_count = request.dim_count();
        let rows = request
            .iter_attrs()
            .map(|((k, i), pref)| {
                let attr_count = request.dimensions[k].attributes.len();
                let len = pref.levels.len();
                (0..len)
                    .map(|lvl| model.penalty(k, dim_count, i, attr_count, lvl, len))
                    .collect()
            })
            .collect();
        Self {
            rows,
            attr_count: request.attr_count(),
        }
    }

    /// Eq. 1 over the cached grid — identical to [`local_reward`].
    fn reward(&self, levels: &[usize]) -> f64 {
        let mut penalty_sum = 0.0;
        for (row, &lvl) in self.rows.iter().zip(levels.iter()) {
            if lvl > 0 {
                penalty_sum += row[lvl];
            }
        }
        self.attr_count as f64 - penalty_sum
    }
}

/// One task to formulate for: its spec, resolved request and demand model.
pub struct TaskInput<'a> {
    /// Application QoS spec.
    pub spec: &'a QosSpec,
    /// The user's resolved request.
    pub request: &'a ResolvedRequest,
    /// The a-priori quality→resource analysis.
    pub demand: &'a dyn DemandModel,
}

/// Successful formulation: per-task ladder levels, per-task demands, and
/// the total local reward (Σ eq. 1 over tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct Formulated {
    /// Level index per requested attribute, per task.
    pub levels: Vec<Vec<usize>>,
    /// Resource demand per task at the chosen levels.
    pub demands: Vec<ResourceVector>,
    /// Total local reward.
    pub reward: f64,
    /// Number of degradation steps taken.
    pub degradations: u32,
}

/// Why formulation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormulationError {
    /// Even with every attribute at its least-preferred acceptable level
    /// the task set is not schedulable (or dependency-consistent) here.
    Infeasible,
}

impl std::fmt::Display for FormulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormulationError::Infeasible => {
                write!(f, "no acceptable quality level fits this node's resources")
            }
        }
    }
}

impl std::error::Error for FormulationError {}

/// Runs the §5 heuristic over a set of tasks against one node's admission
/// control. Pure: resource *reservation* is the caller's job (the provider
/// engine prepares holds for the returned demands).
pub fn formulate(
    tasks: &[TaskInput<'_>],
    admission: &AdmissionControl,
    reward_model: &dyn RewardModel,
) -> Result<Formulated, FormulationError> {
    // Step 1: preferred values everywhere.
    let mut levels: Vec<Vec<usize>> = tasks
        .iter()
        .map(|t| vec![0usize; t.request.attr_count()])
        .collect();
    let tables: Vec<PenaltyTable> = tasks
        .iter()
        .map(|t| PenaltyTable::new(t.request, reward_model))
        .collect();
    let mut degradations = 0u32;

    // Incremental state: a degradation step only changes one task's
    // quality vector, so only that task's demand and dependency status is
    // recomputed per iteration (keeps joint formulation of large task sets
    // linear in the number of degradation steps, not quadratic).
    let eval_task = |ti: usize, lv: &[usize]| {
        let t = &tasks[ti];
        let qv = t
            .request
            .quality_vector(t.spec, lv)
            .expect("levels are kept within ladder bounds");
        let ok = qv.satisfies_dependencies(t.spec);
        (t.demand.demand(t.spec, &qv), ok)
    };
    let mut demands: Vec<ResourceVector> = Vec::with_capacity(tasks.len());
    let mut deps_ok_v: Vec<bool> = Vec::with_capacity(tasks.len());
    let mut total = ResourceVector::ZERO;
    for (ti, lv) in levels.iter().enumerate() {
        let (d, ok) = eval_task(ti, lv);
        total += d;
        demands.push(d);
        deps_ok_v.push(ok);
    }

    loop {
        // Acceptance test: schedulable AND dependency-consistent.
        let deps_ok = deps_ok_v.iter().all(|&x| x);
        if deps_ok && admission.schedulable_total(&total, tasks.len()) {
            let reward = tables
                .iter()
                .zip(levels.iter())
                .map(|(t, lv)| t.reward(lv))
                .sum();
            return Ok(Formulated {
                levels,
                demands,
                reward,
                degradations,
            });
        }

        // Step 2: find the (task, attribute) whose one-step degradation
        // loses the least reward, probing the compiled penalty grid.
        let mut best: Option<(usize, usize, f64)> = None; // (task, flat attr, decrease)
        for (ti, table) in tables.iter().enumerate() {
            for (flat, row) in table.rows.iter().enumerate() {
                let lvl = levels[ti][flat];
                if lvl + 1 >= row.len() {
                    continue; // already at Q_kn
                }
                let decrease = row[lvl + 1] - row[lvl];
                let better = match best {
                    None => true,
                    Some((_, _, d)) => decrease < d - 1e-15,
                };
                if better {
                    best = Some((ti, flat, decrease));
                }
            }
        }
        match best {
            Some((ti, flat, _)) => {
                levels[ti][flat] += 1;
                degradations += 1;
                total -= demands[ti];
                let (d, ok) = eval_task(ti, &levels[ti]);
                total += d;
                demands[ti] = d;
                deps_ok_v[ti] = ok;
            }
            None => return Err(FormulationError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_resources::{av_demand_model, ResourceKind, SchedulingPolicy};
    use qosc_spec::catalog;

    fn setup() -> (qosc_spec::QosSpec, ResolvedRequest) {
        let spec = catalog::av_spec();
        let req = catalog::video_conference_request().resolve(&spec).unwrap();
        (spec, req)
    }

    fn admission(cpu: f64) -> AdmissionControl {
        AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        )
    }

    #[test]
    fn reward_is_n_at_preferred_levels() {
        let (_spec, req) = setup();
        let model = LinearPenalty::default();
        let r = local_reward(&req, &[0, 0, 0, 0], &model);
        assert_eq!(r, 4.0);
    }

    #[test]
    fn reward_decreases_monotonically_with_degradation() {
        let (_spec, req) = setup();
        let model = LinearPenalty::default();
        let mut prev = local_reward(&req, &[0, 0, 0, 0], &model);
        for lvl in 1..req.ladder_lengths()[0] {
            let r = local_reward(&req, &[lvl, 0, 0, 0], &model);
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn rich_node_serves_preferred_levels() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(1000.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        assert_eq!(out.levels, vec![vec![0, 0, 0, 0]]);
        assert_eq!(out.degradations, 0);
        assert_eq!(out.reward, 4.0);
    }

    #[test]
    fn scarce_node_degrades_minimally_and_stays_feasible() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(45.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        assert!(out.degradations > 0);
        // The outcome must actually be schedulable.
        assert!(admission(45.0).schedulable(&out.demands));
        assert!(out.reward < 4.0);
        // Levels stay within ladders.
        for (lv, len) in out.levels[0].iter().zip(req.ladder_lengths()) {
            assert!(*lv < len);
        }
    }

    #[test]
    fn degradation_prefers_least_important_attribute_first() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        // Find the smallest capacity that forces exactly one degradation.
        let mut cpu = 120.0;
        let out = loop {
            let o = formulate(
                &[TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                }],
                &admission(cpu),
                &LinearPenalty::default(),
            )
            .unwrap();
            if o.degradations >= 1 {
                break o;
            }
            cpu -= 2.0;
        };
        // With LinearPenalty, the cheapest first step is the attribute with
        // the longest ladder in the least important position. frame_rate
        // (k=0,i=0, 21 levels): step cost 1*1*(1/20) = 0.05;
        // color_depth (k=0,i=1,3 levels): 1*0.5*0.5 = 0.25;
        // sampling_rate (k=1,i=0,3): 0.5*1*0.5=0.25; sample_bits
        // (k=1,i=1,2): 0.5*0.5*1 = 0.25. So frame_rate degrades first.
        assert!(out.levels[0][0] >= 1);
        assert_eq!(&out.levels[0][1..], &[0, 0, 0]);
    }

    #[test]
    fn impossible_demand_is_infeasible() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let err = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(0.5),
            &LinearPenalty::default(),
        )
        .unwrap_err();
        assert_eq!(err, FormulationError::Infeasible);
    }

    #[test]
    fn multi_task_formulation_shares_capacity() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let one = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(80.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let two = formulate(
            &[
                TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                },
                TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                },
            ],
            &admission(80.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        // Two tasks on the same node must degrade more than one.
        assert!(two.degradations > one.degradations);
        let total: f64 = two.demands.iter().map(|d| d.get(ResourceKind::Cpu)).sum();
        assert!(total <= 80.0 + 1e-9);
    }

    #[test]
    fn quadratic_penalty_spreads_degradation() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let lin = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(35.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let quad = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(35.0),
            &QuadraticPenalty::default(),
        )
        .unwrap();
        // Count attributes touched: quadratic should touch at least as many.
        let touched = |o: &Formulated| o.levels[0].iter().filter(|&&l| l > 0).count();
        assert!(touched(&quad) >= touched(&lin));
    }

    #[test]
    fn dependencies_are_honoured() {
        // transcode spec has a linear budget coupling chunk_rate & bitrate;
        // craft a tight node and confirm the outcome satisfies deps.
        let spec = catalog::transcode_spec();
        let req = catalog::transcode_request().resolve(&spec).unwrap();
        use qosc_resources::{DemandTerm, Feature, LinearDemandModel};
        let chunk = spec.path("Throughput", "chunk_rate").unwrap();
        let model = LinearDemandModel::new(
            ResourceVector::new(1.0, 4.0, 8.0, 0.1, 5.0),
            vec![DemandTerm {
                path: chunk,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 2.0,
            }],
        );
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(100.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let qv = req.quality_vector(&spec, &out.levels[0]).unwrap();
        assert!(qv.satisfies_dependencies(&spec));
    }

    #[test]
    fn empty_task_list_is_trivially_formulated() {
        let out = formulate(&[], &admission(1.0), &LinearPenalty::default()).unwrap();
        assert!(out.levels.is_empty());
        assert_eq!(out.reward, 0.0);
    }
}
