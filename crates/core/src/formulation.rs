//! Local proposal formulation (paper §5).
//!
//! When a Call-for-Proposals arrives, the QoS Provider runs "a local QoS
//! optimization heuristic" (after Abdelzaher et al. [1]):
//!
//! 1. start with the user's preferred values for every QoS dimension;
//! 2. while the set of tasks is not schedulable: for each task receiving
//!    service at level `Q_kj < Q_kn`, determine the decrease in *local
//!    reward* from degrading attribute `j` to `j+1`, then degrade the
//!    task/attribute whose decrease is minimal.
//!
//! The local reward is eq. 1:
//!
//! ```text
//! r = n                      if every attribute is served at Q_k1
//!   = n − Σ_j penalty_j      otherwise
//! ```
//!
//! "penalty … can be defined according to user's own criteria and its value
//! increases with the distance from user's preferred value" — so the
//! penalty is a pluggable [`RewardModel`]; [`LinearPenalty`] (default)
//! makes the penalty the rank-weighted normalised ladder distance, and
//! [`QuadraticPenalty`] penalises deep degradation superlinearly (an
//! ablation point: quadratic penalties spread degradation across
//! attributes instead of sacrificing one).
//!
//! Beyond the paper's letter we also enforce the spec's inter-attribute
//! dependencies (§3's `Deps`, which §4.2 requires the negotiation to
//! honour): a configuration is acceptable only if it is schedulable *and*
//! dependency-consistent.
//!
//! # The formulation engine
//!
//! The heuristic runs thousands of times per sweep — once per CFP round,
//! per provider, per negotiation — so this module is built around a
//! reusable [`Formulator`] engine with three exact-equivalent
//! optimisations over the naive loop (retained as
//! [`formulate_reference`] and pinned by the `formulation_props`
//! property tests):
//!
//! * **Heap-driven degradation** — each step pops the cheapest
//!   `(decrease, task, attr)` candidate from a lazy min-heap in O(log A)
//!   instead of rescanning all tasks×attrs, with `f64::total_cmp`
//!   ordering (NaN-robust) and `(task, attr)` tie-breaking that
//!   reproduces the reference scan's first-minimum pick bit-for-bit.
//!   The served quality vector and demand are maintained incrementally:
//!   a step mutates the one changed attribute instead of rebuilding the
//!   whole vector.
//! * **Prefix-feasibility shedding** ([`formulate_shedding`]) — instead
//!   of re-running the entire degradation once per shed task, each
//!   task's fully-degraded demand and dependency status are prefix-summed
//!   to find the largest feasible prefix *before* a single degradation
//!   pass runs. Exact because a prefix is infeasible iff its fully
//!   degraded configuration is unacceptable (demand models are monotone:
//!   degrading a level never increases demand — see
//!   `qosc_resources::LinearDemandModel`); prefixes whose *dependencies*
//!   fail at full degradation are the one case decided by an actual
//!   degradation run.
//! * **Compile caching** — [`Formulator::prepare`] resolves a request and
//!   compiles its [`PenaltyTable`] once per `(spec, request, demand
//!   model)` and serves `Arc`s from then on, so repeated CFP rounds for
//!   the same negotiation (and repeated specs across negotiations) stop
//!   re-resolving and re-allocating. Entries are verified against the
//!   announced spec/request and the registered demand model on every hit
//!   and invalidated by [`Formulator::invalidate_spec`] when a provider
//!   re-registers a demand model.
//! * **Warm-started degradation** ([`Formulator::formulate_warm`],
//!   [`Formulator::formulate_shedding_warm`]) — the §5 step *sequence*
//!   is independent of the admission capacity: the heap orders candidate
//!   steps purely by penalty-table decreases, and capacity only decides
//!   where along the sequence the loop stops. A keyed trajectory records
//!   the sequence (with the exact floating-point demand accumulations
//!   the cold loop would hold) the first time a bundle is priced, so
//!   every later round of the same negotiation replays recorded states
//!   in O(1) per step — no demand-model evaluation, no heap operations —
//!   and extends the recording lazily only when a tighter capacity needs
//!   deeper degradation. Results are bit-identical to the cold path.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

use qosc_resources::{AdmissionControl, DemandModel, ResourceVector};
use qosc_spec::{QosSpec, QualityVector, ResolvedRequest, ServiceRequest};

use crate::evaluation::WeightScheme;

/// Pluggable penalty of eq. 1.
pub trait RewardModel: Send + Sync {
    /// Penalty of serving one attribute at ladder level `level` (0 =
    /// preferred) out of `ladder_len` levels, where the attribute has
    /// 0-based rank `attr_rank` of `attr_count` inside a dimension of
    /// 0-based rank `dim_rank` of `dim_count`.
    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64;

    /// Short identifier for `Debug` output of configs holding a
    /// `dyn RewardModel` (trait objects cannot derive `Debug`).
    fn name(&self) -> &'static str {
        "custom"
    }
}

/// Penalty = `w_k · w_i · level/(len−1)` — linear in ladder distance,
/// discounted by the user's importance ranks so degrading what the user
/// cares least about costs least reward.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinearPenalty {
    /// Rank weighting (shared with the evaluator for symmetry).
    pub weights: WeightScheme,
}

impl RewardModel for LinearPenalty {
    fn name(&self) -> &'static str {
        "linear-penalty"
    }

    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64 {
        if ladder_len <= 1 {
            return 0.0;
        }
        let frac = level as f64 / (ladder_len - 1) as f64;
        self.weights.weight(dim_rank, dim_count) * self.weights.weight(attr_rank, attr_count) * frac
    }
}

/// Penalty = `w_k · w_i · (level/(len−1))²` — shallow degradation is nearly
/// free, deep degradation expensive, so the heuristic spreads cuts.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadraticPenalty {
    /// Rank weighting.
    pub weights: WeightScheme,
}

impl RewardModel for QuadraticPenalty {
    fn name(&self) -> &'static str {
        "quadratic-penalty"
    }

    fn penalty(
        &self,
        dim_rank: usize,
        dim_count: usize,
        attr_rank: usize,
        attr_count: usize,
        level: usize,
        ladder_len: usize,
    ) -> f64 {
        if ladder_len <= 1 {
            return 0.0;
        }
        let frac = level as f64 / (ladder_len - 1) as f64;
        self.weights.weight(dim_rank, dim_count)
            * self.weights.weight(attr_rank, attr_count)
            * frac
            * frac
    }
}

/// Eq. 1 for one task: `n − Σ penalty`, where `n` is the number of
/// requested attributes (so `r = n` exactly when everything sits at the
/// preferred level).
pub fn local_reward(request: &ResolvedRequest, levels: &[usize], model: &dyn RewardModel) -> f64 {
    let n = request.attr_count() as f64;
    let dim_count = request.dim_count();
    let mut penalty_sum = 0.0;
    for (((k, i), pref), &lvl) in request.iter_attrs().zip(levels.iter()) {
        if lvl > 0 {
            let attr_count = request.dimensions[k].attributes.len();
            penalty_sum += model.penalty(k, dim_count, i, attr_count, lvl, pref.levels.len());
        }
    }
    n - penalty_sum
}

/// Per-task compiled penalty ladders: `rows[flat][lvl]` caches
/// [`RewardModel::penalty`] for every requested attribute and ladder
/// level. The degradation loop probes candidate steps thousands of times
/// over the same `(rank, level)` grid; compiling the grid once per task
/// shares the rank-weight products with the whole run (and, through
/// [`Formulator::prepare`], with every later run over the same request)
/// instead of re-deriving them per probed candidate.
pub struct PenaltyTable {
    /// `rows[flat][lvl]` = penalty of serving attribute `flat` at `lvl`.
    rows: Vec<Vec<f64>>,
    /// Number of requested attributes (eq. 1's `n`).
    attr_count: usize,
}

impl PenaltyTable {
    /// Compiles the penalty grid of one resolved request under `model`.
    pub fn new(request: &ResolvedRequest, model: &dyn RewardModel) -> Self {
        let dim_count = request.dim_count();
        let rows = request
            .iter_attrs()
            .map(|((k, i), pref)| {
                let attr_count = request.dimensions[k].attributes.len();
                let len = pref.levels.len();
                (0..len)
                    .map(|lvl| model.penalty(k, dim_count, i, attr_count, lvl, len))
                    .collect()
            })
            .collect();
        Self {
            rows,
            attr_count: request.attr_count(),
        }
    }

    /// Eq. 1 over the cached grid — identical to [`local_reward`].
    pub fn reward(&self, levels: &[usize]) -> f64 {
        let mut penalty_sum = 0.0;
        for (row, &lvl) in self.rows.iter().zip(levels.iter()) {
            if lvl > 0 {
                penalty_sum += row[lvl];
            }
        }
        self.attr_count as f64 - penalty_sum
    }
}

/// One task to formulate for: its spec, resolved request and demand model.
pub struct TaskInput<'a> {
    /// Application QoS spec.
    pub spec: &'a QosSpec,
    /// The user's resolved request.
    pub request: &'a ResolvedRequest,
    /// The a-priori quality→resource analysis.
    pub demand: &'a dyn DemandModel,
}

/// Successful formulation: per-task ladder levels, per-task demands, and
/// the total local reward (Σ eq. 1 over tasks).
#[derive(Debug, Clone, PartialEq)]
pub struct Formulated {
    /// Level index per requested attribute, per task.
    pub levels: Vec<Vec<usize>>,
    /// Resource demand per task at the chosen levels.
    pub demands: Vec<ResourceVector>,
    /// Total local reward.
    pub reward: f64,
    /// Number of degradation steps taken.
    pub degradations: u32,
}

/// Why formulation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FormulationError {
    /// Even with every attribute at its least-preferred acceptable level
    /// the task set is not schedulable (or dependency-consistent) here.
    Infeasible,
}

impl std::fmt::Display for FormulationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormulationError::Infeasible => {
                write!(f, "no acceptable quality level fits this node's resources")
            }
        }
    }
}

impl std::error::Error for FormulationError {}

/// A task compiled for repeated formulation: the resolved request, its
/// [`PenaltyTable`] under one reward model, the spec-flat index of every
/// requested attribute, and the fully-degraded profile (levels, quality
/// vector, demand, dependency status) the prefix-shedding pre-check reads.
///
/// Compiled against **one** `(reward model, demand model)` pair — the
/// demand model is owned so a prepared task can never be priced with a
/// model other than the one its fully-degraded demand was computed from.
pub struct PreparedTask {
    spec: QosSpec,
    request: Arc<ResolvedRequest>,
    demand: Arc<dyn DemandModel>,
    table: PenaltyTable,
    /// Spec flat index per requested attribute, in `iter_attrs` order.
    flat_spec: Vec<usize>,
    /// Demand with every attribute fully degraded, under `demand`.
    full_demand: ResourceVector,
    /// Dependency consistency at full degradation.
    full_deps_ok: bool,
}

/// Spec-flat index of every requested attribute, in `iter_attrs` order —
/// the layout the degradation engine mutates quality vectors through.
fn flat_spec_indexes(spec: &QosSpec, request: &ResolvedRequest) -> Vec<usize> {
    request
        .iter_attrs()
        .map(|(_, a)| {
            spec.flat_index(a.path)
                .expect("resolved request paths exist in the spec")
        })
        .collect()
}

impl PreparedTask {
    /// Compiles one task. `spec`/`request` must belong together (the
    /// request was resolved against this spec).
    pub fn compile(
        spec: QosSpec,
        request: Arc<ResolvedRequest>,
        reward: &dyn RewardModel,
        demand: Arc<dyn DemandModel>,
    ) -> Self {
        let table = PenaltyTable::new(&request, reward);
        let flat_spec = flat_spec_indexes(&spec, &request);
        let full_levels: Vec<usize> = request.ladder_lengths().iter().map(|l| l - 1).collect();
        let full_qv = request
            .quality_vector(&spec, &full_levels)
            .expect("full-degradation levels are within ladder bounds");
        let full_demand = demand.demand(&spec, &full_qv);
        let full_deps_ok = full_qv.satisfies_dependencies(&spec);
        Self {
            spec,
            request,
            demand,
            table,
            flat_spec,
            full_demand,
            full_deps_ok,
        }
    }

    /// The spec this task was compiled against.
    pub fn spec(&self) -> &QosSpec {
        &self.spec
    }

    /// The resolved request.
    pub fn request(&self) -> &Arc<ResolvedRequest> {
        &self.request
    }

    /// The demand model this task was compiled against.
    pub fn demand_model(&self) -> &Arc<dyn DemandModel> {
        &self.demand
    }

    /// Demand with every attribute fully degraded — the smallest demand
    /// any degradation can reach (demand models are monotone).
    pub fn fully_degraded_demand(&self) -> ResourceVector {
        self.full_demand
    }

    /// Whether the fully-degraded configuration satisfies the spec's
    /// inter-attribute dependencies.
    pub fn fully_degraded_deps_ok(&self) -> bool {
        self.full_deps_ok
    }
}

/// One degradation candidate: degrade `task`'s attribute `flat` from
/// `level` to `level + 1`, losing `decrease` reward.
///
/// Ordered as a **min**-heap key under `BinaryHeap`'s max-heap semantics:
/// the reversed comparison pops the smallest `decrease` first
/// ([`f64::total_cmp`], so NaN-emitting reward models order totally
/// instead of corrupting the search), tie-broken by smallest `(task,
/// flat)` — exactly the reference scan's first-minimum pick.
struct Step {
    decrease: f64,
    task: u32,
    flat: u32,
    level: u32,
}

impl PartialEq for Step {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Step {}

impl PartialOrd for Step {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Step {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .decrease
            .total_cmp(&self.decrease)
            .then_with(|| other.task.cmp(&self.task))
            .then_with(|| other.flat.cmp(&self.flat))
    }
}

/// Borrowed view of one task as the degradation engine consumes it; built
/// from either a [`TaskInput`] (compiling tables on the fly) or a
/// [`PreparedTask`] (tables served from cache).
struct EngineTask<'a> {
    spec: &'a QosSpec,
    request: &'a ResolvedRequest,
    table: &'a PenaltyTable,
    flat_spec: &'a [usize],
    demand: &'a dyn DemandModel,
}

impl<'a> EngineTask<'a> {
    fn of_prepared(p: &'a PreparedTask) -> Self {
        Self {
            spec: &p.spec,
            request: &p.request,
            table: &p.table,
            flat_spec: &p.flat_spec,
            demand: p.demand.as_ref(),
        }
    }
}

/// Heap-driven §5 degradation over `tasks`. Exact-equivalent to
/// [`formulate_reference`]'s per-step argmin scan (pinned by the
/// `formulation_props` property tests) but each step costs O(log A)
/// instead of O(tasks × attrs), and the per-task quality vector and
/// demand are maintained incrementally instead of rebuilt per step.
fn degrade(
    tasks: &[EngineTask<'_>],
    admission: &AdmissionControl,
    heap: &mut BinaryHeap<Step>,
) -> Result<Formulated, FormulationError> {
    heap.clear();
    let n = tasks.len();

    // Step 1: preferred values everywhere.
    let mut levels: Vec<Vec<usize>> = tasks
        .iter()
        .map(|t| vec![0usize; t.request.attr_count()])
        .collect();
    let prefs: Vec<Vec<&qosc_spec::ResolvedAttrPref>> = tasks
        .iter()
        .map(|t| t.request.iter_attrs().map(|(_, a)| a).collect())
        .collect();
    let mut qvs: Vec<QualityVector> = tasks
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            t.request
                .quality_vector(t.spec, &levels[ti])
                .expect("levels are kept within ladder bounds")
        })
        .collect();
    let mut demands: Vec<ResourceVector> = Vec::with_capacity(n);
    let mut deps_ok_v: Vec<bool> = Vec::with_capacity(n);
    let mut deps_bad = 0usize;
    let mut total = ResourceVector::ZERO;
    for (t, qv) in tasks.iter().zip(qvs.iter()) {
        let d = t.demand.demand(t.spec, qv);
        let ok = qv.satisfies_dependencies(t.spec);
        total += d;
        demands.push(d);
        deps_ok_v.push(ok);
        deps_bad += usize::from(!ok);
    }

    // One live heap entry per degradable attribute; popping an entry
    // pushes its successor, so the heap never exceeds tasks × attrs.
    for (ti, t) in tasks.iter().enumerate() {
        for (flat, row) in t.table.rows.iter().enumerate() {
            if row.len() > 1 {
                heap.push(Step {
                    decrease: row[1] - row[0],
                    task: ti as u32,
                    flat: flat as u32,
                    level: 0,
                });
            }
        }
    }

    let mut degradations = 0u32;
    loop {
        // Acceptance test: schedulable AND dependency-consistent.
        if deps_bad == 0 && admission.schedulable_total(&total, n) {
            let reward = tasks
                .iter()
                .zip(levels.iter())
                .map(|(t, lv)| t.table.reward(lv))
                .sum();
            return Ok(Formulated {
                levels,
                demands,
                reward,
                degradations,
            });
        }

        // Step 2: cheapest degradation. Entries whose recorded level no
        // longer matches are stale (their live successor is elsewhere in
        // the heap) and are dropped on pop.
        let (ti, flat) = loop {
            let Some(step) = heap.pop() else {
                return Err(FormulationError::Infeasible);
            };
            let (ti, flat) = (step.task as usize, step.flat as usize);
            if levels[ti][flat] == step.level as usize {
                break (ti, flat);
            }
        };

        let t = &tasks[ti];
        let lvl = levels[ti][flat] + 1;
        levels[ti][flat] = lvl;
        degradations += 1;
        let row = &t.table.rows[flat];
        if lvl + 1 < row.len() {
            heap.push(Step {
                decrease: row[lvl + 1] - row[lvl],
                task: ti as u32,
                flat: flat as u32,
                level: lvl as u32,
            });
        }
        // Incremental update: only the degraded attribute changed. The
        // write can only miss if a prepared task was compiled against a
        // spec other than the one its request resolved on — fail at the
        // fault, not downstream.
        let wrote =
            qvs[ti].set_flat_unchecked(t.flat_spec[flat], prefs[ti][flat].levels[lvl].clone());
        debug_assert!(wrote, "flat index out of range for the quality vector");
        total -= demands[ti];
        let d = t.demand.demand(t.spec, &qvs[ti]);
        let ok = qvs[ti].satisfies_dependencies(t.spec);
        total += d;
        demands[ti] = d;
        if ok != deps_ok_v[ti] {
            deps_ok_v[ti] = ok;
            if ok {
                deps_bad -= 1;
            } else {
                deps_bad += 1;
            }
        }
    }
}

/// Prefix-feasibility shedding over prepared tasks: returns the longest
/// feasible prefix's length and its formulation, or `None` when not even
/// a single-task prefix fits.
///
/// Equivalent to the naive loop "formulate the whole set, drop the last
/// task on `Infeasible`, repeat" — a prefix is infeasible exactly when
/// its fully-degraded configuration is unacceptable, so the fully
/// degraded demands (cached per task) are prefix-summed and tested
/// directly: one O(1) admission test per candidate prefix and a single
/// degradation pass for the winner, instead of one full degradation per
/// shed task. Prefixes containing a task whose *dependencies* fail at
/// full degradation are the one case where early acceptance could still
/// occur mid-trajectory; those prefixes are decided by a real degradation
/// run, keeping the outcome identical in all cases.
fn shed(
    tasks: &[&PreparedTask],
    admission: &AdmissionControl,
    heap: &mut BinaryHeap<Step>,
) -> Option<(usize, Formulated)> {
    let n = tasks.len();
    if n == 0 {
        return None;
    }
    let engine: Vec<EngineTask<'_>> = tasks.iter().map(|p| EngineTask::of_prepared(p)).collect();
    // Prefixes [..c] with c ≤ k are dependency-consistent at full
    // degradation; longer ones are not and get the exact (slow) check.
    let k = tasks.iter().position(|t| !t.full_deps_ok).unwrap_or(n);
    for c in ((k + 1)..=n).rev() {
        if let Ok(f) = degrade(&engine[..c], admission, heap) {
            return Some((c, f));
        }
    }
    // sums[c] = Σ fully-degraded demand of tasks[..c].
    let mut sums = Vec::with_capacity(k + 1);
    let mut running = ResourceVector::ZERO;
    sums.push(running);
    for t in &tasks[..k] {
        running += t.full_demand;
        sums.push(running);
    }
    // The prefix-sum test and the degradation loop's incrementally
    // maintained total are different floating-point accumulations of the
    // same demands, so within the admission test's 1e-9 slack they can
    // disagree in either direction. The degradation run *is* the old
    // loop's verdict, so it always has the last word; the sum test only
    // decides which prefixes are worth running.
    let c0 = (1..=k)
        .rev()
        .find(|&c| admission.schedulable_total(&sums[c], c));
    // Boundary probe: the *smallest* sum-rejected prefix may still pass
    // the real run within drift range; every larger rejected prefix
    // exceeds the bound by at least one whole task's demand on top, far
    // outside drift, and is never probed — that is the pre-check's win.
    let boundary = c0.map_or(1, |c| c + 1);
    if boundary <= k {
        if let Ok(f) = degrade(&engine[..boundary], admission, heap) {
            return Some((boundary, f));
        }
    }
    // Accept the sum-approved prefix — or, if the run narrowly disagrees
    // (drift the other way), shed further on the run's verdict alone.
    let mut c = c0?;
    loop {
        if let Ok(f) = degrade(&engine[..c], admission, heap) {
            return Some((c, f));
        }
        if c == 1 {
            return None;
        }
        c -= 1;
    }
}

/// One recorded step of a [`Trajectory`]: which attribute was degraded,
/// plus the engine state *after* the step — the degraded task's new
/// demand, the running total (the exact floating-point accumulation the
/// cold loop holds at this point) and the count of dependency-violating
/// tasks. Recording post-step state makes replay a pure array walk.
struct TrajStep {
    task: u32,
    flat: u32,
    demand: ResourceVector,
    total: ResourceVector,
    deps_bad: usize,
}

/// A replayable degradation trajectory for one prepared bundle.
///
/// [`degrade`]'s step sequence is a function of the penalty tables alone:
/// the heap orders candidates by reward decrease, never by capacity, so
/// the admission control only chooses *where along the sequence* the loop
/// stops — at the first prefix that is dependency-consistent and
/// schedulable. A trajectory records that sequence once and answers later
/// formulations of the same bundle by scanning recorded `(total,
/// deps_bad)` states, extending the recording lazily (from saved live
/// engine state) only when a tighter capacity needs steps nobody has
/// taken yet. Replay involves no demand-model calls and no heap
/// operations, and — because the recorded totals are the very
/// accumulations the cold loop computes — returns results bit-identical
/// to [`degrade`].
struct Trajectory {
    /// The bundle, by identity: a warm hit requires pointer-equal tasks
    /// (the `Arc`s also keep the compiled tables alive).
    tasks: Vec<Arc<PreparedTask>>,
    /// Initial (all-preferred) per-task demands and their sum.
    demands0: Vec<ResourceVector>,
    total0: ResourceVector,
    deps_bad0: usize,
    /// Recorded steps, in degradation order.
    steps: Vec<TrajStep>,
    /// Live frontier state for extending the recording.
    levels: Vec<Vec<usize>>,
    qvs: Vec<QualityVector>,
    demands: Vec<ResourceVector>,
    deps_ok_v: Vec<bool>,
    heap: BinaryHeap<Step>,
    /// The heap ran dry: the recording is complete.
    exhausted: bool,
}

impl Trajectory {
    /// Computes the initial state — an exact mirror of [`degrade`]'s
    /// initialisation, including the heap seeding.
    fn new(tasks: Vec<Arc<PreparedTask>>) -> Self {
        let levels: Vec<Vec<usize>> = tasks
            .iter()
            .map(|t| vec![0usize; t.request.attr_count()])
            .collect();
        let qvs: Vec<QualityVector> = tasks
            .iter()
            .enumerate()
            .map(|(ti, t)| {
                t.request
                    .quality_vector(&t.spec, &levels[ti])
                    .expect("levels are kept within ladder bounds")
            })
            .collect();
        let mut demands = Vec::with_capacity(tasks.len());
        let mut deps_ok_v = Vec::with_capacity(tasks.len());
        let mut deps_bad = 0usize;
        let mut total = ResourceVector::ZERO;
        for (t, qv) in tasks.iter().zip(qvs.iter()) {
            let d = t.demand.demand(&t.spec, qv);
            let ok = qv.satisfies_dependencies(&t.spec);
            total += d;
            demands.push(d);
            deps_ok_v.push(ok);
            deps_bad += usize::from(!ok);
        }
        let mut heap = BinaryHeap::new();
        for (ti, t) in tasks.iter().enumerate() {
            for (flat, row) in t.table.rows.iter().enumerate() {
                if row.len() > 1 {
                    heap.push(Step {
                        decrease: row[1] - row[0],
                        task: ti as u32,
                        flat: flat as u32,
                        level: 0,
                    });
                }
            }
        }
        Self {
            demands0: demands.clone(),
            total0: total,
            deps_bad0: deps_bad,
            steps: Vec::new(),
            levels,
            qvs,
            demands,
            deps_ok_v,
            heap,
            exhausted: false,
            tasks,
        }
    }

    /// Whether this trajectory was recorded for exactly `tasks`.
    fn matches(&self, tasks: &[Arc<PreparedTask>]) -> bool {
        self.tasks.len() == tasks.len()
            && self.tasks.iter().zip(tasks).all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// `(total, deps_bad)` after `k` recorded steps.
    fn state_at(&self, k: usize) -> (ResourceVector, usize) {
        if k == 0 {
            (self.total0, self.deps_bad0)
        } else {
            let s = &self.steps[k - 1];
            (s.total, s.deps_bad)
        }
    }

    /// Extends the recording by one step — an exact mirror of the
    /// [`degrade`] loop body, including the lazy stale-entry drop.
    /// Returns `false` when the heap is dry (recording complete).
    fn advance(&mut self) -> bool {
        if self.exhausted {
            return false;
        }
        let (ti, flat) = loop {
            let Some(step) = self.heap.pop() else {
                self.exhausted = true;
                return false;
            };
            let (ti, flat) = (step.task as usize, step.flat as usize);
            if self.levels[ti][flat] == step.level as usize {
                break (ti, flat);
            }
        };
        let t = &self.tasks[ti];
        let lvl = self.levels[ti][flat] + 1;
        self.levels[ti][flat] = lvl;
        let row = &t.table.rows[flat];
        if lvl + 1 < row.len() {
            self.heap.push(Step {
                decrease: row[lvl + 1] - row[lvl],
                task: ti as u32,
                flat: flat as u32,
                level: lvl as u32,
            });
        }
        let pref = t
            .request
            .iter_attrs()
            .nth(flat)
            .expect("flat index enumerates requested attributes")
            .1;
        let wrote = self.qvs[ti].set_flat_unchecked(t.flat_spec[flat], pref.levels[lvl].clone());
        debug_assert!(wrote, "flat index out of range for the quality vector");
        // Start from the last recorded accumulation so the arithmetic is
        // the same -=/+= sequence the cold loop performs.
        let (mut total, mut deps_bad) = self.state_at(self.steps.len());
        total -= self.demands[ti];
        let d = t.demand.demand(&t.spec, &self.qvs[ti]);
        let ok = self.qvs[ti].satisfies_dependencies(&t.spec);
        total += d;
        self.demands[ti] = d;
        if ok != self.deps_ok_v[ti] {
            self.deps_ok_v[ti] = ok;
            if ok {
                deps_bad -= 1;
            } else {
                deps_bad += 1;
            }
        }
        self.steps.push(TrajStep {
            task: ti as u32,
            flat: flat as u32,
            demand: d,
            total,
            deps_bad,
        });
        true
    }

    /// Rebuilds the [`Formulated`] the cold loop returns when it stops
    /// after `k` degradation steps.
    fn result_at(&self, k: usize) -> Formulated {
        let mut levels: Vec<Vec<usize>> = self
            .tasks
            .iter()
            .map(|t| vec![0usize; t.request.attr_count()])
            .collect();
        let mut demands = self.demands0.clone();
        for s in &self.steps[..k] {
            levels[s.task as usize][s.flat as usize] += 1;
            demands[s.task as usize] = s.demand;
        }
        let reward = self
            .tasks
            .iter()
            .zip(levels.iter())
            .map(|(t, lv)| t.table.reward(lv))
            .sum();
        Formulated {
            levels,
            demands,
            reward,
            degradations: k as u32,
        }
    }

    /// Walks recorded prefixes (extending on demand) to the first
    /// acceptable one — the same stopping rule as [`degrade`], evaluated
    /// over recorded states.
    fn formulate(&mut self, admission: &AdmissionControl) -> Result<Formulated, FormulationError> {
        let n = self.tasks.len();
        let mut k = 0usize;
        loop {
            let (total, deps_bad) = self.state_at(k);
            if deps_bad == 0 && admission.schedulable_total(&total, n) {
                return Ok(self.result_at(k));
            }
            if k == self.steps.len() && !self.advance() {
                return Err(FormulationError::Infeasible);
            }
            k += 1;
        }
    }
}

/// Runs the §5 heuristic over a set of tasks against one node's admission
/// control. Pure: resource *reservation* is the caller's job (the provider
/// engine prepares holds for the returned demands).
///
/// Compiles penalty tables on the fly; hot paths that price the same
/// requests repeatedly should go through a [`Formulator`] (or
/// [`formulate_prepared`]) instead.
pub fn formulate(
    tasks: &[TaskInput<'_>],
    admission: &AdmissionControl,
    reward_model: &dyn RewardModel,
) -> Result<Formulated, FormulationError> {
    let tables: Vec<PenaltyTable> = tasks
        .iter()
        .map(|t| PenaltyTable::new(t.request, reward_model))
        .collect();
    let flats: Vec<Vec<usize>> = tasks
        .iter()
        .map(|t| flat_spec_indexes(t.spec, t.request))
        .collect();
    let engine: Vec<EngineTask<'_>> = tasks
        .iter()
        .zip(tables.iter())
        .zip(flats.iter())
        .map(|((t, table), flat_spec)| EngineTask {
            spec: t.spec,
            request: t.request,
            table,
            flat_spec,
            demand: t.demand,
        })
        .collect();
    degrade(&engine, admission, &mut BinaryHeap::new())
}

/// [`formulate`] over prepared (cached) tasks, with a fresh scratch heap.
pub fn formulate_prepared(
    tasks: &[&PreparedTask],
    admission: &AdmissionControl,
) -> Result<Formulated, FormulationError> {
    let engine: Vec<EngineTask<'_>> = tasks.iter().map(|p| EngineTask::of_prepared(p)).collect();
    degrade(&engine, admission, &mut BinaryHeap::new())
}

/// Prefix-feasibility shedding over prepared tasks (see
/// [`Formulator::formulate_shedding`]), with a fresh scratch heap.
pub fn formulate_shedding(
    tasks: &[&PreparedTask],
    admission: &AdmissionControl,
) -> Option<(usize, Formulated)> {
    shed(tasks, admission, &mut BinaryHeap::new())
}

/// The retained pre-engine reference: per-step argmin *scan* over every
/// task × attribute, quality vector rebuilt from scratch per step.
///
/// Kept for the property tests that pin the heap engine bit-for-bit and
/// as the baseline leg of the B2 bench. The only intended divergence from
/// the historical code is the candidate comparison: `f64::total_cmp`
/// (first strict minimum) instead of an epsilon window, so that a NaN
/// from a custom [`RewardModel`] orders deterministically instead of
/// silently skipping or retaining candidates.
pub fn formulate_reference(
    tasks: &[TaskInput<'_>],
    admission: &AdmissionControl,
    reward_model: &dyn RewardModel,
) -> Result<Formulated, FormulationError> {
    let mut levels: Vec<Vec<usize>> = tasks
        .iter()
        .map(|t| vec![0usize; t.request.attr_count()])
        .collect();
    let tables: Vec<PenaltyTable> = tasks
        .iter()
        .map(|t| PenaltyTable::new(t.request, reward_model))
        .collect();
    let mut degradations = 0u32;

    let eval_task = |ti: usize, lv: &[usize]| {
        let t = &tasks[ti];
        let qv = t
            .request
            .quality_vector(t.spec, lv)
            .expect("levels are kept within ladder bounds");
        let ok = qv.satisfies_dependencies(t.spec);
        (t.demand.demand(t.spec, &qv), ok)
    };
    let mut demands: Vec<ResourceVector> = Vec::with_capacity(tasks.len());
    let mut deps_ok_v: Vec<bool> = Vec::with_capacity(tasks.len());
    let mut total = ResourceVector::ZERO;
    for (ti, lv) in levels.iter().enumerate() {
        let (d, ok) = eval_task(ti, lv);
        total += d;
        demands.push(d);
        deps_ok_v.push(ok);
    }

    loop {
        let deps_ok = deps_ok_v.iter().all(|&x| x);
        if deps_ok && admission.schedulable_total(&total, tasks.len()) {
            let reward = tables
                .iter()
                .zip(levels.iter())
                .map(|(t, lv)| t.reward(lv))
                .sum();
            return Ok(Formulated {
                levels,
                demands,
                reward,
                degradations,
            });
        }

        let mut best: Option<(usize, usize, f64)> = None; // (task, flat attr, decrease)
        for (ti, table) in tables.iter().enumerate() {
            for (flat, row) in table.rows.iter().enumerate() {
                let lvl = levels[ti][flat];
                if lvl + 1 >= row.len() {
                    continue; // already at Q_kn
                }
                let decrease = row[lvl + 1] - row[lvl];
                let better = match best {
                    None => true,
                    Some((_, _, d)) => decrease.total_cmp(&d) == Ordering::Less,
                };
                if better {
                    best = Some((ti, flat, decrease));
                }
            }
        }
        match best {
            Some((ti, flat, _)) => {
                levels[ti][flat] += 1;
                degradations += 1;
                total -= demands[ti];
                let (d, ok) = eval_task(ti, &levels[ti]);
                total += d;
                demands[ti] = d;
                deps_ok_v[ti] = ok;
            }
            None => return Err(FormulationError::Infeasible),
        }
    }
}

/// Cached compilation of one announced `(spec, request)` pair plus the
/// inputs it was verified against.
#[derive(Clone)]
struct CacheEntry {
    source: ServiceRequest,
    prepared: Arc<PreparedTask>,
}

/// The reusable formulation engine: one reward model, a compile cache
/// keyed by `(spec name, request name)` (entries verified structurally on
/// every hit, so a colliding name can never serve stale tables), and the
/// scratch heap the degradation loop reuses across calls. The heap is the
/// only reusable buffer by design: the per-task levels and demands are
/// moved out to the caller inside [`Formulated`], so pooling them would
/// require an API that takes them back.
pub struct Formulator {
    reward: Arc<dyn RewardModel>,
    cache: HashMap<(String, String), CacheEntry>,
    heap: BinaryHeap<Step>,
    /// Warm-start trajectories keyed by `(caller key, bundle length)`;
    /// see [`Formulator::formulate_warm`]. The bundle length is part of
    /// the key so shedding's nested prefixes warm independently.
    warm: HashMap<(u64, usize), Trajectory>,
}

/// Bound on retained warm trajectories. Warm state is behaviour-neutral
/// (a rebuild costs one cold run), so hitting the cap simply clears the
/// table instead of tracking recency.
const WARM_CAP: usize = 1024;

impl Clone for Formulator {
    /// Clones the engine for state-forking consumers (the model checker).
    /// The scratch heap and warm trajectories are behaviour-neutral
    /// accelerators, so the clone starts cold rather than copying them.
    fn clone(&self) -> Self {
        Self {
            reward: Arc::clone(&self.reward),
            cache: self.cache.clone(),
            heap: BinaryHeap::new(),
            warm: HashMap::new(),
        }
    }
}

impl Formulator {
    /// Creates an engine degrading under `reward`.
    pub fn new(reward: Arc<dyn RewardModel>) -> Self {
        Self {
            reward,
            cache: HashMap::new(),
            heap: BinaryHeap::new(),
            warm: HashMap::new(),
        }
    }

    /// The engine's reward model.
    pub fn reward(&self) -> &Arc<dyn RewardModel> {
        &self.reward
    }

    /// Number of cached compilations (tests, metrics).
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Resolves `request` against `spec` and compiles it for repeated
    /// formulation, serving the cached compilation when the same
    /// `(spec, request)` was prepared before with the same demand model.
    /// Returns `None` when the request does not resolve (the caller
    /// cannot price such a task at all); resolution failures are not
    /// cached.
    pub fn prepare(
        &mut self,
        spec: &QosSpec,
        request: &ServiceRequest,
        demand: &Arc<dyn DemandModel>,
    ) -> Option<Arc<PreparedTask>> {
        let key = (spec.name().to_string(), request.name.clone());
        if let Some(e) = self.cache.get(&key) {
            // Same-name-different-content announcements and re-registered
            // demand models must recompile; data-pointer identity is the
            // demand-model check (a re-registered Arc is a new allocation).
            if e.source == *request
                && *e.prepared.spec() == *spec
                && std::ptr::eq(
                    Arc::as_ptr(&e.prepared.demand) as *const u8,
                    Arc::as_ptr(demand) as *const u8,
                )
            {
                return Some(Arc::clone(&e.prepared));
            }
        }
        let resolved = request.resolve(spec).ok()?;
        let prepared = Arc::new(PreparedTask::compile(
            spec.clone(),
            Arc::new(resolved),
            self.reward.as_ref(),
            Arc::clone(demand),
        ));
        self.cache.insert(
            key,
            CacheEntry {
                source: request.clone(),
                prepared: Arc::clone(&prepared),
            },
        );
        Some(prepared)
    }

    /// Drops every cached compilation for `spec_name`. Called when a
    /// provider re-registers a demand model: the cached fully-degraded
    /// demands were computed under the old model.
    pub fn invalidate_spec(&mut self, spec_name: &str) {
        self.cache.retain(|(s, _), _| s != spec_name);
        self.warm
            .retain(|_, t| t.tasks.iter().all(|p| p.spec.name() != spec_name));
    }

    /// Heap-driven §5 formulation over prepared tasks, reusing the
    /// engine's scratch heap.
    pub fn formulate(
        &mut self,
        tasks: &[&PreparedTask],
        admission: &AdmissionControl,
    ) -> Result<Formulated, FormulationError> {
        let engine: Vec<EngineTask<'_>> =
            tasks.iter().map(|p| EngineTask::of_prepared(p)).collect();
        degrade(&engine, admission, &mut self.heap)
    }

    /// Prefix-feasibility shedding over prepared tasks, reusing the
    /// engine's scratch heap: the longest feasible prefix's length and
    /// formulation, or `None` when not even one task fits.
    pub fn formulate_shedding(
        &mut self,
        tasks: &[&PreparedTask],
        admission: &AdmissionControl,
    ) -> Option<(usize, Formulated)> {
        shed(tasks, admission, &mut self.heap)
    }

    /// Serves the warm trajectory for `(key, tasks)`, building or
    /// rebuilding it when missing or recorded for a different bundle.
    fn warm_entry(&mut self, key: u64, tasks: &[Arc<PreparedTask>]) -> &mut Trajectory {
        let slot = (key, tasks.len());
        let stale = match self.warm.get(&slot) {
            Some(t) => !t.matches(tasks),
            None => true,
        };
        if stale {
            if self.warm.len() >= WARM_CAP {
                self.warm.clear();
            }
            self.warm.insert(slot, Trajectory::new(tasks.to_vec()));
        }
        self.warm.get_mut(&slot).expect("entry inserted above")
    }

    /// Warm-started §5 formulation: identical results to
    /// [`Formulator::formulate`] (pinned by `formulation_props`), but the
    /// degradation sequence for `(key, tasks)` is recorded on first use
    /// and replayed on every later call — later rounds of the same
    /// negotiation pay an array scan instead of demand-model evaluations
    /// and heap churn. `key` scopes the trajectory (one per negotiation
    /// in the provider engine); bundle identity is verified by `Arc`
    /// pointer equality, so a re-prepared bundle transparently rebuilds.
    /// Callers should [`Formulator::forget_warm`] the key when the
    /// negotiation ends.
    pub fn formulate_warm(
        &mut self,
        key: u64,
        tasks: &[Arc<PreparedTask>],
        admission: &AdmissionControl,
    ) -> Result<Formulated, FormulationError> {
        self.warm_entry(key, tasks).formulate(admission)
    }

    /// Warm-started prefix-feasibility shedding: identical results to
    /// [`Formulator::formulate_shedding`], with every prefix degradation
    /// answered by a warm trajectory under `key`. The shedding structure
    /// (dependency split, fully-degraded prefix sums, boundary probe) is
    /// the same as [`formulate_shedding`]; only the inner degradation
    /// runs are replayed.
    pub fn formulate_shedding_warm(
        &mut self,
        key: u64,
        tasks: &[Arc<PreparedTask>],
        admission: &AdmissionControl,
    ) -> Option<(usize, Formulated)> {
        let n = tasks.len();
        if n == 0 {
            return None;
        }
        let k = tasks.iter().position(|t| !t.full_deps_ok).unwrap_or(n);
        for c in ((k + 1)..=n).rev() {
            if let Ok(f) = self.formulate_warm(key, &tasks[..c], admission) {
                return Some((c, f));
            }
        }
        let mut sums = Vec::with_capacity(k + 1);
        let mut running = ResourceVector::ZERO;
        sums.push(running);
        for t in &tasks[..k] {
            running += t.full_demand;
            sums.push(running);
        }
        let c0 = (1..=k)
            .rev()
            .find(|&c| admission.schedulable_total(&sums[c], c));
        let boundary = c0.map_or(1, |c| c + 1);
        if boundary <= k {
            if let Ok(f) = self.formulate_warm(key, &tasks[..boundary], admission) {
                return Some((boundary, f));
            }
        }
        let mut c = c0?;
        loop {
            if let Ok(f) = self.formulate_warm(key, &tasks[..c], admission) {
                return Some((c, f));
            }
            if c == 1 {
                return None;
            }
            c -= 1;
        }
    }

    /// Drops every warm trajectory recorded under `key` (all bundle
    /// lengths). Called by the provider engine when a negotiation ends.
    pub fn forget_warm(&mut self, key: u64) {
        self.warm.retain(|(k, _), _| *k != key);
    }

    /// Number of retained warm trajectories (tests, metrics).
    pub fn warm_entries(&self) -> usize {
        self.warm.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_resources::{av_demand_model, ResourceKind, SchedulingPolicy};
    use qosc_spec::catalog;

    fn setup() -> (qosc_spec::QosSpec, ResolvedRequest) {
        let spec = catalog::av_spec();
        let req = catalog::video_conference_request().resolve(&spec).unwrap();
        (spec, req)
    }

    fn admission(cpu: f64) -> AdmissionControl {
        AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        )
    }

    #[test]
    fn reward_is_n_at_preferred_levels() {
        let (_spec, req) = setup();
        let model = LinearPenalty::default();
        let r = local_reward(&req, &[0, 0, 0, 0], &model);
        assert_eq!(r, 4.0);
    }

    #[test]
    fn reward_decreases_monotonically_with_degradation() {
        let (_spec, req) = setup();
        let model = LinearPenalty::default();
        let mut prev = local_reward(&req, &[0, 0, 0, 0], &model);
        for lvl in 1..req.ladder_lengths()[0] {
            let r = local_reward(&req, &[lvl, 0, 0, 0], &model);
            assert!(r < prev);
            prev = r;
        }
    }

    #[test]
    fn rich_node_serves_preferred_levels() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(1000.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        assert_eq!(out.levels, vec![vec![0, 0, 0, 0]]);
        assert_eq!(out.degradations, 0);
        assert_eq!(out.reward, 4.0);
    }

    #[test]
    fn scarce_node_degrades_minimally_and_stays_feasible() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(45.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        assert!(out.degradations > 0);
        // The outcome must actually be schedulable.
        assert!(admission(45.0).schedulable(&out.demands));
        assert!(out.reward < 4.0);
        // Levels stay within ladders.
        for (lv, len) in out.levels[0].iter().zip(req.ladder_lengths()) {
            assert!(*lv < len);
        }
    }

    #[test]
    fn degradation_prefers_least_important_attribute_first() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        // Find the smallest capacity that forces exactly one degradation.
        let mut cpu = 120.0;
        let out = loop {
            let o = formulate(
                &[TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                }],
                &admission(cpu),
                &LinearPenalty::default(),
            )
            .unwrap();
            if o.degradations >= 1 {
                break o;
            }
            cpu -= 2.0;
        };
        // With LinearPenalty, the cheapest first step is the attribute with
        // the longest ladder in the least important position. frame_rate
        // (k=0,i=0, 21 levels): step cost 1*1*(1/20) = 0.05;
        // color_depth (k=0,i=1,3 levels): 1*0.5*0.5 = 0.25;
        // sampling_rate (k=1,i=0,3): 0.5*1*0.5=0.25; sample_bits
        // (k=1,i=1,2): 0.5*0.5*1 = 0.25. So frame_rate degrades first.
        assert!(out.levels[0][0] >= 1);
        assert_eq!(&out.levels[0][1..], &[0, 0, 0]);
    }

    #[test]
    fn impossible_demand_is_infeasible() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let err = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(0.5),
            &LinearPenalty::default(),
        )
        .unwrap_err();
        assert_eq!(err, FormulationError::Infeasible);
    }

    #[test]
    fn multi_task_formulation_shares_capacity() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let one = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(80.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let two = formulate(
            &[
                TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                },
                TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: &model,
                },
            ],
            &admission(80.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        // Two tasks on the same node must degrade more than one.
        assert!(two.degradations > one.degradations);
        let total: f64 = two.demands.iter().map(|d| d.get(ResourceKind::Cpu)).sum();
        assert!(total <= 80.0 + 1e-9);
    }

    #[test]
    fn quadratic_penalty_spreads_degradation() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        let lin = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(35.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let quad = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(35.0),
            &QuadraticPenalty::default(),
        )
        .unwrap();
        // Count attributes touched: quadratic should touch at least as many.
        let touched = |o: &Formulated| o.levels[0].iter().filter(|&&l| l > 0).count();
        assert!(touched(&quad) >= touched(&lin));
    }

    #[test]
    fn dependencies_are_honoured() {
        // transcode spec has a linear budget coupling chunk_rate & bitrate;
        // craft a tight node and confirm the outcome satisfies deps.
        let spec = catalog::transcode_spec();
        let req = catalog::transcode_request().resolve(&spec).unwrap();
        use qosc_resources::{DemandTerm, Feature, LinearDemandModel};
        let chunk = spec.path("Throughput", "chunk_rate").unwrap();
        let model = LinearDemandModel::new(
            ResourceVector::new(1.0, 4.0, 8.0, 0.1, 5.0),
            vec![DemandTerm {
                path: chunk,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 2.0,
            }],
        );
        let out = formulate(
            &[TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }],
            &admission(100.0),
            &LinearPenalty::default(),
        )
        .unwrap();
        let qv = req.quality_vector(&spec, &out.levels[0]).unwrap();
        assert!(qv.satisfies_dependencies(&spec));
    }

    #[test]
    fn empty_task_list_is_trivially_formulated() {
        let out = formulate(&[], &admission(1.0), &LinearPenalty::default()).unwrap();
        assert!(out.levels.is_empty());
        assert_eq!(out.reward, 0.0);
    }

    #[test]
    fn heap_engine_matches_reference_on_the_catalog() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        for cpu in [0.5, 10.0, 35.0, 45.0, 80.0, 500.0] {
            for tasks in 1usize..=3 {
                let inputs: Vec<TaskInput<'_>> = (0..tasks)
                    .map(|_| TaskInput {
                        spec: &spec,
                        request: &req,
                        demand: &model,
                    })
                    .collect();
                let a = formulate(&inputs, &admission(cpu), &LinearPenalty::default());
                let b = formulate_reference(&inputs, &admission(cpu), &LinearPenalty::default());
                assert_eq!(a, b, "cpu {cpu} tasks {tasks}");
            }
        }
    }

    /// A reward model that reports NaN penalties for one attribute — the
    /// regression case for the old `decrease < d - 1e-15` comparison,
    /// which silently skipped or retained candidates under NaN.
    struct NanReward;

    impl RewardModel for NanReward {
        fn penalty(
            &self,
            _dim_rank: usize,
            _dim_count: usize,
            attr_rank: usize,
            _attr_count: usize,
            level: usize,
            ladder_len: usize,
        ) -> f64 {
            if attr_rank == 0 && level > 0 {
                f64::NAN
            } else if ladder_len <= 1 {
                0.0
            } else {
                level as f64 / (ladder_len - 1) as f64
            }
        }
    }

    #[test]
    fn nan_reward_model_degrades_deterministically() {
        let (spec, req) = setup();
        let model = av_demand_model(&spec);
        for cpu in [0.5, 10.0, 30.0, 45.0] {
            let inputs = [TaskInput {
                spec: &spec,
                request: &req,
                demand: &model,
            }];
            // Terminates (no infinite loop / panic) and both paths agree:
            // total_cmp sorts the NaN steps after every finite decrease,
            // so they are taken last — deterministically. Rewards are
            // compared bitwise because a degradation into a NaN penalty
            // level legitimately makes the summed reward NaN (in both).
            let a = formulate(&inputs, &admission(cpu), &NanReward);
            let b = formulate_reference(&inputs, &admission(cpu), &NanReward);
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.levels, y.levels, "cpu {cpu}");
                    assert_eq!(x.demands, y.demands, "cpu {cpu}");
                    assert_eq!(x.degradations, y.degradations, "cpu {cpu}");
                    assert_eq!(x.reward.to_bits(), y.reward.to_bits(), "cpu {cpu}");
                    assert!(admission(cpu).schedulable(&x.demands));
                }
                (Err(x), Err(y)) => assert_eq!(x, y, "cpu {cpu}"),
                (x, y) => panic!("cpu {cpu}: heap {x:?} vs scan {y:?}"),
            }
        }
    }

    fn prepared_for(
        spec: &QosSpec,
        req: &ResolvedRequest,
        model: Arc<dyn DemandModel>,
    ) -> PreparedTask {
        PreparedTask::compile(
            spec.clone(),
            Arc::new(req.clone()),
            &LinearPenalty::default(),
            model,
        )
    }

    #[test]
    fn shedding_matches_iterative_reference_loop() {
        let (spec, req) = setup();
        let model: Arc<dyn DemandModel> = Arc::new(av_demand_model(&spec));
        let prepared: Vec<PreparedTask> = (0..4)
            .map(|_| prepared_for(&spec, &req, Arc::clone(&model)))
            .collect();
        let refs: Vec<&PreparedTask> = prepared.iter().collect();
        for cpu in [0.5, 7.0, 14.0, 30.0, 60.0, 200.0, 1000.0] {
            let adm = admission(cpu);
            // The retained naive loop: shed from the tail on Infeasible.
            let inputs: Vec<TaskInput<'_>> = (0..4)
                .map(|_| TaskInput {
                    spec: &spec,
                    request: &req,
                    demand: model.as_ref(),
                })
                .collect();
            let mut count = inputs.len();
            let old = loop {
                if count == 0 {
                    break None;
                }
                match formulate_reference(&inputs[..count], &adm, &LinearPenalty::default()) {
                    Ok(f) => break Some((count, f)),
                    Err(FormulationError::Infeasible) => count -= 1,
                }
            };
            let new = formulate_shedding(&refs, &adm);
            assert_eq!(new, old, "cpu {cpu}");
        }
    }

    #[test]
    fn formulator_cache_hits_and_invalidates() {
        let spec = catalog::av_spec();
        let request = catalog::surveillance_request();
        let model: Arc<dyn DemandModel> = Arc::new(av_demand_model(&spec));
        let mut f = Formulator::new(Arc::new(LinearPenalty::default()));
        let a = f.prepare(&spec, &request, &model).unwrap();
        let b = f.prepare(&spec, &request, &model).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second prepare must be a cache hit");
        assert_eq!(f.cached(), 1);
        // Same names, different ladder content: must recompile.
        let mut renamed = catalog::video_conference_request();
        renamed.name = request.name.clone();
        let c = f.prepare(&spec, &renamed, &model).unwrap();
        assert!(!Arc::ptr_eq(&a, &c), "changed content must recompile");
        // Re-registered demand model: pointer identity differs.
        let model2: Arc<dyn DemandModel> = Arc::new(av_demand_model(&spec));
        let d = f.prepare(&spec, &renamed, &model2).unwrap();
        assert!(!Arc::ptr_eq(&c, &d), "new demand model must recompile");
        // Explicit invalidation empties the spec's entries.
        f.invalidate_spec(spec.name());
        assert_eq!(f.cached(), 0);
    }

    #[test]
    fn formulator_formulate_matches_free_function() {
        let spec = catalog::av_spec();
        let resolved = catalog::surveillance_request().resolve(&spec).unwrap();
        let model: Arc<dyn DemandModel> = Arc::new(av_demand_model(&spec));
        let p = prepared_for(&spec, &resolved, Arc::clone(&model));
        let mut engine = Formulator::new(Arc::new(LinearPenalty::default()));
        for cpu in [3.0, 10.0, 60.0] {
            let adm = admission(cpu);
            let via_engine = engine.formulate(&[&p], &adm);
            let via_free = formulate(
                &[TaskInput {
                    spec: &spec,
                    request: &resolved,
                    demand: model.as_ref(),
                }],
                &adm,
                &LinearPenalty::default(),
            );
            assert_eq!(via_engine, via_free, "cpu {cpu}");
        }
    }
}
