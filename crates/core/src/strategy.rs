//! Pluggable negotiation strategies: componentized provider/organizer
//! decision logic.
//!
//! The paper fixes one provider behaviour (always volunteer, §5 joint
//! degradation pricing) and one organizer behaviour (eq. 2–5 scoring plus
//! the §4.2 tie-break). Scenario diversity — selfish or priced providers,
//! reserve thresholds, reputation weighting — needs those decisions to be
//! first-class, swappable values instead of code baked into the engines.
//!
//! This module extracts every decision point into two component traits:
//!
//! * [`ProviderComponent`] — reacts to a CFP: volunteer at all
//!   ([`ProviderComponent::participate`])? adjust or withhold a priced
//!   offer ([`ProviderComponent::review_offer`])? honour an award
//!   ([`ProviderComponent::accept_award`])?
//! * [`OrganizerComponent`] — filters/rescores incoming candidates
//!   ([`OrganizerComponent::review_candidate`]), optionally overrides
//!   winner selection ([`OrganizerComponent::select`]) and decides retry
//!   vs give-up ([`OrganizerComponent::retry`]).
//!
//! Components compose via a [`StrategyChain`] that folds responses in
//! order (the `ya-negotiator` chain pattern):
//!
//! * **participate / accept_award** — logical AND: any component can veto.
//! * **review_offer / review_candidate** — sequential transform: each
//!   component sees the offer/candidate as left by its predecessors and
//!   may mutate it; a withhold/reject short-circuits the rest.
//! * **select / retry** — first component with an opinion wins; with no
//!   opinionated component the chain falls back to the engine's legacy
//!   logic ([`select_winners`] / `round + 1 < max_rounds`).
//!
//! The **empty chain is the default** and its fold identities *are* the
//! pre-refactor engine logic, so default-configured engines behave
//! bit-for-bit as before (pinned by the `runtime_equivalence` system test
//! and the `strategy_props` chained-vs-reference property test).
//!
//! # Building a chain
//!
//! ```
//! use qosc_core::strategy::{
//!     BatteryGate, OrganizerStrategy, PatienceLimit, ProviderStrategy, ReputationScorer,
//!     ReservePrice,
//! };
//!
//! // A cautious provider: volunteers only above 30% remaining CPU and
//! // withholds offers degraded below an eq. 1 reward of 3.5.
//! let provider = ProviderStrategy::new()
//!     .with(BatteryGate { min_cpu_fraction: 0.3 })
//!     .with(ReservePrice { min_reward: 3.5 });
//! assert_eq!(format!("{provider:?}"), "[battery-gate, reserve-price]");
//!
//! // An organizer that penalises disreputable nodes and gives up after
//! // two rounds regardless of the engine's round budget.
//! let organizer = OrganizerStrategy::new()
//!     .with(ReputationScorer::uniform(0.9, 0.5))
//!     .with(PatienceLimit { rounds: 2 });
//! assert_eq!(organizer.len(), 2);
//! ```
//!
//! Wire chains through [`ProviderConfig::chain`](crate::ProviderConfig)
//! and [`OrganizerConfig::chain`](crate::OrganizerConfig); the engines,
//! all three runtime backends and the offline baselines (`qosc-baselines`
//! `Instance` path) consult them at every decision point. Experiment F8
//! compares chains head-to-head on the T4 push grid.
//!
//! # Adding a component
//!
//! Implement the trait (only the hooks you care about — every hook has a
//! behaviour-preserving default), give it a [`name`](ProviderComponent::name)
//! for `Debug` output, and push it onto a chain. Components must be
//! stateless (`Send + Sync`, shared by `Arc` across cloned configs);
//! anything they need at decision time arrives in the context structs.

use std::collections::BTreeMap;
use std::sync::Arc;

use qosc_netsim::SimDuration;
use qosc_resources::{ResourceKind, ResourceVector};
use qosc_spec::TaskId;

use crate::formation::{select_winners, Candidate, Selection, TieBreak};
use crate::protocol::Pid;

/// What a provider component sees when a Call-for-Proposals arrives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CfpContext {
    /// The provider's node id.
    pub node: Pid,
    /// Formation round of the CFP (0 = initial).
    pub round: u32,
    /// Number of tasks announced in the CFP.
    pub task_count: usize,
    /// Capacity currently uncommitted on this node.
    pub available: ResourceVector,
    /// The node's total capacity.
    pub capacity: ResourceVector,
}

/// One priced offer under chain review, before it is proposed.
///
/// `levels`/`demand`/`reward` arrive as the §5 formulation produced them;
/// components may mutate them (the engine re-derives the offered
/// attribute values from the final `levels`, clamped to each ladder).
/// The tentative hold is placed for the final `demand`.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskOffer {
    /// The task this offer prices.
    pub task: TaskId,
    /// Ladder level per requested attribute (0 = preferred).
    pub levels: Vec<usize>,
    /// Ladder length per requested attribute (levels are clamped to
    /// `ladder[i] - 1`).
    pub ladder: Vec<usize>,
    /// Resource demand the node will hold for this offer.
    pub demand: ResourceVector,
    /// The reward the proposal will declare (diagnostic; the §5 outcome's
    /// value — bundle-wide under joint pricing).
    pub reward: f64,
    /// This task's own eq. 1 reward at the *formulated* levels — the
    /// per-task value reserve-price policies threshold on. Read-only
    /// input: it is not recomputed between components.
    pub task_reward: f64,
}

impl TaskOffer {
    /// Degrades every attribute by `steps` ladder positions, clamped to
    /// the bottom of each ladder.
    pub fn degrade(&mut self, steps: usize) {
        for (l, &len) in self.levels.iter_mut().zip(self.ladder.iter()) {
            *l = (*l + steps).min(len.saturating_sub(1));
        }
    }
}

/// A provider component's verdict on a reviewed offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OfferResponse {
    /// Propose the (possibly adjusted) offer.
    #[default]
    Offer,
    /// Do not propose for this task (no hold is placed).
    Withhold,
}

/// What a provider component sees when an award arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AwardContext {
    /// The provider's node id.
    pub node: Pid,
    /// The awarded task.
    pub task: TaskId,
}

/// One link of a provider-side strategy chain.
///
/// Every hook defaults to the behaviour-preserving identity, so a
/// component only implements the decisions it cares about.
pub trait ProviderComponent: Send + Sync {
    /// Short identifier shown in `Debug` output of configs and chains.
    fn name(&self) -> &'static str;

    /// Whether this node volunteers for the CFP at all (AND-folded).
    fn participate(&self, _ctx: &CfpContext) -> bool {
        true
    }

    /// Adjusts or withholds one priced offer (sequential transform;
    /// `Withhold` short-circuits later components and drops the offer).
    fn review_offer(&self, _ctx: &CfpContext, _offer: &mut TaskOffer) -> OfferResponse {
        OfferResponse::Offer
    }

    /// Whether to honour an award whose hold is still alive (AND-folded;
    /// a veto declines the award and releases the hold).
    fn accept_award(&self, _ctx: &AwardContext) -> bool {
        true
    }
}

/// What an organizer component sees when reviewing one candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidateContext {
    /// The organizer's node id.
    pub organizer: Pid,
    /// The task the candidate proposes for.
    pub task: TaskId,
    /// Formation round the proposal answers.
    pub round: u32,
}

/// An organizer component's verdict on a reviewed candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CandidateResponse {
    /// Keep the (possibly rescored) candidate.
    #[default]
    Keep,
    /// Discard the candidate entirely.
    Reject,
}

/// What an organizer component sees when deciding retry vs give-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryContext {
    /// The round that just finished (0-based).
    pub round: u32,
    /// The engine's configured round budget.
    pub max_rounds: u32,
    /// Tasks still without a home.
    pub open_tasks: usize,
}

/// One link of an organizer-side strategy chain.
pub trait OrganizerComponent: Send + Sync {
    /// Short identifier shown in `Debug` output of configs and chains.
    fn name(&self) -> &'static str;

    /// Adjusts or rejects one admissible candidate (sequential transform;
    /// `Reject` short-circuits later components and drops the candidate).
    /// Rescored `distance`/`comm_cost` feed winner selection and the
    /// recorded task outcomes.
    fn review_candidate(
        &self,
        _ctx: &CandidateContext,
        _candidate: &mut Candidate,
    ) -> CandidateResponse {
        CandidateResponse::Keep
    }

    /// Overrides winner selection for the round. The first component
    /// returning `Some` wins; otherwise the chain falls back to
    /// [`select_winners`] under the configured tie-break.
    fn select(
        &self,
        _candidates: &BTreeMap<TaskId, Vec<Candidate>>,
        _tiebreak: &TieBreak,
    ) -> Option<Selection> {
        None
    }

    /// Overrides the retry decision after a round with open tasks. The
    /// first component returning `Some` wins; otherwise the legacy budget
    /// check `round + 1 < max_rounds` applies.
    fn retry(&self, _ctx: &RetryContext) -> Option<bool> {
        None
    }

    /// Delay before the retry round's CFP is re-announced. The first
    /// component returning `Some` wins; with no opinion (or a zero
    /// delay) the engine re-announces immediately, exactly the legacy
    /// behaviour. Only consulted when the chain decided to retry.
    fn backoff(&self, _ctx: &RetryContext) -> Option<SimDuration> {
        None
    }
}

/// An ordered chain of strategy components sharing one trait.
///
/// The chain folds component responses in order (see the module docs for
/// the per-hook fold semantics). The empty chain is `Default` and folds
/// to exactly the pre-refactor engine behaviour.
pub struct StrategyChain<C: ?Sized> {
    components: Vec<Arc<C>>,
}

/// Provider-side chain (see [`ProviderComponent`]).
pub type ProviderStrategy = StrategyChain<dyn ProviderComponent>;

/// Organizer-side chain (see [`OrganizerComponent`]).
pub type OrganizerStrategy = StrategyChain<dyn OrganizerComponent>;

impl<C: ?Sized> Clone for StrategyChain<C> {
    fn clone(&self) -> Self {
        Self {
            components: self.components.clone(),
        }
    }
}

impl<C: ?Sized> Default for StrategyChain<C> {
    fn default() -> Self {
        Self {
            components: Vec::new(),
        }
    }
}

impl<C: ?Sized> StrategyChain<C> {
    /// Number of components in the chain.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// True for the default (behaviour-identical) chain.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }
}

impl ProviderStrategy {
    /// The empty (default-behaviour) chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a component (builder style).
    pub fn with(mut self, component: impl ProviderComponent + 'static) -> Self {
        self.components.push(Arc::new(component));
        self
    }

    /// AND-fold of [`ProviderComponent::participate`].
    pub fn participates(&self, ctx: &CfpContext) -> bool {
        self.components.iter().all(|c| c.participate(ctx))
    }

    /// Sequential-transform fold of [`ProviderComponent::review_offer`];
    /// returns `false` when any component withholds the offer.
    pub fn review_offer(&self, ctx: &CfpContext, offer: &mut TaskOffer) -> bool {
        self.components
            .iter()
            .all(|c| c.review_offer(ctx, offer) == OfferResponse::Offer)
    }

    /// AND-fold of [`ProviderComponent::accept_award`].
    pub fn accepts_award(&self, ctx: &AwardContext) -> bool {
        self.components.iter().all(|c| c.accept_award(ctx))
    }
}

impl OrganizerStrategy {
    /// The empty (default-behaviour) chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a component (builder style).
    pub fn with(mut self, component: impl OrganizerComponent + 'static) -> Self {
        self.components.push(Arc::new(component));
        self
    }

    /// Sequential-transform fold of
    /// [`OrganizerComponent::review_candidate`]; returns `false` when any
    /// component rejects the candidate.
    pub fn review_candidate(&self, ctx: &CandidateContext, candidate: &mut Candidate) -> bool {
        self.components
            .iter()
            .all(|c| c.review_candidate(ctx, candidate) == CandidateResponse::Keep)
    }

    /// First-opinion fold of [`OrganizerComponent::select`], falling back
    /// to [`select_winners`] under `tiebreak`.
    pub fn select(
        &self,
        candidates: &BTreeMap<TaskId, Vec<Candidate>>,
        tiebreak: &TieBreak,
    ) -> Selection {
        self.components
            .iter()
            .find_map(|c| c.select(candidates, tiebreak))
            .unwrap_or_else(|| select_winners(candidates, tiebreak))
    }

    /// First-opinion fold of [`OrganizerComponent::retry`], falling back
    /// to the legacy budget check `round + 1 < max_rounds`.
    pub fn retries(&self, ctx: &RetryContext) -> bool {
        self.components
            .iter()
            .find_map(|c| c.retry(ctx))
            .unwrap_or(ctx.round + 1 < ctx.max_rounds)
    }

    /// First-opinion fold of [`OrganizerComponent::backoff`]: the delay
    /// before the retry CFP, or `None`/zero for the legacy immediate
    /// re-announce.
    pub fn backoff_delay(&self, ctx: &RetryContext) -> Option<SimDuration> {
        self.components.iter().find_map(|c| c.backoff(ctx))
    }
}

impl std::fmt::Debug for ProviderStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.components.iter().map(|c| Name(c.name())))
            .finish()
    }
}

impl std::fmt::Debug for OrganizerStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.components.iter().map(|c| Name(c.name())))
            .finish()
    }
}

/// Renders a component name unquoted inside `Debug` lists.
struct Name(&'static str);

impl std::fmt::Debug for Name {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

// ---------------------------------------------------------------------------
// Shipped components
// ---------------------------------------------------------------------------

/// Provider: withhold offers whose per-task eq. 1 reward fell below a
/// reserve — "don't bother serving a quality this degraded".
///
/// At the preferred levels the eq. 1 reward equals the number of
/// requested attributes (4 for the catalog A/V spec), and every
/// degradation step subtracts its weighted penalty, so a reserve close to
/// the attribute count keeps only near-preferred offers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReservePrice {
    /// Minimum acceptable per-task eq. 1 reward.
    pub min_reward: f64,
}

impl ProviderComponent for ReservePrice {
    fn name(&self) -> &'static str {
        "reserve-price"
    }

    fn review_offer(&self, _ctx: &CfpContext, offer: &mut TaskOffer) -> OfferResponse {
        if offer.task_reward < self.min_reward {
            OfferResponse::Withhold
        } else {
            OfferResponse::Offer
        }
    }
}

/// Provider: a battery/participation gate — the node stops volunteering
/// when its uncommitted CPU falls below a fraction of total capacity
/// (a stand-in for "battery below threshold: stop accepting work").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatteryGate {
    /// Volunteer only while `available CPU / capacity CPU` ≥ this.
    pub min_cpu_fraction: f64,
}

impl ProviderComponent for BatteryGate {
    fn name(&self) -> &'static str {
        "battery-gate"
    }

    fn participate(&self, ctx: &CfpContext) -> bool {
        let capacity = ctx.capacity.get(ResourceKind::Cpu);
        if capacity <= 0.0 {
            return false;
        }
        ctx.available.get(ResourceKind::Cpu) / capacity >= self.min_cpu_fraction
    }
}

/// Provider: a priced/selfish provider — offers `degrade_steps` ladder
/// positions below what it formulated (withholding quality it could
/// deliver) and marks the declared reward up by `markup`.
///
/// The hold still covers the formulated demand; the markup only affects
/// the proposal's diagnostic reward field (selection never reads it), so
/// the observable effect is the degraded offered quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelfishMarkup {
    /// Ladder steps to degrade every offered attribute by.
    pub degrade_steps: usize,
    /// Factor applied to the declared reward.
    pub markup: f64,
}

impl ProviderComponent for SelfishMarkup {
    fn name(&self) -> &'static str {
        "selfish-markup"
    }

    fn review_offer(&self, _ctx: &CfpContext, offer: &mut TaskOffer) -> OfferResponse {
        offer.degrade(self.degrade_steps);
        offer.reward *= self.markup;
        OfferResponse::Offer
    }
}

/// Organizer: reputation-weighted scoring — adds a distance penalty to
/// candidates from disreputable nodes, so equal offers resolve toward
/// trusted providers (and bad enough reputations lose even to slightly
/// worse offers).
///
/// Reputations are supplied as a static map (this engine has no opinion
/// on how trust is earned); unknown nodes get `default_reputation`. The
/// penalty is additive — `distance += weight · (1 − reputation)` — so it
/// still bites when every offer scores a perfect 0 distance.
#[derive(Debug, Clone, PartialEq)]
pub struct ReputationScorer {
    /// Reputation per node in `[0, 1]` (1 = fully trusted).
    pub reputations: BTreeMap<Pid, f64>,
    /// Reputation assumed for nodes missing from the map.
    pub default_reputation: f64,
    /// Distance penalty per unit of missing reputation.
    pub weight: f64,
}

impl ReputationScorer {
    /// A scorer with no per-node entries: every node gets
    /// `default_reputation`.
    pub fn uniform(default_reputation: f64, weight: f64) -> Self {
        Self {
            reputations: BTreeMap::new(),
            default_reputation,
            weight,
        }
    }
}

impl OrganizerComponent for ReputationScorer {
    fn name(&self) -> &'static str {
        "reputation-scorer"
    }

    fn review_candidate(
        &self,
        _ctx: &CandidateContext,
        candidate: &mut Candidate,
    ) -> CandidateResponse {
        let rep = self
            .reputations
            .get(&candidate.node)
            .copied()
            .unwrap_or(self.default_reputation);
        candidate.distance += self.weight * (1.0 - rep).max(0.0);
        CandidateResponse::Keep
    }
}

/// Organizer: gives up after a fixed number of rounds, regardless of the
/// engine's configured budget (an impatient requester).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatienceLimit {
    /// Total rounds to attempt (1 = never retry).
    pub rounds: u32,
}

impl OrganizerComponent for PatienceLimit {
    fn name(&self) -> &'static str {
        "patience-limit"
    }

    fn retry(&self, ctx: &RetryContext) -> Option<bool> {
        Some(ctx.round + 1 < self.rounds.min(ctx.max_rounds))
    }
}

/// Organizer: timeout + exponential-backoff re-announce — the
/// partition-tolerant retry policy. After a round ends with open tasks,
/// the organizer waits `base · factor^round` (capped at `max_delay`)
/// before re-announcing them, instead of the legacy immediate retry, so
/// re-announcements thin out while a partition persists and the first
/// CFP after a heal finds providers with capacity to offer.
///
/// `max_attempts` caps total rounds like [`PatienceLimit`] (the engine's
/// `max_rounds` budget still applies on top). Timer-driven via
/// `TimerKind::ReAnnounce`, so it works unmodified on every backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutBackoff {
    /// Delay before the first retry round.
    pub base: SimDuration,
    /// Multiplier applied per completed round.
    pub factor: f64,
    /// Ceiling on the computed delay.
    pub max_delay: SimDuration,
    /// Total rounds to attempt (1 = never retry).
    pub max_attempts: u32,
}

impl TimeoutBackoff {
    /// A conventional doubling policy: `base`, ×2 per round, capped at
    /// 16×`base`, up to `max_attempts` rounds.
    pub fn doubling(base: SimDuration, max_attempts: u32) -> Self {
        Self {
            base,
            factor: 2.0,
            max_delay: SimDuration::micros(base.as_micros().saturating_mul(16)),
            max_attempts,
        }
    }
}

impl OrganizerComponent for TimeoutBackoff {
    fn name(&self) -> &'static str {
        "timeout-backoff"
    }

    fn retry(&self, ctx: &RetryContext) -> Option<bool> {
        Some(ctx.round + 1 < self.max_attempts.min(ctx.max_rounds))
    }

    fn backoff(&self, ctx: &RetryContext) -> Option<SimDuration> {
        let scaled = self.base.as_micros() as f64 * self.factor.powi(ctx.round as i32);
        Some(SimDuration::micros(
            (scaled as u64).min(self.max_delay.as_micros()),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfp_ctx(available_cpu: f64, capacity_cpu: f64) -> CfpContext {
        CfpContext {
            node: 3,
            round: 0,
            task_count: 2,
            available: ResourceVector::new(available_cpu, 256.0, 1000.0, 10.0, 1000.0),
            capacity: ResourceVector::new(capacity_cpu, 256.0, 1000.0, 10.0, 1000.0),
        }
    }

    fn offer(levels: Vec<usize>, task_reward: f64) -> TaskOffer {
        let ladder = vec![10; levels.len()];
        TaskOffer {
            task: TaskId(0),
            levels,
            ladder,
            demand: ResourceVector::ZERO,
            reward: task_reward,
            task_reward,
        }
    }

    #[test]
    fn empty_chain_folds_to_legacy_behaviour() {
        let p = ProviderStrategy::new();
        assert!(p.participates(&cfp_ctx(0.0, 100.0)));
        let mut o = offer(vec![1, 2], 3.0);
        let before = o.clone();
        assert!(p.review_offer(&cfp_ctx(50.0, 100.0), &mut o));
        assert_eq!(o, before);
        assert!(p.accepts_award(&AwardContext {
            node: 3,
            task: TaskId(0)
        }));

        let org = OrganizerStrategy::new();
        let mut cands = BTreeMap::new();
        cands.insert(
            TaskId(0),
            vec![Candidate {
                node: 7,
                distance: 0.25,
                comm_cost: 1.0,
            }],
        );
        let tb = TieBreak::default();
        assert_eq!(org.select(&cands, &tb), select_winners(&cands, &tb));
        assert!(org.retries(&RetryContext {
            round: 0,
            max_rounds: 4,
            open_tasks: 1
        }));
        assert!(!org.retries(&RetryContext {
            round: 3,
            max_rounds: 4,
            open_tasks: 1
        }));
    }

    #[test]
    fn reserve_price_withholds_below_threshold() {
        let chain = ProviderStrategy::new().with(ReservePrice { min_reward: 3.5 });
        let ctx = cfp_ctx(100.0, 100.0);
        let mut cheap = offer(vec![5, 5], 2.0);
        assert!(!chain.review_offer(&ctx, &mut cheap));
        let mut rich = offer(vec![0, 0], 4.0);
        assert!(chain.review_offer(&ctx, &mut rich));
    }

    #[test]
    fn battery_gate_vetoes_participation() {
        let chain = ProviderStrategy::new().with(BatteryGate {
            min_cpu_fraction: 0.5,
        });
        assert!(chain.participates(&cfp_ctx(60.0, 100.0)));
        assert!(!chain.participates(&cfp_ctx(40.0, 100.0)));
        // A zero-capacity node never participates (no division by zero).
        assert!(!chain.participates(&cfp_ctx(0.0, 0.0)));
    }

    #[test]
    fn selfish_markup_degrades_and_marks_up() {
        let chain = ProviderStrategy::new().with(SelfishMarkup {
            degrade_steps: 2,
            markup: 1.5,
        });
        let mut o = offer(vec![0, 9], 4.0);
        assert!(chain.review_offer(&cfp_ctx(100.0, 100.0), &mut o));
        // Degraded by 2, clamped at the ladder bottom (len 10 → max 9).
        assert_eq!(o.levels, vec![2, 9]);
        assert!((o.reward - 6.0).abs() < 1e-12);
        // task_reward stays the formulated-levels value.
        assert!((o.task_reward - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reputation_scorer_penalises_untrusted_nodes() {
        let mut reputations = BTreeMap::new();
        reputations.insert(7u32, 0.0);
        let chain = OrganizerStrategy::new().with(ReputationScorer {
            reputations,
            default_reputation: 1.0,
            weight: 0.4,
        });
        let ctx = CandidateContext {
            organizer: 0,
            task: TaskId(0),
            round: 0,
        };
        let mut untrusted = Candidate {
            node: 7,
            distance: 0.0,
            comm_cost: 1.0,
        };
        assert!(chain.review_candidate(&ctx, &mut untrusted));
        assert!((untrusted.distance - 0.4).abs() < 1e-12);
        let mut trusted = Candidate {
            node: 9,
            distance: 0.0,
            comm_cost: 1.0,
        };
        assert!(chain.review_candidate(&ctx, &mut trusted));
        assert_eq!(trusted.distance, 0.0);
    }

    #[test]
    fn patience_limit_overrides_round_budget() {
        let chain = OrganizerStrategy::new().with(PatienceLimit { rounds: 2 });
        let ctx = |round| RetryContext {
            round,
            max_rounds: 8,
            open_tasks: 1,
        };
        assert!(chain.retries(&ctx(0)));
        assert!(!chain.retries(&ctx(1)));
    }

    #[test]
    fn timeout_backoff_grows_and_caps() {
        let chain = OrganizerStrategy::new().with(TimeoutBackoff {
            base: SimDuration::millis(10),
            factor: 2.0,
            max_delay: SimDuration::millis(35),
            max_attempts: 4,
        });
        let ctx = |round| RetryContext {
            round,
            max_rounds: 8,
            open_tasks: 1,
        };
        assert_eq!(chain.backoff_delay(&ctx(0)), Some(SimDuration::millis(10)));
        assert_eq!(chain.backoff_delay(&ctx(1)), Some(SimDuration::millis(20)));
        // 40 ms exceeds the cap.
        assert_eq!(chain.backoff_delay(&ctx(2)), Some(SimDuration::millis(35)));
        // Attempt budget: 4 total rounds.
        assert!(chain.retries(&ctx(2)));
        assert!(!chain.retries(&ctx(3)));
        // The empty chain has no backoff opinion (legacy immediate retry).
        assert_eq!(OrganizerStrategy::new().backoff_delay(&ctx(0)), None);
    }

    #[test]
    fn chain_folds_in_order_and_short_circuits() {
        // Markup first degrades; a later reserve on task_reward still sees
        // the formulated value (documented read-only semantics), while a
        // reserve on the declared reward would see the marked-up one.
        let chain = ProviderStrategy::new()
            .with(SelfishMarkup {
                degrade_steps: 1,
                markup: 2.0,
            })
            .with(ReservePrice { min_reward: 3.5 });
        let mut o = offer(vec![0], 4.0);
        assert!(chain.review_offer(&cfp_ctx(100.0, 100.0), &mut o));
        assert_eq!(o.levels, vec![1]);

        // Withhold short-circuits: the markup after the reserve never runs.
        let chain = ProviderStrategy::new()
            .with(ReservePrice { min_reward: 5.0 })
            .with(SelfishMarkup {
                degrade_steps: 1,
                markup: 2.0,
            });
        let mut o = offer(vec![0], 4.0);
        assert!(!chain.review_offer(&cfp_ctx(100.0, 100.0), &mut o));
        assert_eq!(o.levels, vec![0], "later components must not run");
    }

    #[test]
    fn debug_lists_component_names() {
        let p = ProviderStrategy::new()
            .with(BatteryGate {
                min_cpu_fraction: 0.1,
            })
            .with(SelfishMarkup {
                degrade_steps: 1,
                markup: 1.0,
            });
        assert_eq!(format!("{p:?}"), "[battery-gate, selfish-markup]");
        let o = OrganizerStrategy::new().with(PatienceLimit { rounds: 1 });
        assert_eq!(format!("{o:?}"), "[patience-limit]");
        assert_eq!(format!("{:?}", OrganizerStrategy::new()), "[]");
    }
}
