//! The Negotiation Organizer engine (paper §4.2).
//!
//! "When a user requests a service, with its specific QoS preferences, on a
//! particular node the QoS Provider starts and guides all the negotiation
//! process. It plays the role of Negotiation Organizer."
//!
//! The engine is sans-IO: every input (message, timer) returns a list of
//! [`Action`]s for the transport to execute. One engine instance lives on
//! every node that originates services; it can run any number of
//! negotiations concurrently, each keyed by [`NegoId`].
//!
//! State machine per negotiation:
//!
//! ```text
//!            start_service
//!                 │ broadcast CFP, arm proposal deadline
//!                 ▼
//!           ┌─ Collecting ─┐ proposal deadline: evaluate (eq. 2–5),
//!           │              │ select winners (§4.2 tie-break), send awards
//!           ▼              │
//!        Awarding ◄────────┘
//!           │ all accepts (or award deadline): unplaced tasks retry in a
//!           │ new round (bounded); otherwise →
//!           ▼
//!        Operating — heartbeat monitoring; a missed member triggers a
//!           │         reconfiguration round for its tasks (Formation
//!           │         phase again, other members keep running)
//!           ▼
//!        Dissolved — host-requested or nothing placed.
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};

use qosc_netsim::{SimDuration, SimTime};
use qosc_spec::{ServiceDef, SpecError, TaskId};

use crate::compiled::CompiledRequest;
use crate::evaluation::EvalConfig;
use crate::formation::{Candidate, TieBreak};
use crate::metrics::{NegoEvent, NegotiationMetrics, TaskOutcome};
use crate::protocol::{
    encode_timer, Action, Msg, NegoId, Pid, TaskAnnouncement, TaskProposal, TimerKind,
};
use crate::strategy::{CandidateContext, OrganizerStrategy, RetryContext};

/// Organizer tunables.
#[derive(Debug, Clone)]
pub struct OrganizerConfig {
    /// How long to collect proposals after a CFP.
    pub proposal_wait: SimDuration,
    /// How long to wait for winners' accepts.
    pub award_wait: SimDuration,
    /// Member heartbeat period expected during operation.
    pub heartbeat_interval: SimDuration,
    /// Consecutive missed heartbeats before a member is declared failed.
    pub miss_threshold: u32,
    /// Maximum formation rounds (initial + retries + reconfigurations).
    pub max_rounds: u32,
    /// Winner-selection tie-break (§4.2).
    pub tiebreak: TieBreak,
    /// Evaluation knobs (eqs. 2–5).
    pub eval: EvalConfig,
    /// Enable operation-phase heartbeat monitoring.
    pub monitor: bool,
    /// Piggy-back [`Msg::LeaseRenew`] unicasts on every heartbeat check so
    /// members with a `commit_ttl` keep their leases alive while the
    /// organizer is reachable. Off by default: leases only matter when the
    /// provider side arms them (see `ProviderConfig::commit_ttl`).
    pub renew_leases: bool,
    /// Pluggable decision chain consulted when filtering candidates,
    /// selecting winners and deciding retry vs give-up; empty = exact
    /// pre-chain behaviour (see [`crate::strategy`]).
    pub chain: OrganizerStrategy,
}

impl Default for OrganizerConfig {
    fn default() -> Self {
        Self {
            proposal_wait: SimDuration::millis(100),
            award_wait: SimDuration::millis(100),
            heartbeat_interval: SimDuration::millis(500),
            miss_threshold: 3,
            max_rounds: 4,
            tiebreak: TieBreak::default(),
            eval: EvalConfig::default(),
            monitor: true,
            renew_leases: false,
            chain: OrganizerStrategy::default(),
        }
    }
}

impl OrganizerConfig {
    /// The canonical tuning for exhaustive model checking (`qosc-mc`).
    ///
    /// The explorer is time-abstract — it visits every ordering of timer
    /// firings and message deliveries no matter what the durations say —
    /// so all waits are pinned to zero: nonzero durations only multiply
    /// path-dependent clock values (armed deadlines, metric timestamps)
    /// into the canonical state digest, exploding behaviourally identical
    /// states apart. Monitoring is off because its heartbeat-check timer
    /// re-arms forever, leaving no quiescent states to judge liveness on,
    /// and the round budget is one: a single CFP round is the checkable
    /// unit (every retry round multiplies the interleaving graph; raise
    /// `max_rounds` deliberately if retry behaviour is what you are
    /// checking).
    pub fn for_model_checking() -> Self {
        Self {
            proposal_wait: SimDuration::ZERO,
            award_wait: SimDuration::ZERO,
            max_rounds: 1,
            monitor: false,
            ..Self::default()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Collecting,
    Awarding,
    Operating,
    Dissolved,
}

/// Externally observable phase of one negotiation — a read-only mirror of
/// the private state machine, exposed for model-checking invariants
/// (liveness-under-quiescence asserts every negotiation settles in
/// `Operating` or `Dissolved`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegoPhase {
    /// Proposals are being collected for the current round's CFP.
    Collecting,
    /// Awards are out, waiting for accepts/declines.
    Awarding,
    /// The coalition formed (possibly partially) and is executing.
    Operating,
    /// Dissolved, or formation failed entirely.
    Dissolved,
}

impl From<State> for NegoPhase {
    fn from(s: State) -> Self {
        match s {
            State::Collecting => NegoPhase::Collecting,
            State::Awarding => NegoPhase::Awarding,
            State::Operating => NegoPhase::Operating,
            State::Dissolved => NegoPhase::Dissolved,
        }
    }
}

/// Snapshot of where every announced task of one negotiation currently
/// lives in its lifecycle. The sets partition the announced tasks (modulo
/// `open ∩ pending = ∅` etc.) — the model checker's task-conservation
/// invariant asserts exactly that.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskLifecycle {
    /// Every task the service announced.
    pub announced: BTreeSet<TaskId>,
    /// Tasks still open for (re-)solicitation in the current round.
    pub open: BTreeSet<TaskId>,
    /// Tasks awarded and awaiting an accept, with the awarded node.
    pub pending: BTreeMap<TaskId, Pid>,
    /// Tasks accepted, with the executing node.
    pub assigned: BTreeMap<TaskId, Pid>,
    /// Tasks abandoned after the round budget ran out.
    pub given_up: BTreeSet<TaskId>,
}

#[derive(Clone)]
struct Nego {
    state: State,
    round: u32,
    announcements: BTreeMap<TaskId, TaskAnnouncement>,
    /// Digest of `announcements`, computed once at creation: the map is
    /// immutable for the negotiation's lifetime and hashing its full
    /// content on every snapshot dominates the model checker's profile.
    announcements_digest: u64,
    /// Per-task compiled evaluation tables (weights, normalizers,
    /// Quality-Index positions), built once when the service starts so
    /// every incoming proposal prices without re-walking the spec.
    compiled: BTreeMap<TaskId, CompiledRequest>,
    /// Tasks solicited in the current round.
    open: BTreeSet<TaskId>,
    /// Evaluated admissible candidates per open task.
    candidates: BTreeMap<TaskId, Vec<Candidate>>,
    /// Awards awaiting an accept.
    pending: BTreeMap<TaskId, Pid>,
    /// Accepted assignments (operating members).
    assignments: BTreeMap<TaskId, Pid>,
    /// Last heartbeat per operating task.
    last_heartbeat: HashMap<TaskId, SimTime>,
    /// Tasks that exhausted all rounds.
    given_up: BTreeSet<TaskId>,
    metrics: NegotiationMetrics,
}

/// The sans-IO Negotiation Organizer.
#[derive(Clone)]
pub struct OrganizerEngine {
    id: Pid,
    config: OrganizerConfig,
    negotiations: HashMap<NegoId, Nego>,
    next_seq: u32,
}

impl OrganizerEngine {
    /// Creates an organizer for node `id`.
    pub fn new(id: Pid, config: OrganizerConfig) -> Self {
        Self {
            id,
            config,
            negotiations: HashMap::new(),
            next_seq: 0,
        }
    }

    /// This organizer's node id.
    pub fn id(&self) -> Pid {
        self.id
    }

    /// Metrics of a negotiation, if known.
    pub fn metrics(&self, nego: NegoId) -> Option<&NegotiationMetrics> {
        self.negotiations.get(&nego).map(|n| &n.metrics)
    }

    /// Current assignments of a negotiation.
    pub fn assignments(&self, nego: NegoId) -> Option<&BTreeMap<TaskId, Pid>> {
        self.negotiations.get(&nego).map(|n| &n.assignments)
    }

    /// True once the negotiation reached the operating state.
    pub fn is_operating(&self, nego: NegoId) -> bool {
        self.negotiations
            .get(&nego)
            .map(|n| n.state == State::Operating)
            .unwrap_or(false)
    }

    /// Observable phase of a negotiation, if known.
    pub fn phase(&self, nego: NegoId) -> Option<NegoPhase> {
        self.negotiations.get(&nego).map(|n| n.state.into())
    }

    /// Every negotiation this organizer has started, sorted.
    pub fn nego_ids(&self) -> Vec<NegoId> {
        let mut v: Vec<NegoId> = self.negotiations.keys().copied().collect();
        v.sort();
        v
    }

    /// Lifecycle partition of a negotiation's tasks, if known.
    pub fn task_lifecycle(&self, nego: NegoId) -> Option<TaskLifecycle> {
        self.negotiations.get(&nego).map(|n| TaskLifecycle {
            announced: n.announcements.keys().copied().collect(),
            open: n.open.clone(),
            pending: n.pending.clone(),
            assigned: n.assignments.clone(),
            given_up: n.given_up.clone(),
        })
    }

    /// Starts the negotiation for `service` (step 1: broadcast the service
    /// description and the user's preferences). Fails fast if any task's
    /// request does not resolve against its spec.
    pub fn start_service(
        &mut self,
        now: SimTime,
        service: &ServiceDef,
    ) -> Result<(NegoId, Vec<Action>), SpecError> {
        let nego = NegoId {
            organizer: self.id,
            seq: self.next_seq,
        };
        let mut announcements = BTreeMap::new();
        let mut compiled = BTreeMap::new();
        for (tid, task) in service.iter() {
            let r = task.resolve()?;
            compiled.insert(
                tid,
                CompiledRequest::compile(&task.spec, &r, self.config.eval),
            );
            announcements.insert(
                tid,
                TaskAnnouncement {
                    task: tid,
                    spec: task.spec.clone(),
                    request: task.request.clone(),
                    input_bytes: task.input_bytes,
                    output_bytes: task.output_bytes,
                },
            );
        }
        self.next_seq += 1;
        let open: BTreeSet<TaskId> = announcements.keys().copied().collect();
        let announcements_digest = {
            let mut h = crate::snapshot::StableHasher::new();
            // BTreeMap: deterministic order, so Debug form is canonical.
            h.write_str(&format!("{announcements:?}"));
            h.finish()
        };
        let mut nego_state = Nego {
            state: State::Collecting,
            round: 0,
            announcements,
            announcements_digest,
            compiled,
            open,
            candidates: BTreeMap::new(),
            pending: BTreeMap::new(),
            assignments: BTreeMap::new(),
            last_heartbeat: HashMap::new(),
            given_up: BTreeSet::new(),
            metrics: NegotiationMetrics {
                started_at: Some(now),
                ..Default::default()
            },
        };
        let actions = Self::issue_cfp(&self.config, nego, &mut nego_state);
        self.negotiations.insert(nego, nego_state);
        Ok((nego, actions))
    }

    /// Builds the CFP broadcast + proposal deadline for the current round.
    fn issue_cfp(config: &OrganizerConfig, nego: NegoId, n: &mut Nego) -> Vec<Action> {
        n.state = State::Collecting;
        n.candidates.clear();
        let tasks: Vec<TaskAnnouncement> =
            n.open.iter().map(|t| n.announcements[t].clone()).collect();
        vec![
            Action::broadcast(Msg::CallForProposals {
                nego,
                tasks,
                round: n.round,
            }),
            Action::Timer {
                delay: config.proposal_wait,
                token: encode_timer(nego, TimerKind::ProposalDeadline),
            },
        ]
    }

    /// Handles an inbound protocol message addressed to this organizer.
    pub fn on_message(&mut self, now: SimTime, from: Pid, msg: &Msg) -> Vec<Action> {
        match msg {
            Msg::Proposal {
                nego,
                from: sender,
                proposals,
            } => self.on_proposal(*nego, *sender, proposals),
            Msg::Accept {
                nego,
                task,
                from,
                round,
            } => self.on_accept(now, *nego, *task, *from, *round),
            Msg::Decline {
                nego,
                task,
                from,
                round,
            } => self.on_decline(now, *nego, *task, *from, *round),
            Msg::Heartbeat { nego, task, from } => {
                self.on_heartbeat(now, *nego, *task, *from);
                Vec::new()
            }
            // CFP / Award / Release are provider-side messages.
            _ => {
                let _ = from;
                Vec::new()
            }
        }
    }

    /// Handles a timer previously armed by this organizer.
    pub fn on_timer(&mut self, now: SimTime, nego: NegoId, kind: TimerKind) -> Vec<Action> {
        match kind {
            TimerKind::ProposalDeadline => self.on_proposal_deadline(now, nego),
            TimerKind::AwardDeadline => self.on_award_deadline(now, nego),
            TimerKind::HeartbeatCheck => self.on_heartbeat_check(now, nego),
            TimerKind::ReAnnounce => self.on_re_announce(nego),
            _ => Vec::new(),
        }
    }

    fn on_proposal(&mut self, nego: NegoId, from: Pid, proposals: &[TaskProposal]) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state != State::Collecting {
            return Vec::new(); // late proposal; round already closed
        }
        n.metrics.proposal_bundles += 1;
        for p in proposals {
            if !n.open.contains(&p.task) {
                continue;
            }
            let Some(compiled) = n.compiled.get(&p.task) else {
                continue;
            };
            let ann = &n.announcements[&p.task];
            // Step 3 precondition + eq. 2 scoring in one fused pass (§6);
            // inadmissible proposals are discarded.
            let Some(distance) = compiled.score(&p.offered) else {
                continue;
            };
            let comm_cost = if from == self.id {
                0.0
            } else if p.link_kbps > 0.0 {
                ((ann.input_bytes + ann.output_bytes) as f64 * 8.0) / (p.link_kbps * 1000.0)
            } else {
                f64::INFINITY
            };
            // Strategy-chain candidate review: components may rescore
            // (reputation weighting) or reject outright. The empty chain
            // keeps the eq. 2 scores untouched.
            let mut candidate = Candidate {
                node: from,
                distance,
                comm_cost,
            };
            let ctx = CandidateContext {
                organizer: self.id,
                task: p.task,
                round: n.round,
            };
            if !self.config.chain.review_candidate(&ctx, &mut candidate) {
                continue;
            }
            n.candidates.entry(p.task).or_default().push(candidate);
        }
        Vec::new()
    }

    fn on_proposal_deadline(&mut self, now: SimTime, nego: NegoId) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state != State::Collecting {
            return Vec::new();
        }
        // Ensure every open task has an entry so unassigned is accurate.
        let mut per_task: BTreeMap<TaskId, Vec<Candidate>> = BTreeMap::new();
        for t in &n.open {
            per_task.insert(*t, n.candidates.get(t).cloned().unwrap_or_default());
        }
        // Winner selection through the chain: the first component with an
        // opinion overrides; otherwise the §4.2 greedy tie-break applies.
        let selection = self.config.chain.select(&per_task, &self.config.tiebreak);
        let mut actions = Vec::new();
        n.pending.clear();
        for (task, node) in &selection.assignments {
            n.pending.insert(*task, *node);
            n.metrics.awards_sent += 1;
            actions.push(Action::send(
                *node,
                Msg::Award {
                    nego,
                    task: *task,
                    round: n.round,
                },
            ));
        }
        // Tasks with no candidates stay open for the next round.
        n.open = selection.unassigned.iter().copied().collect();
        if n.pending.is_empty() {
            // Nothing to award: either retry or give up immediately.
            return self.finish_round(now, nego);
        }
        n.state = State::Awarding;
        actions.push(Action::Timer {
            delay: self.config.award_wait,
            token: encode_timer(nego, TimerKind::AwardDeadline),
        });
        actions
    }

    fn on_accept(
        &mut self,
        now: SimTime,
        nego: NegoId,
        task: TaskId,
        from: Pid,
        round: u32,
    ) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if round != n.round {
            // An answer to a superseded award: the provider has (or will)
            // release that grant on seeing the fresh round's CFP, so
            // recording it would orphan the assignment.
            return Vec::new();
        }
        if n.pending.get(&task) != Some(&from) {
            return Vec::new(); // stale or bogus accept
        }
        n.pending.remove(&task);
        n.assignments.insert(task, from);
        n.last_heartbeat.insert(task, now);
        // Record the outcome from the winning candidate's scores.
        if let Some(c) = n
            .candidates
            .get(&task)
            .and_then(|cs| cs.iter().find(|c| c.node == from))
        {
            n.metrics.outcomes.insert(
                task,
                TaskOutcome {
                    node: from,
                    distance: c.distance,
                    comm_cost: c.comm_cost,
                },
            );
        }
        if n.pending.is_empty() && n.state == State::Awarding {
            return self.finish_round(now, nego);
        }
        Vec::new()
    }

    fn on_decline(
        &mut self,
        now: SimTime,
        nego: NegoId,
        task: TaskId,
        from: Pid,
        round: u32,
    ) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if round != n.round {
            return Vec::new(); // answer to a superseded award
        }
        if n.pending.get(&task) != Some(&from) {
            return Vec::new();
        }
        n.pending.remove(&task);
        n.metrics.declines += 1;
        // Strike the declining node's candidate so the retry round does not
        // re-select it immediately.
        if let Some(cs) = n.candidates.get_mut(&task) {
            cs.retain(|c| c.node != from);
        }
        n.open.insert(task);
        if n.pending.is_empty() && n.state == State::Awarding {
            return self.finish_round(now, nego);
        }
        Vec::new()
    }

    fn on_award_deadline(&mut self, now: SimTime, nego: NegoId) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state != State::Awarding {
            return Vec::new();
        }
        // Silent winners are treated as declined.
        let silent: Vec<(TaskId, Pid)> = n.pending.iter().map(|(t, p)| (*t, *p)).collect();
        for (task, node) in silent {
            n.pending.remove(&task);
            n.metrics.declines += 1;
            if let Some(cs) = n.candidates.get_mut(&task) {
                cs.retain(|c| c.node != node);
            }
            n.open.insert(task);
        }
        self.finish_round(now, nego)
    }

    /// Fires when a backoff delay elapses: issues the already-advanced
    /// round's CFP. Guarded on `Collecting` so a dissolve (or any other
    /// state change) during the backoff window makes the timer inert.
    fn on_re_announce(&mut self, nego: NegoId) -> Vec<Action> {
        let config = self.config.clone();
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state != State::Collecting || n.open.is_empty() {
            return Vec::new();
        }
        Self::issue_cfp(&config, nego, n)
    }

    /// Closes the current round: retries unplaced tasks in a new round if
    /// the budget allows, otherwise settles the negotiation.
    fn finish_round(&mut self, now: SimTime, nego: NegoId) -> Vec<Action> {
        let config = self.config.clone();
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        // Retry vs give-up through the chain; the default fold is the
        // legacy round-budget check.
        let retry = !n.open.is_empty()
            && config.chain.retries(&RetryContext {
                round: n.round,
                max_rounds: config.max_rounds,
                open_tasks: n.open.len(),
            });
        if retry {
            // A backoff-aware chain delays the retry CFP instead of
            // re-announcing immediately — under a network partition an
            // immediate CFP just burns the round budget into the void.
            // The delay is chosen from the *closing* round's context, the
            // round counter advances now, and the CFP itself is issued by
            // the `ReAnnounce` timer (all backends deliver timers even
            // across partitions, so the retry survives the cut).
            let backoff = config.chain.backoff_delay(&RetryContext {
                round: n.round,
                max_rounds: config.max_rounds,
                open_tasks: n.open.len(),
            });
            n.round += 1;
            if let Some(delay) = backoff.filter(|d| *d > SimDuration::ZERO) {
                n.state = State::Collecting;
                n.candidates.clear();
                return vec![Action::Timer {
                    delay,
                    token: encode_timer(nego, TimerKind::ReAnnounce),
                }];
            }
            return Self::issue_cfp(&config, nego, n);
        }
        // Settle: whatever is still open is given up.
        n.given_up.extend(n.open.iter().copied());
        n.open.clear();
        n.metrics.unassigned = n.given_up.iter().copied().collect();
        let mut actions = Vec::new();
        if n.assignments.is_empty() {
            n.state = State::Dissolved;
            actions.push(Action::Event(NegoEvent::FormationIncomplete {
                nego,
                unassigned: n.metrics.unassigned.clone(),
                metrics: n.metrics.clone(),
            }));
            return actions;
        }
        let newly_operating = n.state != State::Operating;
        n.state = State::Operating;
        if n.metrics.formed_at.is_none() {
            n.metrics.formed_at = Some(now);
        }
        if n.given_up.is_empty() {
            actions.push(Action::Event(NegoEvent::Formed {
                nego,
                metrics: n.metrics.clone(),
            }));
        } else {
            actions.push(Action::Event(NegoEvent::FormationIncomplete {
                nego,
                unassigned: n.metrics.unassigned.clone(),
                metrics: n.metrics.clone(),
            }));
        }
        if config.monitor && newly_operating {
            actions.push(Action::Timer {
                delay: config.heartbeat_interval,
                token: encode_timer(nego, TimerKind::HeartbeatCheck),
            });
        }
        actions
    }

    fn on_heartbeat(&mut self, now: SimTime, nego: NegoId, task: TaskId, from: Pid) {
        if let Some(n) = self.negotiations.get_mut(&nego) {
            if n.assignments.get(&task) == Some(&from) {
                n.last_heartbeat.insert(task, now);
            }
        }
    }

    fn on_heartbeat_check(&mut self, now: SimTime, nego: NegoId) -> Vec<Action> {
        let config = self.config.clone();
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state != State::Operating {
            return Vec::new();
        }
        let timeout = SimDuration::micros(
            config.heartbeat_interval.as_micros() * config.miss_threshold as u64,
        );
        // Find failed members (any task whose heartbeat went stale).
        let mut failed_nodes: Vec<Pid> = Vec::new();
        for (task, node) in &n.assignments {
            // The organizer's own tasks never miss heartbeats (local).
            if *node == self.id {
                continue;
            }
            let last = n.last_heartbeat.get(task).copied().unwrap_or(SimTime::ZERO);
            if now.since(last) > timeout && !failed_nodes.contains(node) {
                failed_nodes.push(*node);
            }
        }
        let mut actions = Vec::new();
        // Lease keep-alive piggy-backs on the heartbeat check: every
        // distinct operating member gets one renewal per check period,
        // so commit leases (`ProviderConfig::commit_ttl`) only expire on
        // members the organizer can no longer reach.
        if config.renew_leases {
            let mut members: Vec<Pid> = n.assignments.values().copied().collect();
            members.sort_unstable();
            members.dedup();
            for m in members {
                if m != self.id {
                    actions.push(Action::send(m, Msg::LeaseRenew { nego }));
                }
            }
        }
        // Reconfiguration is a retry decision too: the chain decides
        // whether the lost tasks get re-auctioned or stay down.
        let reconfigure = !failed_nodes.is_empty()
            && config.chain.retries(&RetryContext {
                round: n.round,
                max_rounds: config.max_rounds,
                open_tasks: failed_nodes.len(),
            });
        if reconfigure {
            // Reconfiguration: re-auction every task held by failed nodes.
            let mut lost: Vec<TaskId> = Vec::new();
            for node in &failed_nodes {
                let tasks: Vec<TaskId> = n
                    .assignments
                    .iter()
                    .filter(|(_, p)| *p == node)
                    .map(|(t, _)| *t)
                    .collect();
                for t in &tasks {
                    n.assignments.remove(t);
                    n.metrics.outcomes.remove(t);
                    n.open.insert(*t);
                    lost.push(*t);
                }
                actions.push(Action::Event(NegoEvent::MemberFailed {
                    nego,
                    node: *node,
                    tasks,
                }));
            }
            n.metrics.reconfigurations += 1;
            n.round += 1;
            actions.extend(Self::issue_cfp(&config, nego, n));
            let _ = lost;
        }
        // Keep monitoring (also during reconfiguration, for the survivors).
        actions.push(Action::Timer {
            delay: config.heartbeat_interval,
            token: encode_timer(nego, TimerKind::HeartbeatCheck),
        });
        actions
    }

    /// Dissolves a coalition: members are told to release their resources.
    pub fn dissolve(&mut self, nego: NegoId) -> Vec<Action> {
        let Some(n) = self.negotiations.get_mut(&nego) else {
            return Vec::new();
        };
        if n.state == State::Dissolved {
            return Vec::new();
        }
        n.state = State::Dissolved;
        let mut members: Vec<Pid> = n.assignments.values().copied().collect();
        members.sort_unstable();
        members.dedup();
        let mut actions: Vec<Action> = members
            .into_iter()
            .map(|m| Action::send(m, Msg::Release { nego }))
            .collect();
        actions.push(Action::Event(NegoEvent::Dissolved { nego }));
        actions
    }
}

impl crate::snapshot::StateDigest for OrganizerEngine {
    fn digest(&self, h: &mut crate::snapshot::StableHasher) {
        h.write_u64(self.id as u64);
        h.write_u64(self.next_seq as u64);
        let mut ids: Vec<&NegoId> = self.negotiations.keys().collect();
        ids.sort();
        h.write_usize(ids.len());
        for id in ids {
            let n = &self.negotiations[id];
            h.write_u64(id.organizer as u64);
            h.write_u64(id.seq as u64);
            h.write_u64(n.state as u64);
            h.write_u64(n.round as u64);
            // Announcements and compiled tables are a pure function of the
            // submitted service + config, but two negotiations for
            // different services must not collide: the announcement
            // digest (cached at creation; the map is immutable) covers it.
            h.write_u64(n.announcements_digest);
            h.write_usize(n.candidates.len());
            for (t, cs) in &n.candidates {
                h.write_u64(t.0 as u64);
                h.write_usize(cs.len());
                // Vec order preserved: it is the §4.2 tie-break input.
                for c in cs {
                    h.write_u64(c.node as u64);
                    h.write_f64(c.distance);
                    h.write_f64(c.comm_cost);
                }
            }
            for (t, p) in &n.pending {
                h.write_u64(t.0 as u64);
                h.write_u64(*p as u64);
            }
            h.write_usize(n.pending.len());
            for (t, p) in &n.assignments {
                h.write_u64(t.0 as u64);
                h.write_u64(*p as u64);
            }
            h.write_usize(n.assignments.len());
            let mut hb: Vec<(&TaskId, &SimTime)> = n.last_heartbeat.iter().collect();
            hb.sort();
            h.write_usize(hb.len());
            for (t, at) in hb {
                h.write_u64(t.0 as u64);
                h.write_u64(at.0);
            }
            h.write_usize(n.given_up.len());
            for t in &n.given_up {
                h.write_u64(t.0 as u64);
            }
            // Metrics are deliberately excluded: they are write-only
            // reporting counters (no protocol decision or invariant reads
            // them), so hashing them would fork behaviourally identical
            // states — under fault exploration, explosively so.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_spec::{catalog, TaskDef};

    fn service(tasks: usize) -> ServiceDef {
        ServiceDef::new(
            "svc",
            (0..tasks)
                .map(|i| TaskDef {
                    name: format!("t{i}"),
                    spec: catalog::av_spec(),
                    request: catalog::surveillance_request(),
                    input_bytes: 100_000,
                    output_bytes: 10_000,
                })
                .collect(),
        )
    }

    fn proposal_for(nego: NegoId, from: Pid, task: TaskId, frame_rate: i64, link_kbps: f64) -> Msg {
        use qosc_spec::Value;
        Msg::Proposal {
            nego,
            from,
            proposals: vec![TaskProposal {
                task,
                offered: vec![
                    Value::Int(frame_rate),
                    Value::Int(3),
                    Value::Int(8),
                    Value::Int(8),
                ],
                levels: vec![(10 - frame_rate).max(0) as usize, 0, 0, 0],
                demand: qosc_resources::ResourceVector::ZERO,
                link_kbps,
                reward: 0.0,
            }],
        }
    }

    fn drive_to_award(
        org: &mut OrganizerEngine,
        nego: NegoId,
        proposals: Vec<(Pid, i64, f64)>,
    ) -> Vec<Action> {
        for (pid, fr, link) in proposals {
            let msg = proposal_for(nego, pid, TaskId(0), fr, link);
            org.on_message(SimTime(10), pid, &msg);
        }
        org.on_timer(SimTime(100_000), nego, TimerKind::ProposalDeadline)
    }

    #[test]
    fn start_service_broadcasts_cfp_and_arms_deadline() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, actions) = org.start_service(SimTime::ZERO, &service(2)).unwrap();
        assert_eq!(nego.organizer, 0);
        assert!(matches!(
            actions[0].payload(),
            Some(Msg::CallForProposals { tasks, round: 0, .. }) if tasks.len() == 2
        ));
        assert!(matches!(&actions[0], Action::Broadcast(_)));
        assert!(matches!(&actions[1], Action::Timer { .. }));
    }

    #[test]
    fn best_distance_proposal_wins_award() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // Node 1 offers frame_rate 7 (worse), node 2 offers 10 (preferred).
        let actions = drive_to_award(&mut org, nego, vec![(1, 7, 1000.0), (2, 10, 1000.0)]);
        let award_to: Vec<Pid> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } if matches!(&**msg, Msg::Award { .. }) => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(award_to, vec![2]);
    }

    #[test]
    fn inadmissible_proposals_are_discarded() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // frame_rate 20 is outside the user's acceptable ladder [10..1].
        let actions = drive_to_award(&mut org, nego, vec![(1, 20, 1000.0), (2, 5, 1000.0)]);
        let award_to: Vec<Pid> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Send { to, msg } if matches!(&**msg, Msg::Award { .. }) => Some(*to),
                _ => None,
            })
            .collect();
        assert_eq!(award_to, vec![2]);
    }

    #[test]
    fn accept_completes_formation_and_emits_formed() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(2, 10, 1000.0)]);
        let actions = org.on_message(
            SimTime(150_000),
            2,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 2,
                round: 0,
            },
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Event(NegoEvent::Formed { .. }))));
        assert!(org.is_operating(nego));
        let m = org.metrics(nego).unwrap();
        assert_eq!(m.outcomes[&TaskId(0)].node, 2);
        assert!(m.formed_at.is_some());
        // Heartbeat monitoring armed.
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Timer { token, .. }
                if crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::HeartbeatCheck)));
    }

    #[test]
    fn no_proposals_retries_then_gives_up() {
        let config = OrganizerConfig {
            max_rounds: 2,
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // Round 0 deadline, no proposals: expect a round-1 CFP.
        let actions = org.on_timer(SimTime(100_000), nego, TimerKind::ProposalDeadline);
        assert!(actions
            .iter()
            .any(|a| matches!(a.payload(), Some(Msg::CallForProposals { round: 1, .. }))));
        // Round 1 deadline, still nothing: give up.
        let actions = org.on_timer(SimTime(200_000), nego, TimerKind::ProposalDeadline);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Event(NegoEvent::FormationIncomplete { unassigned, .. })
                if unassigned == &vec![TaskId(0)]
        )));
    }

    #[test]
    fn decline_strikes_candidate_and_retries() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(1, 10, 1000.0), (2, 9, 1000.0)]);
        // Winner (node 1) declines: expect a retry CFP round.
        let actions = org.on_message(
            SimTime(150_000),
            1,
            &Msg::Decline {
                nego,
                task: TaskId(0),
                from: 1,
                round: 0,
            },
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a.payload(), Some(Msg::CallForProposals { round: 1, .. }))));
        // In the retry round node 2 proposes again and wins.
        org.on_message(
            SimTime(160_000),
            2,
            &proposal_for(nego, 2, TaskId(0), 9, 1000.0),
        );
        let actions = org.on_timer(SimTime(300_000), nego, TimerKind::ProposalDeadline);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 2, msg } if matches!(&**msg, Msg::Award { .. })
        )));
    }

    #[test]
    fn award_deadline_treats_silence_as_decline() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(1, 10, 1000.0)]);
        // Winner never answers; award deadline fires.
        let actions = org.on_timer(SimTime(250_000), nego, TimerKind::AwardDeadline);
        // Node 1 was the only candidate and is struck: new CFP round.
        assert!(actions
            .iter()
            .any(|a| matches!(a.payload(), Some(Msg::CallForProposals { round: 1, .. }))));
        assert_eq!(org.metrics(nego).unwrap().declines, 1);
    }

    #[test]
    fn heartbeat_miss_triggers_reconfiguration() {
        let config = OrganizerConfig {
            heartbeat_interval: SimDuration::millis(100),
            miss_threshold: 2,
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(2, 10, 1000.0)]);
        org.on_message(
            SimTime(150_000),
            2,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 2,
                round: 0,
            },
        );
        assert!(org.is_operating(nego));
        // No heartbeats arrive; check far past the 200 ms timeout.
        let actions = org.on_timer(SimTime(1_000_000), nego, TimerKind::HeartbeatCheck);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Event(NegoEvent::MemberFailed { node: 2, .. }))));
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Broadcast(msg) if matches!(&**msg, Msg::CallForProposals { .. })
        )));
        assert_eq!(org.metrics(nego).unwrap().reconfigurations, 1);
    }

    #[test]
    fn heartbeats_prevent_reconfiguration() {
        let config = OrganizerConfig {
            heartbeat_interval: SimDuration::millis(100),
            miss_threshold: 2,
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(2, 10, 1000.0)]);
        org.on_message(
            SimTime(150_000),
            2,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 2,
                round: 0,
            },
        );
        // Fresh heartbeat just before the check.
        org.on_message(
            SimTime(900_000),
            2,
            &Msg::Heartbeat {
                nego,
                task: TaskId(0),
                from: 2,
            },
        );
        let actions = org.on_timer(SimTime(1_000_000), nego, TimerKind::HeartbeatCheck);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, Action::Event(NegoEvent::MemberFailed { .. }))));
        assert_eq!(org.metrics(nego).unwrap().reconfigurations, 0);
    }

    #[test]
    fn backoff_chain_defers_retry_cfp_to_re_announce_timer() {
        use crate::strategy::TimeoutBackoff;
        let config = OrganizerConfig {
            max_rounds: 3,
            chain: OrganizerStrategy::new()
                .with(TimeoutBackoff::doubling(SimDuration::millis(10), 3)),
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // Round 0 deadline with no proposals: instead of an immediate
        // round-1 CFP, the backoff chain arms a ReAnnounce timer.
        let actions = org.on_timer(SimTime(100_000), nego, TimerKind::ProposalDeadline);
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a.payload(), Some(Msg::CallForProposals { .. }))),
            "backoff must suppress the immediate retry CFP"
        );
        let re_announce: Vec<SimDuration> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Timer { delay, token }
                    if crate::protocol::decode_timer(*token).unwrap().1
                        == TimerKind::ReAnnounce =>
                {
                    Some(*delay)
                }
                _ => None,
            })
            .collect();
        assert_eq!(re_announce, vec![SimDuration::millis(10)]);
        assert_eq!(org.phase(nego), Some(NegoPhase::Collecting));
        // The timer fires: the round-1 CFP goes out now.
        let actions = org.on_timer(SimTime(110_000), nego, TimerKind::ReAnnounce);
        assert!(actions
            .iter()
            .any(|a| matches!(a.payload(), Some(Msg::CallForProposals { round: 1, .. }))));
        // Second failure backs off twice as long (doubling policy).
        let actions = org.on_timer(SimTime(210_000), nego, TimerKind::ProposalDeadline);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Timer { delay, token }
                if *delay == SimDuration::millis(20)
                    && crate::protocol::decode_timer(*token).unwrap().1 == TimerKind::ReAnnounce
        )));
    }

    #[test]
    fn re_announce_after_dissolve_is_inert() {
        use crate::strategy::TimeoutBackoff;
        let config = OrganizerConfig {
            chain: OrganizerStrategy::new()
                .with(TimeoutBackoff::doubling(SimDuration::millis(10), 4)),
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        org.on_timer(SimTime(100_000), nego, TimerKind::ProposalDeadline);
        org.dissolve(nego);
        // The pending ReAnnounce fires after dissolution: nothing happens.
        assert!(org
            .on_timer(SimTime(110_000), nego, TimerKind::ReAnnounce)
            .is_empty());
    }

    #[test]
    fn heartbeat_check_renews_leases_when_enabled() {
        let config = OrganizerConfig {
            renew_leases: true,
            ..Default::default()
        };
        let mut org = OrganizerEngine::new(0, config);
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(2, 10, 1000.0)]);
        org.on_message(
            SimTime(150_000),
            2,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 2,
                round: 0,
            },
        );
        // Heartbeat arrives so no reconfiguration; the check still renews.
        org.on_message(
            SimTime(450_000),
            2,
            &Msg::Heartbeat {
                nego,
                task: TaskId(0),
                from: 2,
            },
        );
        let actions = org.on_timer(SimTime(500_000), nego, TimerKind::HeartbeatCheck);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 2, msg } if matches!(&**msg, Msg::LeaseRenew { .. })
        )));
    }

    #[test]
    fn dissolve_releases_members() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        drive_to_award(&mut org, nego, vec![(2, 10, 1000.0)]);
        org.on_message(
            SimTime(150_000),
            2,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 2,
                round: 0,
            },
        );
        let actions = org.dissolve(nego);
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 2, msg } if matches!(&**msg, Msg::Release { .. })
        )));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::Event(NegoEvent::Dissolved { .. }))));
        // Dissolving twice is a no-op.
        assert!(org.dissolve(nego).is_empty());
    }

    #[test]
    fn stale_messages_are_ignored() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // Accept for a task never awarded.
        let actions = org.on_message(
            SimTime(10),
            9,
            &Msg::Accept {
                nego,
                task: TaskId(0),
                from: 9,
                round: 0,
            },
        );
        assert!(actions.is_empty());
        // Proposal for an unknown negotiation.
        let bogus = NegoId {
            organizer: 0,
            seq: 999,
        };
        let actions = org.on_message(SimTime(10), 1, &proposal_for(bogus, 1, TaskId(0), 10, 1.0));
        assert!(actions.is_empty());
    }

    #[test]
    fn local_organizer_proposal_has_zero_comm_cost() {
        let mut org = OrganizerEngine::new(0, OrganizerConfig::default());
        let (nego, _) = org.start_service(SimTime::ZERO, &service(1)).unwrap();
        // Organizer's own node proposes a slightly worse quality but zero
        // comm cost; remote node proposes the same quality.
        org.on_message(SimTime(5), 0, &proposal_for(nego, 0, TaskId(0), 9, 1000.0));
        org.on_message(SimTime(6), 7, &proposal_for(nego, 7, TaskId(0), 9, 1000.0));
        let actions = org.on_timer(SimTime(100_000), nego, TimerKind::ProposalDeadline);
        // Equal distance; comm-cost tie-break favours the local node.
        assert!(actions.iter().any(|a| matches!(
            a,
            Action::Send { to: 0, msg } if matches!(&**msg, Msg::Award { .. })
        )));
    }
}
