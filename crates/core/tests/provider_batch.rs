//! Batched CFP handling must be a pure performance optimisation: a
//! provider fed a batch through [`ProviderEngine::on_cfp_batch`] must
//! emit exactly the actions — and land in exactly the state — of an
//! identically-constructed provider fed the same messages one
//! [`ProviderEngine::on_message`] at a time. The batch path shares one
//! prepare memo and warm-starts formulation, so this test is the pin
//! that keeps both strictly behaviour-neutral.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::sync::Arc;

use qosc_core::{
    digest_of, Msg, NegoId, Pid, ProposalStrategy, ProviderConfig, ProviderEngine, TaskAnnouncement,
};
use qosc_netsim::SimTime;
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, TaskId};

fn fresh_provider(cpu: f64, strategy: ProposalStrategy) -> ProviderEngine {
    let mut p = ProviderEngine::new(
        5,
        ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        ProviderConfig {
            strategy,
            ..Default::default()
        },
    );
    let spec = catalog::av_spec();
    p.register_demand_model(spec.name().to_string(), Arc::new(av_demand_model(&spec)));
    p
}

/// A random wave of messages arriving at one instant: mostly CFPs from
/// different organizers (occasionally colliding negotiation ids), with
/// the odd non-CFP mixed in, which the batch path must route through the
/// ordinary handler.
fn random_wave(rng: &mut ChaCha8Rng, wave: u32) -> Vec<(Pid, Msg)> {
    let requests = [
        catalog::surveillance_request(),
        catalog::video_conference_request(),
        catalog::voice_first_request(),
    ];
    let n = rng.gen_range(1usize..=5);
    (0..n)
        .map(|i| {
            let organizer = rng.gen_range(0u32..3);
            if rng.gen_bool(0.15) {
                // A stray non-CFP: release of a nego this provider never
                // joined — must be a no-op on both paths.
                return (
                    organizer,
                    Msg::Release {
                        nego: NegoId {
                            organizer,
                            seq: 900 + i as u32,
                        },
                    },
                );
            }
            let tasks = (0..rng.gen_range(1usize..=3))
                .map(|t| TaskAnnouncement {
                    task: TaskId(t as u32),
                    spec: catalog::av_spec(),
                    request: requests[rng.gen_range(0..requests.len())].clone(),
                    input_bytes: rng.gen_range(1_000u64..200_000),
                    output_bytes: rng.gen_range(1_000u64..50_000),
                })
                .collect();
            (
                organizer,
                Msg::CallForProposals {
                    nego: NegoId {
                        organizer,
                        seq: wave * 8 + rng.gen_range(0u32..4),
                    },
                    tasks,
                    round: 0,
                },
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::default())]

    /// Sequential and batched delivery of the same waves produce
    /// identical action streams and identical provider state, for both
    /// proposal strategies and across capacities from starved to rich.
    #[test]
    fn batch_is_equivalent_to_sequential_delivery(
        seed in 0u64..(1 << 48), cpu in 1.0f64..600.0, joint in 0u8..2,
    ) {
        let strategy = if joint == 0 {
            ProposalStrategy::Joint
        } else {
            ProposalStrategy::Sequential
        };
        let mut sequential = fresh_provider(cpu, strategy);
        let mut batched = fresh_provider(cpu, strategy);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Several waves so warm trajectories persist across batches.
        for wave in 0..3u32 {
            let now = SimTime(1_000 + u64::from(wave) * 50_000);
            let msgs = random_wave(&mut rng, wave);
            let mut seq_actions = Vec::new();
            for (from, msg) in &msgs {
                seq_actions.extend(sequential.on_message(now, *from, msg));
            }
            let refs: Vec<(Pid, &Msg)> = msgs.iter().map(|(f, m)| (*f, m)).collect();
            let batch_actions = batched.on_cfp_batch(now, &refs);
            prop_assert_eq!(&batch_actions, &seq_actions, "wave {} diverged", wave);
            prop_assert_eq!(
                digest_of(&batched),
                digest_of(&sequential),
                "state diverged after wave {}",
                wave
            );
        }
    }
}
