//! Property-based tests of winner selection (§4.2 tie-break).

use std::collections::BTreeMap;

use proptest::prelude::*;

use qosc_core::{select_winners, Candidate, TieBreak};
use qosc_spec::TaskId;

fn candidate() -> impl Strategy<Value = Candidate> {
    (0u32..8, 0.0f64..2.0, 0.0f64..10.0).prop_map(|(node, distance, comm_cost)| Candidate {
        node,
        distance,
        comm_cost,
    })
}

/// One pool with *distinct* node ids — a real organizer keeps at most one
/// proposal per (node, task).
fn pool() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(candidate(), 0..6).prop_map(|cs| {
        let mut seen = std::collections::BTreeSet::new();
        cs.into_iter().filter(|c| seen.insert(c.node)).collect()
    })
}

fn instance() -> impl Strategy<Value = BTreeMap<TaskId, Vec<Candidate>>> {
    proptest::collection::vec(pool(), 1..5).prop_map(|tasks| {
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, cs)| (TaskId(i as u32), cs))
            .collect()
    })
}

proptest! {
    /// Winners always come from the task's own candidate list, totals add
    /// up, and unassigned are exactly the candidate-less tasks.
    #[test]
    fn selection_is_structurally_sound(cands in instance()) {
        let sel = select_winners(&cands, &TieBreak::default());
        let mut dist = 0.0;
        let mut comm = 0.0;
        for (task, node) in &sel.assignments {
            let pool = &cands[task];
            let c = pool.iter().find(|c| c.node == *node)
                .expect("winner must be a candidate of its task");
            // The winner must carry the minimum distance of the pool under
            // the paper's order.
            let best = pool.iter().map(|c| c.distance).fold(f64::INFINITY, f64::min);
            prop_assert!(c.distance <= best + 1e-9);
            dist += c.distance;
            comm += c.comm_cost;
        }
        prop_assert!((sel.total_distance - dist).abs() < 1e-9);
        prop_assert!((sel.total_comm_cost - comm).abs() < 1e-9);
        for (task, pool) in &cands {
            if pool.is_empty() {
                prop_assert!(sel.unassigned.contains(task));
            } else {
                prop_assert!(sel.assignments.contains_key(task));
            }
        }
    }

    /// Candidate order within a task never changes the outcome (the
    /// tie-break is a function of scores, not arrival order).
    #[test]
    fn selection_is_order_invariant(cands in instance(), seed in 0u64..1000) {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let sel1 = select_winners(&cands, &TieBreak::default());
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let shuffled: BTreeMap<TaskId, Vec<Candidate>> = cands
            .iter()
            .map(|(t, cs)| {
                let mut cs = cs.clone();
                cs.shuffle(&mut rng);
                (*t, cs)
            })
            .collect();
        let sel2 = select_winners(&shuffled, &TieBreak::default());
        prop_assert_eq!(sel1.assignments, sel2.assignments);
    }

    /// Every permutation of the criteria yields a complete, sound
    /// selection; the paper's order minimises distance among them.
    #[test]
    fn paper_order_is_distance_minimal(cands in instance()) {
        let paper = select_winners(&cands, &TieBreak::default());
        for tb in TieBreak::permutations() {
            let sel = select_winners(&cands, &tb);
            prop_assert_eq!(sel.assignments.len(), paper.assignments.len());
            // Paper order leads with Distance, so no other order can beat
            // it on total distance (per-task independent minima).
            prop_assert!(paper.total_distance <= sel.total_distance + 1e-9);
        }
    }

    /// Adding a candidate to an already-served task can only improve (or
    /// keep) the total distance. (Adding one to an *empty* pool places a
    /// previously unassigned task, which legitimately raises the total —
    /// excluded here.)
    #[test]
    fn more_candidates_never_hurt_distance(cands in instance(), extra in candidate()) {
        let before = select_winners(&cands, &TieBreak::default());
        let mut bigger = cands.clone();
        let mut touched = false;
        for (_, pool) in bigger.iter_mut() {
            if !pool.is_empty() && !pool.iter().any(|c| c.node == extra.node) {
                pool.push(extra);
                touched = true;
                break;
            }
        }
        prop_assume!(touched);
        let after = select_winners(&bigger, &TieBreak::default());
        prop_assert!(after.total_distance <= before.total_distance + 1e-9);
    }
}
