//! Property-based equivalence of the compiled batch evaluator and the
//! reference [`Evaluator`]: across random specs, requests and proposals —
//! including single-level ladders, zero-span continuous domains and both
//! [`DifMode`]s — the two implementations must agree within 1e-12.

use proptest::prelude::*;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use qosc_core::{CompiledRequest, DifMode, EvalConfig, Evaluator, WeightScheme};
use qosc_spec::{
    Attribute, Dimension, Domain, LevelSpec, QosSpec, ResolvedRequest, ServiceRequest, Value,
};

/// Draws one random domain: discrete int/float/str (length 1–5, so
/// single-level ladders occur) or continuous int/float (possibly with a
/// zero-width interval).
fn random_domain(rng: &mut ChaCha8Rng) -> Domain {
    match rng.gen_range(0u8..5) {
        0 => {
            let len = rng.gen_range(1usize..=5);
            let mut pool: Vec<i64> = (-4..=12).collect();
            pool.shuffle(rng);
            pool.truncate(len);
            Domain::DiscreteInt(pool)
        }
        1 => {
            let len = rng.gen_range(1usize..=4);
            let mut pool: Vec<f64> = (0..10).map(|i| i as f64 * 0.75 - 2.0).collect();
            pool.shuffle(rng);
            pool.truncate(len);
            Domain::discrete_float(pool)
        }
        2 => {
            let len = rng.gen_range(1usize..=4);
            let mut pool = vec!["h264", "mpeg2", "mjpeg", "av1", "raw"];
            pool.shuffle(rng);
            pool.truncate(len);
            Domain::discrete_str(pool)
        }
        3 => {
            let min = rng.gen_range(-5i64..=5);
            // Width 0 sometimes: the zero-span guard must kick in.
            let max = min + rng.gen_range(0i64..=20);
            Domain::ContinuousInt { min, max }
        }
        _ => {
            let min = rng.gen_range(-2.0f64..2.0);
            // Width 0.0 sometimes (zero-span continuous float).
            let max = min + f64::from(rng.gen_range(0u8..=4)) * 0.5;
            Domain::ContinuousFloat { min, max }
        }
    }
}

/// Random in-domain values (candidate ladder levels / proposal values).
fn random_values(domain: &Domain, n: usize, rng: &mut ChaCha8Rng) -> Vec<Value> {
    (0..n)
        .map(|_| match domain {
            Domain::DiscreteInt(v) => Value::Int(v[rng.gen_range(0..v.len())]),
            Domain::DiscreteFloat(v) => Value::Float(v[rng.gen_range(0..v.len())]),
            Domain::DiscreteStr(v) => Value::str(v[rng.gen_range(0..v.len())].clone()),
            Domain::ContinuousInt { min, max } => Value::Int(rng.gen_range(*min..=*max)),
            Domain::ContinuousFloat { min, max } => {
                // Clamp so fp interpolation can never escape the interval.
                let t: f64 = rng.gen_range(0.0..=1.0);
                Value::float((min + (max - min) * t).clamp(*min, *max))
            }
        })
        .collect()
}

/// Builds a random spec + resolved request over it. The request covers a
/// random non-empty subset of dimensions/attributes in random preference
/// order, with random acceptance ladders (drawn with repetition —
/// `resolve()` drops duplicate levels, keeping the first rank).
fn random_instance(seed: u64) -> (QosSpec, ResolvedRequest) {
    let rng = &mut ChaCha8Rng::seed_from_u64(seed);
    let dims = rng.gen_range(1usize..=3);
    let mut builder = QosSpec::builder(format!("spec-{seed}"));
    let mut names: Vec<(String, Vec<(String, Domain)>)> = Vec::new();
    for d in 0..dims {
        let attrs = rng.gen_range(1usize..=3);
        let mut attr_list = Vec::new();
        for a in 0..attrs {
            attr_list.push((format!("a{d}_{a}"), random_domain(rng)));
        }
        builder = builder.dimension(Dimension::new(
            format!("d{d}"),
            attr_list
                .iter()
                .map(|(n, dom)| Attribute::new(n.clone(), dom.clone()))
                .collect(),
        ));
        names.push((format!("d{d}"), attr_list));
    }
    let spec = builder.build().expect("random spec is structurally valid");

    // Request over a random subset, in random order.
    names.shuffle(rng);
    let keep_dims = rng.gen_range(1usize..=names.len());
    let mut req = ServiceRequest::builder(format!("req-{seed}"));
    for (dname, mut attrs) in names.into_iter().take(keep_dims) {
        attrs.shuffle(rng);
        let keep_attrs = rng.gen_range(1usize..=attrs.len());
        req = req.dimension(dname);
        for (aname, domain) in attrs.into_iter().take(keep_attrs) {
            let ladder = random_values(&domain, rng.gen_range(1usize..=4), rng);
            req = req.attribute(aname, ladder.into_iter().map(LevelSpec::Value).collect());
        }
    }
    let request = req
        .build()
        .resolve(&spec)
        .expect("ladder values are drawn from the domains");
    (spec, request)
}

/// One random proposal in `iter_attrs` order: mostly ladder values
/// (admissible), sometimes arbitrary domain values (often inadmissible).
fn random_proposal(spec: &QosSpec, request: &ResolvedRequest, rng: &mut ChaCha8Rng) -> Vec<Value> {
    request
        .iter_attrs()
        .map(|(_, pref)| {
            if rng.gen_bool(0.7) {
                pref.levels[rng.gen_range(0..pref.levels.len())].clone()
            } else {
                let domain = &spec
                    .attribute_at(pref.path)
                    .expect("request paths resolve against their spec")
                    .domain;
                random_values(domain, 1, rng)
                    .pop()
                    .expect("one value requested")
            }
        })
        .collect()
}

proptest! {
    /// The compiled tables replicate the reference evaluator: identical
    /// admissibility verdicts, distances within 1e-12 (values and level
    /// indexes), and a batch winner that minimises the reference score.
    #[test]
    fn compiled_matches_reference(seed in 0u64..(1 << 48)) {
        let (spec, request) = random_instance(seed);
        let rng = &mut ChaCha8Rng::seed_from_u64(seed ^ 0xBA7C4);
        let proposals: Vec<Vec<Value>> = (0..rng.gen_range(1usize..=6))
            .map(|_| random_proposal(&spec, &request, rng))
            .collect();
        for dif in [DifMode::Absolute, DifMode::SignedPaperLiteral] {
            for weights in [
                WeightScheme::PaperLinear,
                WeightScheme::Uniform,
                WeightScheme::Harmonic,
            ] {
                let config = EvalConfig { weights, dif };
                let reference = Evaluator::new(config);
                let compiled = CompiledRequest::compile(&spec, &request, config);
                prop_assert_eq!(compiled.attr_count(), request.attr_count());

                let mut ref_scores = Vec::new();
                for p in &proposals {
                    let admissible = reference.admissible(&request, p);
                    prop_assert_eq!(compiled.admissible(p), admissible.clone());
                    let d_ref = reference.distance(&spec, &request, p);
                    let d_new = compiled.distance(p);
                    prop_assert!(
                        (d_ref - d_new).abs() < 1e-12,
                        "seed {seed}: {d_ref} vs {d_new}"
                    );
                    ref_scores.push((admissible.is_ok(), d_ref));
                }

                // Level-index pricing agrees with value pricing.
                let levels: Vec<usize> = request
                    .iter_attrs()
                    .map(|(_, a)| rng.gen_range(0..a.levels.len()))
                    .collect();
                let d_ref = reference
                    .distance_of_levels(&spec, &request, &levels)
                    .expect("indexes in range");
                let d_new = compiled
                    .distance_of_levels(&levels)
                    .expect("indexes in range");
                prop_assert!((d_ref - d_new).abs() < 1e-12);
                prop_assert!(compiled
                    .distance_of_levels(&levels[..levels.len() - 1])
                    .is_none() || levels.len() == 1);

                // Batch evaluation: inadmissible ⇒ ∞; the winner is
                // admissible and minimises the reference score.
                let (best, scores) = compiled.evaluate_batch(&proposals);
                prop_assert_eq!(scores.len(), proposals.len());
                let min_ref = ref_scores
                    .iter()
                    .filter(|(ok, _)| *ok)
                    .map(|(_, d)| *d)
                    .fold(f64::INFINITY, f64::min);
                for (s, (ok, d)) in scores.iter().zip(ref_scores.iter()) {
                    if *ok {
                        prop_assert!((s - d).abs() < 1e-12);
                    } else {
                        prop_assert!(s.is_infinite());
                    }
                }
                match best {
                    Some(i) => {
                        prop_assert!(ref_scores[i].0, "winner must be admissible");
                        prop_assert!(ref_scores[i].1 <= min_ref + 1e-12);
                    }
                    None => prop_assert!(min_ref.is_infinite(), "no admissible proposal"),
                }
            }
        }
    }
}
