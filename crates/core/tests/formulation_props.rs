//! Property-based equivalence of the heap-driven formulation engine and
//! the retained reference scan ([`qosc_core::formulate_reference`]):
//! across random specs, ladders, dependencies, demand models and
//! capacities the two must produce identical levels, demands, rewards
//! and degradation counts — and prefix-feasibility shedding must match
//! the old shed-one-task-and-reformulate loop on random bundles.

use proptest::prelude::*;
use rand::{seq::SliceRandom, Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use std::sync::Arc;

use qosc_core::{
    formulate, formulate_prepared, formulate_reference, formulate_shedding, FormulationError,
    Formulator, LinearPenalty, PreparedTask, TaskInput,
};
use qosc_resources::{
    AdmissionControl, DemandModel, DemandTerm, Feature, LinearDemandModel, ResourceKind,
    ResourceVector, SchedulingPolicy,
};
use qosc_spec::{
    Attribute, Dependency, DependencyKind, Dimension, Domain, LevelSpec, QosSpec, ResolvedRequest,
    ServiceRequest, Value,
};

const VAL_MAX: i64 = 40;

/// One random world: a spec (with occasional dependencies), a demand
/// model over it and a bundle of resolved requests.
struct World {
    spec: QosSpec,
    model: Arc<dyn DemandModel>,
    requests: Vec<ResolvedRequest>,
}

/// Builds a random spec over integer domains, a non-negative linear
/// demand model, and `tasks` random requests. With `monotone` the
/// ladders are sorted best-value-first, which (with non-negative
/// coefficients) makes demand non-increasing along degradation — the
/// documented contract the §5 heuristic and the shedding pre-check rely
/// on. Without it, ladders are shuffled freely (fine for pinning the
/// heap against the scan, which must agree on *any* input).
fn random_world(seed: u64, tasks: usize, monotone: bool) -> World {
    let rng = &mut ChaCha8Rng::seed_from_u64(seed);
    let dims = rng.gen_range(1usize..=2);
    let mut builder = QosSpec::builder(format!("spec-{seed}"));
    let mut names: Vec<(String, Vec<String>)> = Vec::new();
    for d in 0..dims {
        let attrs = rng.gen_range(1usize..=3);
        let attr_names: Vec<String> = (0..attrs).map(|a| format!("a{d}_{a}")).collect();
        builder = builder.dimension(Dimension::new(
            format!("d{d}"),
            attr_names
                .iter()
                .map(|n| {
                    Attribute::new(
                        n.clone(),
                        Domain::ContinuousInt {
                            min: 0,
                            max: VAL_MAX,
                        },
                    )
                })
                .collect(),
        ));
        names.push((format!("d{d}"), attr_names));
    }
    // Occasionally couple two attributes so the dependency paths (both
    // the mid-trajectory checks and the deps-fail-at-full-degradation
    // shedding fallback) are exercised.
    let all_paths: Vec<(usize, usize)> = names
        .iter()
        .enumerate()
        .flat_map(|(d, (_, attrs))| (0..attrs.len()).map(move |a| (d, a)))
        .collect();
    if all_paths.len() >= 2 && rng.gen_bool(0.5) {
        let mut pick = all_paths.clone();
        pick.shuffle(rng);
        let a = qosc_spec::AttrPath::new(pick[0].0, pick[0].1);
        let b = qosc_spec::AttrPath::new(pick[1].0, pick[1].1);
        let kind = if rng.gen_bool(0.5) {
            DependencyKind::LinearBudget {
                terms: vec![(a, 1.0), (b, 1.0)],
                max: rng.gen_range(0..=2 * VAL_MAX) as f64,
            }
        } else {
            let set = |rng: &mut ChaCha8Rng| -> Vec<Value> {
                let lo = rng.gen_range(0..=VAL_MAX);
                let hi = rng.gen_range(lo..=VAL_MAX);
                (lo..=hi).map(Value::Int).collect()
            };
            DependencyKind::Implication {
                a,
                when_in: set(rng),
                b,
                require_in: set(rng),
            }
        };
        builder = builder.dependency(Dependency::new("dep", kind));
    }
    let spec = builder.build().expect("random spec is structurally valid");

    // Demand: non-negative base + one non-negative numeric term per
    // attribute (some zero-coefficient so unconstrained attrs occur).
    let terms: Vec<DemandTerm> = spec
        .paths()
        .map(|path| DemandTerm {
            path,
            feature: Feature::Numeric,
            kind: if rng.gen_bool(0.8) {
                ResourceKind::Cpu
            } else {
                ResourceKind::Memory
            },
            coeff: rng.gen_range(0..=20) as f64 / 10.0,
        })
        .collect();
    let base = ResourceVector::new(rng.gen_range(0..=20) as f64 / 10.0, 1.0, 1.0, 0.1, 1.0);
    let model: Arc<dyn DemandModel> = Arc::new(LinearDemandModel::new(base, terms));

    let requests = (0..tasks)
        .map(|t| {
            let mut dims = names.clone();
            dims.shuffle(rng);
            let keep = rng.gen_range(1usize..=dims.len());
            let mut req = ServiceRequest::builder(format!("req-{seed}-{t}"));
            for (dname, mut attrs) in dims.into_iter().take(keep) {
                attrs.shuffle(rng);
                let keep_attrs = rng.gen_range(1usize..=attrs.len());
                req = req.dimension(dname);
                for aname in attrs.into_iter().take(keep_attrs) {
                    let mut ladder: Vec<i64> = (0..rng.gen_range(1usize..=6))
                        .map(|_| rng.gen_range(0..=VAL_MAX))
                        .collect();
                    ladder.dedup();
                    if monotone {
                        ladder.sort_unstable_by(|x, y| y.cmp(x));
                        ladder.dedup();
                    }
                    req = req.attribute(
                        aname,
                        ladder
                            .into_iter()
                            .map(|v| LevelSpec::value(Value::Int(v)))
                            .collect(),
                    );
                }
            }
            req.build()
                .resolve(&spec)
                .expect("ladder values are drawn from the domains")
        })
        .collect();
    World {
        spec,
        model,
        requests,
    }
}

fn admission(cpu: f64) -> AdmissionControl {
    AdmissionControl::new(
        SchedulingPolicy::Edf,
        ResourceVector::new(cpu, 10_000.0, 10_000.0, 600.0, 10_000.0),
    )
}

fn inputs_of(world: &World) -> Vec<TaskInput<'_>> {
    world
        .requests
        .iter()
        .map(|request| TaskInput {
            spec: &world.spec,
            request,
            demand: world.model.as_ref(),
        })
        .collect()
}

fn prepared_of(world: &World) -> Vec<PreparedTask> {
    world
        .requests
        .iter()
        .map(|request| {
            PreparedTask::compile(
                world.spec.clone(),
                Arc::new(request.clone()),
                &LinearPenalty::default(),
                Arc::clone(&world.model),
            )
        })
        .collect()
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// The heap-driven engine reproduces the reference scan bit-for-bit:
    /// identical levels, demands, reward and degradation count (or the
    /// identical `Infeasible`), on arbitrary (even non-monotone) inputs —
    /// through both the `TaskInput` and the `PreparedTask` entry points.
    #[test]
    fn heap_engine_matches_reference_scan(
        seed in 0u64..(1 << 48), tasks in 1usize..=4, cpu in 0.0f64..60.0,
    ) {
        let world = random_world(seed, tasks, false);
        let adm = admission(cpu);
        let inputs = inputs_of(&world);
        let reference = formulate_reference(&inputs, &adm, &LinearPenalty::default());
        let heap = formulate(&inputs, &adm, &LinearPenalty::default());
        prop_assert_eq!(&heap, &reference);
        let prepared = prepared_of(&world);
        let refs: Vec<&PreparedTask> = prepared.iter().collect();
        let via_prepared = formulate_prepared(&refs, &adm);
        prop_assert_eq!(&via_prepared, &reference);
        if let Ok(out) = reference {
            prop_assert!(adm.schedulable(&out.demands));
        }
    }

    /// Prefix-feasibility shedding returns exactly what the old
    /// "formulate, drop the tail task on Infeasible, retry" loop did:
    /// same surviving prefix length, same formulation — on monotone
    /// bundles (the demand-model contract), including ones whose
    /// dependencies fail only at full degradation.
    #[test]
    fn prefix_shedding_matches_iterative_loop(
        seed in 0u64..(1 << 48), tasks in 1usize..=5, cpu in 0.0f64..40.0,
    ) {
        let world = random_world(seed, tasks, true);
        let adm = admission(cpu);
        let inputs = inputs_of(&world);
        let mut count = inputs.len();
        let old = loop {
            if count == 0 {
                break None;
            }
            match formulate_reference(&inputs[..count], &adm, &LinearPenalty::default()) {
                Ok(f) => break Some((count, f)),
                Err(FormulationError::Infeasible) => count -= 1,
            }
        };
        let prepared = prepared_of(&world);
        let refs: Vec<&PreparedTask> = prepared.iter().collect();
        let new = formulate_shedding(&refs, &adm);
        prop_assert_eq!(new, old);
    }

    /// Warm-started formulation is bit-identical to the cold prepared
    /// path. One retained trajectory serves a random *sequence* of
    /// capacities against the same key, which exercises all three warm
    /// regimes: prefix replay (capacity grew), in-place extension
    /// (capacity shrank) and re-replay after extension — each must equal
    /// a from-scratch cold formulation, reward bits included.
    #[test]
    fn warm_start_matches_cold_path(
        seed in 0u64..(1 << 48), tasks in 1usize..=4,
        cpus in proptest::collection::vec(0.0f64..60.0, 1..6),
    ) {
        let world = random_world(seed, tasks, false);
        let prepared: Vec<Arc<PreparedTask>> =
            prepared_of(&world).into_iter().map(Arc::new).collect();
        let refs: Vec<&PreparedTask> = prepared.iter().map(Arc::as_ref).collect();
        let mut formulator = Formulator::new(Arc::new(LinearPenalty::default()));
        for cpu in cpus {
            let adm = admission(cpu);
            let cold = formulate_prepared(&refs, &adm);
            let warm = formulator.formulate_warm(7, &prepared, &adm);
            prop_assert_eq!(&warm, &cold);
        }
        prop_assert_eq!(formulator.warm_entries(), 1);
        formulator.forget_warm(7);
        prop_assert_eq!(formulator.warm_entries(), 0);
    }

    /// Warm-started prefix shedding returns exactly what the stateless
    /// [`formulate_shedding`] does — same surviving prefix, same
    /// formulation — across a capacity sequence on one retained key
    /// (monotone bundles, the shedding contract).
    #[test]
    fn warm_shedding_matches_cold_shedding(
        seed in 0u64..(1 << 48), tasks in 1usize..=5,
        cpus in proptest::collection::vec(0.0f64..40.0, 1..6),
    ) {
        let world = random_world(seed, tasks, true);
        let prepared: Vec<Arc<PreparedTask>> =
            prepared_of(&world).into_iter().map(Arc::new).collect();
        let refs: Vec<&PreparedTask> = prepared.iter().map(Arc::as_ref).collect();
        let mut formulator = Formulator::new(Arc::new(LinearPenalty::default()));
        for cpu in cpus {
            let adm = admission(cpu);
            let cold = formulate_shedding(&refs, &adm);
            let warm = formulator.formulate_shedding_warm(9, &prepared, &adm);
            prop_assert_eq!(warm, cold);
        }
    }
}
