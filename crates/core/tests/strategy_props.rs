//! Property-based tests of the strategy-chain folds: the default (empty)
//! chain — and any chain of identity components — must be observationally
//! identical to the pre-refactor decision logic, and the shipped
//! components must respect their documented envelopes.

use std::collections::BTreeMap;

use proptest::prelude::*;

use qosc_core::strategy::{
    AwardContext, CandidateContext, CandidateResponse, CfpContext, OfferResponse, PatienceLimit,
    ReputationScorer, ReservePrice, RetryContext, SelfishMarkup, TaskOffer,
};
use qosc_core::{
    select_winners, Candidate, OrganizerComponent, OrganizerStrategy, ProviderComponent,
    ProviderStrategy, TieBreak,
};
use qosc_resources::ResourceVector;
use qosc_spec::TaskId;

/// A provider component that implements nothing beyond the defaults.
struct PassthroughProvider;

impl ProviderComponent for PassthroughProvider {
    fn name(&self) -> &'static str {
        "passthrough"
    }
}

/// An organizer component that implements nothing beyond the defaults.
struct PassthroughOrganizer;

impl OrganizerComponent for PassthroughOrganizer {
    fn name(&self) -> &'static str {
        "passthrough"
    }
}

fn candidate() -> impl Strategy<Value = Candidate> {
    (0u32..8, 0.0f64..2.0, 0.0f64..10.0).prop_map(|(node, distance, comm_cost)| Candidate {
        node,
        distance,
        comm_cost,
    })
}

fn pool() -> impl Strategy<Value = Vec<Candidate>> {
    proptest::collection::vec(candidate(), 0..6).prop_map(|cs| {
        let mut seen = std::collections::BTreeSet::new();
        cs.into_iter().filter(|c| seen.insert(c.node)).collect()
    })
}

fn instance() -> impl Strategy<Value = BTreeMap<TaskId, Vec<Candidate>>> {
    proptest::collection::vec(pool(), 1..5).prop_map(|tasks| {
        tasks
            .into_iter()
            .enumerate()
            .map(|(i, cs)| (TaskId(i as u32), cs))
            .collect()
    })
}

/// `(levels, ladder)` with every level inside its ladder.
fn levelled() -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    proptest::collection::vec((1usize..=6, 0usize..6), 1..5)
        .prop_map(|pairs| pairs.into_iter().map(|(len, lvl)| (lvl % len, len)).unzip())
}

fn offer() -> impl Strategy<Value = TaskOffer> {
    (levelled(), 0.0f64..8.0, 0.0f64..8.0).prop_map(|((levels, ladder), reward, task_reward)| {
        TaskOffer {
            task: TaskId(0),
            levels,
            ladder,
            demand: ResourceVector::new(10.0, 64.0, 1000.0, 10.0, 500.0),
            reward,
            task_reward,
        }
    })
}

fn cfp() -> impl Strategy<Value = CfpContext> {
    (0u32..8, 0u32..4, 1usize..8, 0.0f64..200.0, 1.0f64..200.0).prop_map(
        |(node, round, task_count, avail_cpu, cap_cpu)| CfpContext {
            node,
            round,
            task_count,
            available: ResourceVector::new(avail_cpu, 256.0, 5000.0, 40.0, 4000.0),
            capacity: ResourceVector::new(cap_cpu, 256.0, 5000.0, 40.0, 4000.0),
        },
    )
}

proptest! {
    /// The empty chain and a chain of pure-default components both
    /// reproduce `select_winners` exactly, for every tie-break order.
    #[test]
    fn chained_select_matches_reference(cands in instance()) {
        let empty = OrganizerStrategy::new();
        let passthrough = OrganizerStrategy::new()
            .with(PassthroughOrganizer)
            .with(PassthroughOrganizer);
        for tb in TieBreak::permutations() {
            let reference = select_winners(&cands, &tb);
            let sel = empty.select(&cands, &tb);
            prop_assert_eq!(&sel.assignments, &reference.assignments);
            prop_assert_eq!(&sel.unassigned, &reference.unassigned);
            let sel = passthrough.select(&cands, &tb);
            prop_assert_eq!(&sel.assignments, &reference.assignments);
        }
    }

    /// The provider-side folds of the empty chain (and of identity
    /// components) never gate, never mutate an offer, never veto.
    #[test]
    fn chained_provider_folds_are_identities(ctx in cfp(), base in offer()) {
        for chain in [
            ProviderStrategy::new(),
            ProviderStrategy::new().with(PassthroughProvider),
        ] {
            prop_assert!(chain.participates(&ctx));
            let mut reviewed = base.clone();
            prop_assert!(chain.review_offer(&ctx, &mut reviewed));
            prop_assert_eq!(&reviewed.levels, &base.levels);
            prop_assert_eq!(reviewed.reward, base.reward);
            prop_assert!(chain.accepts_award(&AwardContext { node: ctx.node, task: TaskId(0) }));
        }
    }

    /// The retry fold of the empty chain is exactly the legacy round
    /// budget `round + 1 < max_rounds`, for every context.
    #[test]
    fn chained_retry_matches_round_budget(round in 0u32..12, max_rounds in 0u32..12, open in 0usize..9) {
        let ctx = RetryContext { round, max_rounds, open_tasks: open };
        prop_assert_eq!(
            OrganizerStrategy::new().retries(&ctx),
            round + 1 < max_rounds
        );
        // Candidate review of the empty chain keeps every candidate
        // untouched, whatever the context.
        let mut c = Candidate { node: round % 4, distance: 0.5, comm_cost: 1.0 };
        let before = c;
        let keep = OrganizerStrategy::new().review_candidate(
            &CandidateContext { organizer: 0, task: TaskId(0), round },
            &mut c,
        );
        prop_assert!(keep);
        prop_assert_eq!(c, before);
    }

    /// `ReservePrice` partitions offers exactly at the threshold and
    /// never touches the offer contents.
    #[test]
    fn reserve_price_partitions_at_threshold(base in offer(), min_reward in 0.0f64..8.0, ctx in cfp()) {
        let comp = ReservePrice { min_reward };
        let mut reviewed = base.clone();
        let verdict = comp.review_offer(&ctx, &mut reviewed);
        prop_assert_eq!(
            verdict == OfferResponse::Withhold,
            base.task_reward < min_reward
        );
        prop_assert_eq!(&reviewed.levels, &base.levels);
        prop_assert_eq!(reviewed.reward, base.reward);
    }

    /// `SelfishMarkup` degrades monotonically, stays inside every ladder
    /// and scales the declared reward by exactly the markup.
    #[test]
    fn selfish_markup_stays_within_ladders(base in offer(), steps in 0usize..10, markup in 0.5f64..3.0, ctx in cfp()) {
        let comp = SelfishMarkup { degrade_steps: steps, markup };
        let mut reviewed = base.clone();
        prop_assert_eq!(comp.review_offer(&ctx, &mut reviewed), OfferResponse::Offer);
        for ((&after, &before), &len) in
            reviewed.levels.iter().zip(base.levels.iter()).zip(base.ladder.iter())
        {
            prop_assert!(after >= before, "degradation never improves quality");
            prop_assert!(after < len, "levels stay inside the ladder");
        }
        prop_assert!((reviewed.reward - base.reward * markup).abs() < 1e-9);
    }

    /// `ReputationScorer` penalises monotonically: a lower reputation
    /// never yields a smaller distance penalty, and full trust is free.
    #[test]
    fn reputation_penalty_is_monotone(c in candidate(), rep_a in 0.0f64..1.0, rep_b in 0.0f64..1.0, weight in 0.0f64..2.0) {
        let ctx = CandidateContext { organizer: 0, task: TaskId(0), round: 0 };
        let penalty = |rep: f64| {
            let comp = ReputationScorer {
                reputations: BTreeMap::from([(c.node, rep)]),
                default_reputation: 1.0,
                weight,
            };
            let mut scored = c;
            assert_eq!(comp.review_candidate(&ctx, &mut scored), CandidateResponse::Keep);
            scored.distance - c.distance
        };
        let (lo, hi) = if rep_a <= rep_b { (rep_a, rep_b) } else { (rep_b, rep_a) };
        prop_assert!(penalty(lo) >= penalty(hi) - 1e-12);
        prop_assert!(penalty(1.0).abs() < 1e-12, "full trust adds nothing");
    }

    /// `PatienceLimit` always answers, never extends the engine's own
    /// budget, and caps the rounds at its own limit.
    #[test]
    fn patience_limit_caps_the_budget(round in 0u32..12, max_rounds in 1u32..12, rounds in 0u32..12) {
        let comp = PatienceLimit { rounds };
        let ctx = RetryContext { round, max_rounds, open_tasks: 1 };
        let verdict = comp.retry(&ctx).expect("patience always has an opinion");
        prop_assert_eq!(verdict, round + 1 < rounds.min(max_rounds));
        let chained = OrganizerStrategy::new().with(PatienceLimit { rounds }).retries(&ctx);
        prop_assert_eq!(chained, verdict);
        if chained {
            prop_assert!(round + 1 < max_rounds, "never outlasts the engine budget");
        }
    }
}
