//! Heterogeneous device populations (paper §2).
//!
//! "Such an environment is expected to be heterogeneous, consisting of
//! nodes with several resource capabilities." A [`PopulationConfig`] draws
//! node profiles from a device-class mix with per-node capacity jitter, so
//! no two laptops are identical — the §1 motivation ("more powerful (or
//! less congested) devices") emerges naturally.

use rand::Rng;

use qosc_resources::{DeviceClass, NodeProfile};

/// Mix weights and jitter for a random device population.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Relative weight of each class, aligned with [`DeviceClass::ALL`]
    /// (phone, pda, laptop, fixed server).
    pub class_weights: [f64; 4],
    /// Capacity jitter: each node's capacity is scaled by a uniform factor
    /// in `[1 − jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        Self {
            // A mobile-heavy mix with occasional fixed infrastructure.
            class_weights: [0.3, 0.3, 0.35, 0.05],
            jitter: 0.2,
        }
    }
}

impl PopulationConfig {
    /// A mix with no fixed infrastructure (pure ad-hoc, the paper's
    /// current focus).
    pub fn pure_adhoc() -> Self {
        Self {
            class_weights: [0.35, 0.3, 0.35, 0.0],
            jitter: 0.2,
        }
    }

    /// A resource-constrained mix (phones and PDAs only) — the regime
    /// where quality degradation and placement genuinely matter.
    pub fn constrained() -> Self {
        Self {
            class_weights: [0.5, 0.5, 0.0, 0.0],
            jitter: 0.2,
        }
    }

    /// Draws one node profile.
    pub fn sample(&self, rng: &mut impl Rng) -> NodeProfile {
        let total: f64 = self.class_weights.iter().sum();
        let mut x = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
        let mut class = DeviceClass::FixedServer;
        for (c, w) in DeviceClass::ALL.iter().zip(self.class_weights.iter()) {
            if x < *w {
                class = *c;
                break;
            }
            x -= w;
        }
        let factor = if self.jitter > 0.0 {
            rng.gen_range(1.0 - self.jitter..=1.0 + self.jitter)
        } else {
            1.0
        };
        NodeProfile::scaled(class, factor.max(0.05))
    }

    /// Draws `n` profiles.
    pub fn sample_many(&self, n: usize, rng: &mut impl Rng) -> Vec<NodeProfile> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_resources::ResourceKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sample_respects_zero_weights() {
        let cfg = PopulationConfig {
            class_weights: [1.0, 0.0, 0.0, 0.0],
            jitter: 0.0,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(cfg.sample(&mut rng).class, DeviceClass::Phone);
        }
    }

    #[test]
    fn jitter_varies_capacity_within_bounds() {
        let cfg = PopulationConfig {
            class_weights: [0.0, 0.0, 1.0, 0.0],
            jitter: 0.2,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let base = DeviceClass::Laptop.capacity().get(ResourceKind::Cpu);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..30 {
            let p = cfg.sample(&mut rng);
            let cpu = p.capacity.get(ResourceKind::Cpu);
            assert!(cpu >= base * 0.8 - 1e-9 && cpu <= base * 1.2 + 1e-9);
            distinct.insert((cpu * 1000.0) as u64);
        }
        assert!(distinct.len() > 10, "jitter should vary capacities");
    }

    #[test]
    fn pure_adhoc_has_no_servers() {
        let cfg = PopulationConfig::pure_adhoc();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for p in cfg.sample_many(100, &mut rng) {
            assert_ne!(p.class, DeviceClass::FixedServer);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let cfg = PopulationConfig::default();
        let a = cfg.sample_many(20, &mut ChaCha8Rng::seed_from_u64(9));
        let b = cfg.sample_many(20, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
