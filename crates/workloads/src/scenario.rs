//! Full DES scenario assembly.
//!
//! A [`Scenario`] wires a device population into a `qosc-netsim`
//! simulation: every node gets a [`ProviderEngine`] (capacity from its
//! hardware profile, link bandwidth from its radio class) and an
//! [`OrganizerEngine`] (any node may originate service requests), with all
//! application templates' demand models registered. Experiments then queue
//! services and run the simulator.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_core::{
    ActorRuntime, CoalitionNode, DesRuntime, DesShardedRuntime, DirectRuntime, LoggedEvent, Msg,
    OrganizerConfig, OrganizerEngine, ProviderConfig, ProviderEngine, Runtime,
};
use qosc_netsim::{
    Area, Mobility, NetStats, PartitionPlan, RadioModel, ShardedSimulator, SimConfig, SimDuration,
    SimTime, Simulator,
};
use qosc_resources::{NodeProfile, ResourceKind};
use qosc_spec::ServiceDef;

use crate::apps::AppTemplate;
use crate::population::PopulationConfig;

/// Execution backend a [`ScenarioConfig`] can be instantiated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The deterministic DES (`qosc-netsim`): geometry, latency, loss,
    /// mobility. The backend every experiment sweep uses.
    Des,
    /// The DES event loop sharded across `workers` threads
    /// (region-partitioned conservative parallel simulation). Identical
    /// geometry and semantics to [`Backend::Des`]; at `workers: 1` the
    /// run is bit-equal to it.
    DesSharded {
        /// Worker thread count (≥ 1; the shard count is additionally
        /// capped by the node count).
        workers: usize,
    },
    /// The zero-latency in-memory runtime: no geometry (full
    /// connectivity), the fast path for tests and benches.
    Direct,
    /// [`Backend::Direct`] with same-instant CFP deliveries coalesced
    /// per provider into one batched pricing pass
    /// (`DirectRuntime::set_cfp_batching`) — the open-loop load-engine
    /// path, where many negotiations kick off in the same instant.
    DirectBatched,
    /// The live threaded actor transport: wall-clock timers, full
    /// connectivity through the process-wide directory.
    Actor,
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Simulation area.
    pub area: Area,
    /// Radio model.
    pub radio: RadioModel,
    /// Mobility applied to battery-powered nodes (`None` = everyone
    /// static); fixed servers never move.
    pub mobility: Option<Mobility>,
    /// Device mix.
    pub population: PopulationConfig,
    /// Organizer tunables (shared by all nodes).
    pub organizer: OrganizerConfig,
    /// Provider tunables (shared; per-node link bandwidth is derived from
    /// the hardware profile and overrides the template's value).
    pub provider: ProviderConfig,
    /// Link-level partition schedule, installed on every backend that
    /// enforces cuts ([`Backend::Des`], [`Backend::DesSharded`],
    /// [`Backend::Direct`]/[`Backend::DirectBatched`]; the actor
    /// transport has no fault layer). Empty by default.
    pub partitions: PartitionPlan,
    /// RNG seed (drives placement, population and the simulator).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            area: Area::new(120.0, 120.0),
            radio: RadioModel::default(),
            mobility: None,
            population: PopulationConfig::default(),
            organizer: OrganizerConfig::default(),
            provider: ProviderConfig::default(),
            partitions: PartitionPlan::none(),
            seed: 0,
        }
    }
}

impl ScenarioConfig {
    /// Dense-population preset: `nodes` devices packed into a 30 m square,
    /// comfortably inside the default radio range, so every node hears
    /// every CFP and every negotiation sees the full population's
    /// proposals. This is the preset the large F-series sweeps use to
    /// drive the batched evaluation path at 128–256 nodes; override any
    /// other field with struct-update syntax
    /// (`ScenarioConfig { population, ..ScenarioConfig::dense(256, seed) }`).
    pub fn dense(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            area: Area::new(30.0, 30.0),
            seed,
            ..Default::default()
        }
    }
}

impl ScenarioConfig {
    /// Builds one node's engines from its sampled hardware profile:
    /// a provider (capacity from the profile, payload bandwidth tied to
    /// the radio class, every application template's demand model
    /// registered) plus an organizer, since any node may originate
    /// service requests.
    fn coalition_node(&self, id: u32, profile: &NodeProfile) -> CoalitionNode {
        let link_kbps = profile.capacity.get(ResourceKind::NetBandwidth);
        let mut provider = ProviderEngine::new(
            id,
            profile.capacity,
            ProviderConfig {
                link_kbps,
                ..self.provider.clone()
            },
        );
        for t in AppTemplate::ALL {
            provider.register_demand_model(t.spec().name().to_string(), t.demand_model());
        }
        CoalitionNode::new(id)
            .with_provider(provider)
            .with_organizer(OrganizerEngine::new(id, self.organizer.clone()))
    }

    /// The full population as backend-agnostic nodes, drawn with exactly
    /// the seed derivation [`Scenario::build`] uses — so every backend
    /// sees the same device mix.
    fn population_nodes(&self) -> Vec<CoalitionNode> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5eed_cafe);
        let profiles = self.population.sample_many(self.nodes, &mut rng);
        profiles
            .iter()
            .enumerate()
            .map(|(i, profile)| self.coalition_node(i as u32, profile))
            .collect()
    }

    /// Instantiates the scenario description on any [`Runtime`] backend.
    /// The population draw is identical across backends (profiles are
    /// sampled before any backend-specific randomness); geometry and
    /// mobility only exist on [`Backend::Des`] — the other backends are
    /// fully connected.
    pub fn build_backend(&self, backend: Backend) -> Box<dyn Runtime> {
        let mut rt: Box<dyn Runtime> = match backend {
            Backend::Des => return Box::new(Scenario::build(self).runtime),
            Backend::DesSharded { workers } => return Box::new(self.build_sharded(workers)),
            Backend::Direct => Box::new(DirectRuntime::new()),
            Backend::DirectBatched => {
                let mut direct = DirectRuntime::new();
                direct.set_cfp_batching(true);
                Box::new(direct)
            }
            Backend::Actor => Box::new(ActorRuntime::new()),
        };
        for node in self.population_nodes() {
            rt.add_node(node).expect("sequential ids are unique");
        }
        if !self.partitions.is_none() {
            // The actor transport is the one backend without a fault
            // layer; everywhere else the plan must take.
            let applied = rt.set_partition_plan(&self.partitions);
            debug_assert!(
                applied || matches!(backend, Backend::Actor),
                "backend {backend:?} rejected the partition plan"
            );
        }
        rt
    }

    /// Builds the scenario on the sharded parallel DES, with exactly the
    /// geometry, population and seed derivation of [`Scenario::build`] —
    /// so a sharded run is comparable, event for event, with a sequential
    /// DES run of the same config.
    pub fn build_sharded(&self, workers: usize) -> DesShardedRuntime {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5eed_cafe);
        let mut sim: ShardedSimulator<Msg> = ShardedSimulator::new(
            SimConfig {
                area: self.area,
                radio: self.radio.clone(),
                seed: self.seed,
                ..Default::default()
            },
            workers,
        );
        let profiles = self.population.sample_many(self.nodes, &mut rng);
        for profile in profiles.iter() {
            let mobility = match (&self.mobility, profile.class.battery_powered()) {
                (Some(m), true) => m.clone(),
                _ => Mobility::Static,
            };
            sim.add_node(self.area.sample(&mut rng), mobility);
        }
        let mut runtime = DesShardedRuntime::new(sim);
        for (i, profile) in profiles.iter().enumerate() {
            runtime
                .add_node(self.coalition_node(i as u32, profile))
                .expect("sequential ids are unique");
        }
        if !self.partitions.is_none() {
            runtime.set_partition_plan(&self.partitions);
        }
        runtime
    }
}

/// An assembled DES simulation ready to accept services.
///
/// `Scenario` keeps the concrete [`DesRuntime`] so DES-only controls
/// (failure injection, positions, network counters) stay reachable; use
/// [`ScenarioConfig::build_backend`] when any backend will do.
pub struct Scenario {
    /// The DES runtime hosting the engines.
    pub runtime: DesRuntime,
    /// Hardware profile per node (index = node id).
    pub profiles: Vec<NodeProfile>,
}

impl Scenario {
    /// Builds a scenario from the config.
    pub fn build(config: &ScenarioConfig) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed_cafe);
        let mut sim: Simulator<Msg> = Simulator::new(SimConfig {
            area: config.area,
            radio: config.radio.clone(),
            seed: config.seed,
            ..Default::default()
        });
        let profiles = config.population.sample_many(config.nodes, &mut rng);
        for profile in profiles.iter() {
            let mobility = match (&config.mobility, profile.class.battery_powered()) {
                (Some(m), true) => m.clone(),
                _ => Mobility::Static,
            };
            sim.add_node(config.area.sample(&mut rng), mobility);
        }
        let mut runtime = DesRuntime::new(sim);
        for (i, profile) in profiles.iter().enumerate() {
            runtime
                .add_node(config.coalition_node(i as u32, profile))
                .expect("sequential ids are unique");
        }
        if !config.partitions.is_none() {
            runtime.set_partition_plan(&config.partitions);
        }
        Scenario { runtime, profiles }
    }

    /// Queues `service` at `node` and schedules its negotiation to start
    /// at `at` (absolute, must be ≥ current sim time).
    pub fn submit(&mut self, node: u32, service: ServiceDef, at: SimTime) {
        self.runtime
            .submit(node, service, at)
            .expect("node ids come from the population");
    }

    /// Convenience: run to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.runtime.run(deadline)
    }

    /// Everything the engines reported, in emission order.
    pub fn events(&self) -> &[LoggedEvent] {
        self.runtime.events()
    }

    /// The provider engine of `node`, if registered.
    pub fn provider(&self, node: u32) -> Option<&ProviderEngine> {
        self.runtime.node(node).and_then(CoalitionNode::provider)
    }

    /// Network counters accumulated so far.
    pub fn net_stats(&self) -> &NetStats {
        self.runtime.net_stats()
    }

    /// The underlying simulator (positions, failure injection).
    pub fn sim(&self) -> &Simulator<Msg> {
        self.runtime.sim()
    }

    /// Mutable simulator access (e.g. `schedule_down`).
    pub fn sim_mut(&mut self) -> &mut Simulator<Msg> {
        self.runtime.sim_mut()
    }

    /// Total CPU capacity across the population.
    pub fn aggregate_cpu(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.capacity.get(ResourceKind::Cpu))
            .sum()
    }
}

/// Convenience mobility constructor: pedestrian random waypoint.
pub fn pedestrian(speed_ms: f64) -> Mobility {
    Mobility::RandomWaypoint {
        min_speed: (speed_ms * 0.5).max(0.1),
        max_speed: speed_ms.max(0.1),
        pause: SimDuration::secs(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_core::NegoEvent;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dense_static_scenario_forms_coalitions() {
        let config = ScenarioConfig {
            nodes: 6,
            area: Area::new(60.0, 60.0), // everyone within the 50 m range
            seed: 7,
            ..Default::default()
        };
        let mut scenario = Scenario::build(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
        scenario.submit(0, svc, SimTime(1_000));
        scenario.run_until(SimTime(5_000_000));
        assert!(scenario.events().iter().any(|e| matches!(
            e.event,
            NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
        )));
    }

    #[test]
    fn partition_plan_cuts_links_and_heals() {
        let split = |partitions: PartitionPlan| {
            let config = ScenarioConfig {
                nodes: 6,
                area: Area::new(60.0, 60.0),
                seed: 7,
                partitions,
                ..Default::default()
            };
            let mut scenario = Scenario::build(&config);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
            scenario.submit(0, svc, SimTime(1_000));
            scenario.run_until(SimTime(5_000_000));
            (
                scenario.net_stats().partition_cuts,
                scenario.events().iter().any(|e| {
                    matches!(
                        e.event,
                        NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
                    )
                }),
            )
        };
        // A cut through the formation window drops deliveries; after the
        // heal the round still concludes, one way or the other.
        let plan = PartitionPlan::none()
            .partition_at(SimTime(2_000), vec![vec![0, 1, 2], vec![3, 4, 5]])
            .heal_at(SimTime(300_000));
        let (cuts, settled) = split(plan);
        assert!(cuts > 0, "the mid-CFP cut must block deliveries");
        assert!(settled, "the negotiation must conclude after the heal");
        // An empty plan leaves the run untouched.
        let (cuts, settled) = split(PartitionPlan::none());
        assert_eq!(cuts, 0);
        assert!(settled);
    }

    #[test]
    fn profiles_align_with_node_ids() {
        let config = ScenarioConfig {
            nodes: 5,
            seed: 3,
            ..Default::default()
        };
        let scenario = Scenario::build(&config);
        assert_eq!(scenario.profiles.len(), 5);
        assert_eq!(scenario.sim().node_count(), 5);
        assert!(scenario.aggregate_cpu() > 0.0);
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let run = |seed: u64| {
            let config = ScenarioConfig {
                nodes: 8,
                seed,
                mobility: Some(pedestrian(2.0)),
                ..Default::default()
            };
            let mut scenario = Scenario::build(&config);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let svc = AppTemplate::VideoConference.service("svc", 3, &mut rng);
            scenario.submit(0, svc, SimTime(1_000));
            scenario.run_until(SimTime(10_000_000));
            (
                format!("{:?}", scenario.events()),
                scenario.net_stats().messages_sent(),
            )
        };
        assert_eq!(run(11), run(11));
        // And different seeds genuinely vary the world: the full event
        // log (timings, winners, metrics) can't coincide across seeds.
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn mobile_nodes_move_static_servers_do_not() {
        let config = ScenarioConfig {
            nodes: 20,
            seed: 5,
            mobility: Some(pedestrian(10.0)),
            population: PopulationConfig {
                class_weights: [0.5, 0.0, 0.0, 0.5],
                jitter: 0.0,
            },
            ..Default::default()
        };
        let mut scenario = Scenario::build(&config);
        let before: Vec<_> = (0..20)
            .map(|i| scenario.sim().position(qosc_netsim::NodeId(i)).unwrap())
            .collect();
        scenario.run_until(SimTime(30_000_000));
        for (i, profile) in scenario.profiles.iter().enumerate() {
            let after = scenario
                .sim()
                .position(qosc_netsim::NodeId(i as u32))
                .unwrap();
            let moved = before[i].distance(&after) > 1.0;
            if profile.class.battery_powered() {
                // Pedestrian nodes almost surely moved within 30 s.
                assert!(moved, "node {i} ({:?}) should move", profile.class);
            } else {
                assert!(!moved, "fixed server {i} must not move");
            }
        }
    }
}
