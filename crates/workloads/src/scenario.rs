//! Full DES scenario assembly.
//!
//! A [`Scenario`] wires a device population into a `qosc-netsim`
//! simulation: every node gets a [`ProviderEngine`] (capacity from its
//! hardware profile, link bandwidth from its radio class) and an
//! [`OrganizerEngine`] (any node may originate service requests), with all
//! application templates' demand models registered. Experiments then queue
//! services and run the simulator.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use qosc_core::{
    kickoff_token, Msg, OrganizerConfig, OrganizerEngine, ProviderConfig, ProviderEngine, SimHost,
};
use qosc_netsim::{Area, Mobility, RadioModel, SimConfig, SimDuration, SimTime, Simulator};
use qosc_resources::{NodeProfile, ResourceKind};
use qosc_spec::ServiceDef;

use crate::apps::AppTemplate;
use crate::population::PopulationConfig;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Simulation area.
    pub area: Area,
    /// Radio model.
    pub radio: RadioModel,
    /// Mobility applied to battery-powered nodes (`None` = everyone
    /// static); fixed servers never move.
    pub mobility: Option<Mobility>,
    /// Device mix.
    pub population: PopulationConfig,
    /// Organizer tunables (shared by all nodes).
    pub organizer: OrganizerConfig,
    /// Provider tunables (shared; per-node link bandwidth is derived from
    /// the hardware profile and overrides the template's value).
    pub provider: ProviderConfig,
    /// RNG seed (drives placement, population and the simulator).
    pub seed: u64,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        Self {
            nodes: 8,
            area: Area::new(120.0, 120.0),
            radio: RadioModel::default(),
            mobility: None,
            population: PopulationConfig::default(),
            organizer: OrganizerConfig::default(),
            provider: ProviderConfig::default(),
            seed: 0,
        }
    }
}

impl ScenarioConfig {
    /// Dense-population preset: `nodes` devices packed into a 30 m square,
    /// comfortably inside the default radio range, so every node hears
    /// every CFP and every negotiation sees the full population's
    /// proposals. This is the preset the large F-series sweeps use to
    /// drive the batched evaluation path at 128–256 nodes; override any
    /// other field with struct-update syntax
    /// (`ScenarioConfig { population, ..ScenarioConfig::dense(256, seed) }`).
    pub fn dense(nodes: usize, seed: u64) -> Self {
        Self {
            nodes,
            area: Area::new(30.0, 30.0),
            seed,
            ..Default::default()
        }
    }
}

/// An assembled simulation ready to accept services.
pub struct Scenario {
    /// The network simulator.
    pub sim: Simulator<Msg>,
    /// The engine host (plug into `sim.run_until`).
    pub host: SimHost,
    /// Hardware profile per node (index = node id).
    pub profiles: Vec<NodeProfile>,
}

impl Scenario {
    /// Builds a scenario from the config.
    pub fn build(config: &ScenarioConfig) -> Scenario {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed_cafe);
        let mut sim: Simulator<Msg> = Simulator::new(SimConfig {
            area: config.area,
            radio: config.radio.clone(),
            seed: config.seed,
            ..Default::default()
        });
        let mut host = SimHost::new();
        let profiles = config.population.sample_many(config.nodes, &mut rng);
        for (i, profile) in profiles.iter().enumerate() {
            let mobility = match (&config.mobility, profile.class.battery_powered()) {
                (Some(m), true) => m.clone(),
                _ => Mobility::Static,
            };
            sim.add_node(config.area.sample(&mut rng), mobility);
            // Provider: payload bandwidth tied to the node's radio class.
            let link_kbps = profile.capacity.get(ResourceKind::NetBandwidth);
            let mut provider = ProviderEngine::new(
                i as u32,
                profile.capacity,
                ProviderConfig {
                    link_kbps,
                    ..config.provider.clone()
                },
            );
            for t in AppTemplate::ALL {
                provider.register_demand_model(t.spec().name().to_string(), t.demand_model());
            }
            host.add_provider(provider);
            host.add_organizer(OrganizerEngine::new(i as u32, config.organizer.clone()));
        }
        Scenario {
            sim,
            host,
            profiles,
        }
    }

    /// Queues `service` at `node` and schedules its negotiation to start
    /// at `at` (absolute, must be ≥ current sim time).
    pub fn submit(&mut self, node: u32, service: ServiceDef, at: SimTime) {
        self.host.queue_service(node, service);
        let delay = at.since(self.sim.now());
        self.sim
            .schedule_timer(qosc_netsim::NodeId(node), delay, kickoff_token(node));
    }

    /// Convenience: run to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.sim.run_until(&mut self.host, deadline)
    }

    /// Total CPU capacity across the population.
    pub fn aggregate_cpu(&self) -> f64 {
        self.profiles
            .iter()
            .map(|p| p.capacity.get(ResourceKind::Cpu))
            .sum()
    }
}

/// Convenience mobility constructor: pedestrian random waypoint.
pub fn pedestrian(speed_ms: f64) -> Mobility {
    Mobility::RandomWaypoint {
        min_speed: (speed_ms * 0.5).max(0.1),
        max_speed: speed_ms.max(0.1),
        pause: SimDuration::secs(2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosc_core::NegoEvent;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn dense_static_scenario_forms_coalitions() {
        let config = ScenarioConfig {
            nodes: 6,
            area: Area::new(60.0, 60.0), // everyone within the 50 m range
            seed: 7,
            ..Default::default()
        };
        let mut scenario = Scenario::build(&config);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
        scenario.submit(0, svc, SimTime(1_000));
        scenario.run_until(SimTime(5_000_000));
        assert!(scenario.host.events.iter().any(|e| matches!(
            e.event,
            NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
        )));
    }

    #[test]
    fn profiles_align_with_node_ids() {
        let config = ScenarioConfig {
            nodes: 5,
            seed: 3,
            ..Default::default()
        };
        let scenario = Scenario::build(&config);
        assert_eq!(scenario.profiles.len(), 5);
        assert_eq!(scenario.sim.node_count(), 5);
        assert!(scenario.aggregate_cpu() > 0.0);
    }

    #[test]
    fn scenarios_are_seed_deterministic() {
        let run = |seed: u64| {
            let config = ScenarioConfig {
                nodes: 8,
                seed,
                mobility: Some(pedestrian(2.0)),
                ..Default::default()
            };
            let mut scenario = Scenario::build(&config);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let svc = AppTemplate::VideoConference.service("svc", 3, &mut rng);
            scenario.submit(0, svc, SimTime(1_000));
            scenario.run_until(SimTime(10_000_000));
            (
                format!("{:?}", scenario.host.events),
                scenario.sim.stats().messages_sent(),
            )
        };
        assert_eq!(run(11), run(11));
        // And different seeds genuinely vary the world: the full event
        // log (timings, winners, metrics) can't coincide across seeds.
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn mobile_nodes_move_static_servers_do_not() {
        let config = ScenarioConfig {
            nodes: 20,
            seed: 5,
            mobility: Some(pedestrian(10.0)),
            population: PopulationConfig {
                class_weights: [0.5, 0.0, 0.0, 0.5],
                jitter: 0.0,
            },
            ..Default::default()
        };
        let mut scenario = Scenario::build(&config);
        let before: Vec<_> = (0..20)
            .map(|i| scenario.sim.position(qosc_netsim::NodeId(i)).unwrap())
            .collect();
        scenario.run_until(SimTime(30_000_000));
        for (i, profile) in scenario.profiles.iter().enumerate() {
            let after = scenario
                .sim
                .position(qosc_netsim::NodeId(i as u32))
                .unwrap();
            let moved = before[i].distance(&after) > 1.0;
            if profile.class.battery_powered() {
                // Pedestrian nodes almost surely moved within 30 s.
                assert!(moved, "node {i} ({:?}) should move", profile.class);
            } else {
                assert!(!moved, "fixed server {i} must not move");
            }
        }
    }
}
