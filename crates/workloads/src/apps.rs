//! Application templates — the multimedia workloads the paper motivates
//! (§1 video conferencing, §3.1 remote surveillance, §7 transcoding).

use std::sync::Arc;

use rand::Rng;

use qosc_resources::{
    av_demand_model, DemandModel, DemandTerm, Feature, LinearDemandModel, ResourceKind,
    ResourceVector,
};
use qosc_spec::{catalog, QosSpec, ServiceDef, ServiceRequest, TaskDef};

/// The workload application classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppTemplate {
    /// §3.1's remote surveillance: modest video, minimal audio.
    Surveillance,
    /// §1's video conferencing: demanding on every dimension.
    VideoConference,
    /// Voice-first call: audio dominates.
    VoiceCall,
    /// §7's media transcoding offload.
    Transcode,
}

impl AppTemplate {
    /// All templates.
    pub const ALL: [AppTemplate; 4] = [
        AppTemplate::Surveillance,
        AppTemplate::VideoConference,
        AppTemplate::VoiceCall,
        AppTemplate::Transcode,
    ];

    /// The application's QoS spec.
    pub fn spec(&self) -> QosSpec {
        match self {
            AppTemplate::Transcode => catalog::transcode_spec(),
            _ => catalog::av_spec(),
        }
    }

    /// The user's request for this template.
    pub fn request(&self) -> ServiceRequest {
        match self {
            AppTemplate::Surveillance => catalog::surveillance_request(),
            AppTemplate::VideoConference => catalog::video_conference_request(),
            AppTemplate::VoiceCall => catalog::voice_first_request(),
            AppTemplate::Transcode => catalog::transcode_request(),
        }
    }

    /// The a-priori demand analysis for this template's spec.
    pub fn demand_model(&self) -> Arc<dyn DemandModel> {
        match self {
            AppTemplate::Transcode => Arc::new(transcode_demand_model(&self.spec())),
            _ => Arc::new(av_demand_model(&self.spec())),
        }
    }

    /// Typical payload sizes `(input, output)` in bytes.
    pub fn payload(&self, rng: &mut impl Rng) -> (u64, u64) {
        match self {
            AppTemplate::Surveillance => (rng.gen_range(50_000..200_000), 10_000),
            AppTemplate::VideoConference => (rng.gen_range(200_000..800_000), 100_000),
            AppTemplate::VoiceCall => (rng.gen_range(20_000..60_000), 20_000),
            AppTemplate::Transcode => (rng.gen_range(500_000..4_000_000), 400_000),
        }
    }

    /// Builds a `tasks`-task service of this template.
    pub fn service(&self, name: impl Into<String>, tasks: usize, rng: &mut impl Rng) -> ServiceDef {
        let spec = self.spec();
        let request = self.request();
        ServiceDef::new(
            name,
            (0..tasks)
                .map(|i| {
                    let (input_bytes, output_bytes) = self.payload(rng);
                    TaskDef {
                        name: format!("task-{i}"),
                        spec: spec.clone(),
                        request: request.clone(),
                        input_bytes,
                        output_bytes,
                    }
                })
                .collect(),
        )
    }
}

/// Demand model for the transcode spec: CPU with chunk rate and (inversely)
/// compression ratio quality, bandwidth with bitrate.
pub fn transcode_demand_model(spec: &QosSpec) -> LinearDemandModel {
    let chunk = spec
        .path("Throughput", "chunk_rate")
        .expect("transcode spec has chunk_rate");
    let ratio = spec
        .path("Throughput", "compression_ratio")
        .expect("transcode spec has compression_ratio");
    let codec = spec
        .path("Fidelity", "codec")
        .expect("transcode spec has codec");
    let bitrate = spec
        .path("Fidelity", "bitrate_kbps")
        .expect("transcode spec has bitrate_kbps");
    LinearDemandModel::new(
        ResourceVector::new(4.0, 16.0, 8.0, 1.0, 40.0),
        vec![
            DemandTerm {
                path: chunk,
                feature: Feature::Numeric,
                kind: ResourceKind::Cpu,
                coeff: 2.5,
            },
            // Better (lower) compression ratios sit earlier in the domain
            // and cost more CPU: quality-index 1.0 at ratio 0.9? The domain
            // is declared best-quality-first (0.9 first), so invert via a
            // negative-free formulation: higher quality index → more CPU.
            DemandTerm {
                path: ratio,
                feature: Feature::QualityIndex,
                kind: ResourceKind::Cpu,
                coeff: 30.0,
            },
            DemandTerm {
                path: codec,
                feature: Feature::QualityIndex,
                kind: ResourceKind::Cpu,
                coeff: 20.0,
            },
            DemandTerm {
                path: bitrate,
                feature: Feature::Numeric,
                kind: ResourceKind::NetBandwidth,
                coeff: 1.0,
            },
            DemandTerm {
                path: chunk,
                feature: Feature::Numeric,
                kind: ResourceKind::Energy,
                coeff: 10.0,
            },
            DemandTerm {
                path: chunk,
                feature: Feature::Numeric,
                kind: ResourceKind::Memory,
                coeff: 2.0,
            },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn every_template_is_internally_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for t in AppTemplate::ALL {
            let spec = t.spec();
            let resolved = t.request().resolve(&spec);
            assert!(resolved.is_ok(), "{t:?} request must resolve");
            let svc = t.service("s", 2, &mut rng);
            assert_eq!(svc.task_count(), 2);
            assert!(svc.resolve_all().is_ok());
        }
    }

    #[test]
    fn transcode_model_validates_and_is_monotone() {
        let spec = catalog::transcode_spec();
        let model = transcode_demand_model(&spec);
        assert!(model.validate(&spec));
        let req = catalog::transcode_request().resolve(&spec).unwrap();
        let best = req.quality_vector(&spec, &[0, 0, 0, 0]).unwrap();
        let worst_levels: Vec<usize> = req.ladder_lengths().iter().map(|l| l - 1).collect();
        let worst = req.quality_vector(&spec, &worst_levels).unwrap();
        let d_best = model.demand(&spec, &best);
        let d_worst = model.demand(&spec, &worst);
        assert!(d_worst.get(ResourceKind::Cpu) < d_best.get(ResourceKind::Cpu));
    }

    #[test]
    fn payloads_are_plausible() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for t in AppTemplate::ALL {
            let (i, o) = t.payload(&mut rng);
            assert!(i > 0 && o > 0);
        }
    }
}
