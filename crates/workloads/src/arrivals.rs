//! Poisson service arrivals.
//!
//! Service requests "may arrive dynamically" (§5); load sweeps (F2) model
//! them as a Poisson process: exponential inter-arrival times with a
//! configurable rate.

use rand::Rng;

use qosc_netsim::{SimDuration, SimTime};

/// Exponential inter-arrival sampler.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    /// Mean arrivals per simulated second.
    pub rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given rate (arrivals/second).
    pub fn new(rate_per_s: f64) -> Self {
        Self { rate_per_s }
    }

    /// Samples the next inter-arrival gap.
    pub fn next_gap(&self, rng: &mut impl Rng) -> SimDuration {
        if self.rate_per_s <= 0.0 {
            return SimDuration::secs(u64::MAX / 2_000_000); // effectively never
        }
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let gap_s = -u.ln() / self.rate_per_s;
        SimDuration::secs_f64(gap_s)
    }

    /// Samples arrival instants from `start` until `end` (exclusive).
    pub fn sample_until(&self, start: SimTime, end: SimTime, rng: &mut impl Rng) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start;
        loop {
            t += self.next_gap(rng);
            if t >= end {
                break;
            }
            out.push(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_rate_is_approximately_honoured() {
        let p = PoissonArrivals::new(5.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let arrivals = p.sample_until(SimTime::ZERO, SimTime(100_000_000), &mut rng);
        // 5/s over 100 s → ~500 arrivals; accept ±20 %.
        assert!(
            (400..=600).contains(&arrivals.len()),
            "got {}",
            arrivals.len()
        );
        // Strictly increasing.
        for w in arrivals.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zero_rate_never_arrives() {
        let p = PoissonArrivals::new(0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(p
            .sample_until(SimTime::ZERO, SimTime(10_000_000), &mut rng)
            .is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let p = PoissonArrivals::new(2.0);
        let a = p.sample_until(
            SimTime::ZERO,
            SimTime(10_000_000),
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        let b = p.sample_until(
            SimTime::ZERO,
            SimTime(10_000_000),
            &mut ChaCha8Rng::seed_from_u64(3),
        );
        assert_eq!(a, b);
    }
}
