//! # qosc-workloads — populations, applications and scenarios
//!
//! Everything the evaluation suite needs to synthesise the paper's world:
//!
//! * [`PopulationConfig`] — heterogeneous device mixes (§2's phones, PDAs,
//!   laptops, optional fixed servers) with capacity jitter.
//! * [`AppTemplate`] — the multimedia applications the paper motivates
//!   (surveillance §3.1, video conferencing §1, voice, transcoding §7),
//!   each with spec, preference-ordered request, demand model and payload
//!   distribution.
//! * [`PoissonArrivals`] — dynamic request arrivals (§5).
//! * [`Scenario`] / [`ScenarioConfig`] — assembled DES runs: population +
//!   geometry + mobility + engines, ready for `submit` and `run_until`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
mod arrivals;
mod population;
mod scenario;

pub use apps::{transcode_demand_model, AppTemplate};
pub use arrivals::PoissonArrivals;
pub use population::PopulationConfig;
pub use scenario::{pedestrian, Backend, Scenario, ScenarioConfig};
