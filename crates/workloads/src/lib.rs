//! # qosc-workloads — populations, applications and scenarios
//!
//! Everything the evaluation suite needs to synthesise the paper's world:
//!
//! * [`PopulationConfig`] — heterogeneous device mixes (§2's phones, PDAs,
//!   laptops, optional fixed servers) with capacity jitter.
//! * [`AppTemplate`] — the multimedia applications the paper motivates
//!   (surveillance §3.1, video conferencing §1, voice, transcoding §7),
//!   each with spec, preference-ordered request, demand model and payload
//!   distribution.
//! * [`Scenario`] / [`ScenarioConfig`] — assembled DES runs: population +
//!   geometry + mobility + engines, ready for `submit` and `run_until`.
//!
//! Dynamic request arrivals (§5's Poisson processes, piecewise rate
//! curves, thinning) moved to the open-loop load engine in `qosc-load`,
//! which layers arrival sampling and saturation sweeps on top of the
//! scenarios assembled here.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod apps;
mod population;
mod scenario;

pub use apps::{transcode_demand_model, AppTemplate};
pub use population::PopulationConfig;
pub use scenario::{pedestrian, Backend, Scenario, ScenarioConfig};
