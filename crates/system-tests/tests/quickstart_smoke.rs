//! Smoke test guarding the public API surface that the `qosc_core`
//! lib.rs doctest exercises: the quickstart scenario must build through
//! the same constructors and actually form a coalition.

use qosc_core::NegoEvent;
use qosc_netsim::SimTime;
use qosc_system_tests::quickstart_scenario;

#[test]
fn quickstart_scenario_forms_a_coalition() {
    let (mut sim, mut host) = quickstart_scenario();
    sim.run_until(&mut host, SimTime(5_000_000));
    let formed: Vec<_> = host
        .events
        .iter()
        .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
        .collect();
    assert_eq!(formed.len(), 1, "exactly one coalition should form");
    // The formed coalition must have picked a real node and recorded
    // per-task outcomes.
    if let NegoEvent::Formed { metrics, .. } = &formed[0].event {
        assert!(!metrics.outcomes.is_empty());
        for o in metrics.outcomes.values() {
            assert!(o.node < 3);
        }
        assert!(metrics.distinct_members() >= 1);
    }
    // The network actually carried protocol traffic.
    assert!(sim.stats().messages_sent() > 0);
}

#[test]
fn quickstart_scenario_is_deterministic() {
    let run = || {
        let (mut sim, mut host) = quickstart_scenario();
        sim.run_until(&mut host, SimTime(5_000_000));
        (
            host.events.len(),
            sim.stats().messages_sent(),
            format!("{:?}", host.events),
        )
    };
    assert_eq!(run(), run());
}
