//! Smoke test guarding the public API surface that the `qosc_core`
//! lib.rs doctest exercises: the quickstart scenario must build through
//! the same constructors and actually form a coalition — on every
//! backend of the unified runtime API.

use qosc_core::{ActorRuntime, DirectRuntime, NegoEvent, Runtime};
use qosc_netsim::SimTime;
use qosc_system_tests::{quickstart_nodes, quickstart_scenario, quickstart_service};

#[test]
fn quickstart_scenario_forms_a_coalition() {
    let mut rt = quickstart_scenario();
    rt.run(SimTime(5_000_000));
    let formed: Vec<_> = rt
        .events()
        .iter()
        .filter(|e| matches!(e.event, NegoEvent::Formed { .. }))
        .collect();
    assert_eq!(formed.len(), 1, "exactly one coalition should form");
    // The formed coalition must have picked a real node and recorded
    // per-task outcomes.
    if let NegoEvent::Formed { metrics, .. } = &formed[0].event {
        assert!(!metrics.outcomes.is_empty());
        for o in metrics.outcomes.values() {
            assert!(o.node < 3);
        }
        assert!(metrics.distinct_members() >= 1);
    }
    // The network actually carried protocol traffic.
    assert!(rt.messages_sent() > 0);
}

#[test]
fn quickstart_scenario_is_deterministic() {
    let run = || {
        let mut rt = quickstart_scenario();
        rt.run(SimTime(5_000_000));
        (
            rt.events().len(),
            rt.messages_sent(),
            format!("{:?}", rt.events()),
        )
    };
    assert_eq!(run(), run());
}

/// The same quickstart node set runs unmodified on every backend
/// through the one `Runtime` API.
#[test]
fn quickstart_runs_on_every_backend() {
    let backends: Vec<Box<dyn Runtime>> = vec![
        Box::new(DirectRuntime::new()),
        Box::new(quickstart_scenario()), // DES, nodes pre-registered
        Box::new(ActorRuntime::new()),
    ];
    for mut rt in backends {
        let des = rt.backend_name() == "des";
        if !des {
            for node in quickstart_nodes() {
                rt.add_node(node).unwrap();
            }
            rt.submit(0, quickstart_service(), SimTime(1_000)).unwrap();
        }
        let settled = rt.run_until_settled(1, SimTime(10_000_000));
        assert_eq!(settled, 1, "no settlement on {}", rt.backend_name());
        assert!(
            rt.events()
                .iter()
                .any(|e| matches!(e.event, NegoEvent::Formed { .. })),
            "no coalition on {}",
            rt.backend_name()
        );
        rt.shutdown();
    }
}
