//! Cross-backend equivalence: the DES at zero network latency and the
//! in-memory Direct runtime must be *event-for-event identical* for
//! fully connected, static, lossless scenarios — same assignments, same
//! metrics, same timestamps, same message counts.
//!
//! This is the contract that makes `DirectRuntime` a legitimate fast
//! path: anything it computes (tests, property checks, benches) is
//! exactly what the full simulator would have computed with the network
//! effects turned off. Runs under `PROPTEST_CASES` (64 locally, 256 in
//! CI).

use proptest::prelude::*;

use qosc_core::NegoEvent;
use qosc_netsim::{RadioModel, SimTime};
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the shared scenario description: a dense static population
/// under an instant (zero-latency, lossless) radio, so connectivity and
/// timing cannot differ between the backends.
fn config(nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        radio: RadioModel::instant(),
        population: PopulationConfig::default(),
        ..ScenarioConfig::dense(nodes, seed)
    }
}

/// Runs the scenario on one backend and extracts everything observable:
/// the full event log (timestamps, nodes, metrics) and message count.
fn run_on(
    backend: Backend,
    nodes: usize,
    tasks: usize,
    organizer: u32,
    seed: u64,
) -> (Vec<qosc_core::LoggedEvent>, u64) {
    let mut rt = config(nodes, seed).build_backend(backend);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(organizer, svc, SimTime(1_000)).unwrap();
    rt.run(SimTime(5_000_000));
    (rt.events().to_vec(), rt.messages_sent())
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// DES-at-zero-latency and Direct agree exactly: identical event
    /// logs (hence identical assignments and metrics) and identical
    /// message counts, for any seed, pool size, task count and
    /// originating node.
    #[test]
    fn des_at_zero_latency_equals_direct(
        seed in 0u64..10_000,
        nodes in 2usize..20,
        tasks in 1usize..4,
        org_pick in 0usize..20,
    ) {
        let organizer = (org_pick % nodes) as u32;
        let (des_events, des_msgs) = run_on(Backend::Des, nodes, tasks, organizer, seed);
        let (dir_events, dir_msgs) = run_on(Backend::Direct, nodes, tasks, organizer, seed);
        prop_assert_eq!(&des_events, &dir_events,
            "event logs diverged (seed {}, {} nodes, {} tasks, organizer {})",
            seed, nodes, tasks, organizer);
        prop_assert_eq!(des_msgs, dir_msgs, "message counts diverged");
        // The scenario is not vacuous: something settled.
        prop_assert!(des_events.iter().any(|e| matches!(
            e.event,
            NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
        )));
    }
}

/// A pinned (non-random) instance of the equivalence with the assignment
/// map surfaced explicitly, so a regression fails with a readable diff
/// even if the proptest shim's reporting is terse.
#[test]
fn pinned_seed_assignments_match_exactly() {
    for &(nodes, tasks, seed) in &[(6usize, 2usize, 42u64), (12, 3, 7), (3, 1, 0)] {
        let (des_events, des_msgs) = run_on(Backend::Des, nodes, tasks, 0, seed);
        let (dir_events, dir_msgs) = run_on(Backend::Direct, nodes, tasks, 0, seed);
        assert_eq!(des_events, dir_events, "seed {seed}");
        assert_eq!(des_msgs, dir_msgs, "seed {seed}");
        let assignments = |events: &[qosc_core::LoggedEvent]| {
            events.iter().find_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. } => Some(
                    metrics
                        .outcomes
                        .iter()
                        .map(|(t, o)| (*t, o.node))
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
        };
        assert_eq!(
            assignments(&des_events),
            assignments(&dir_events),
            "winner maps diverged at seed {seed}"
        );
    }
}
