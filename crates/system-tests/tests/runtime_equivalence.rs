//! Cross-backend equivalence: the DES at zero network latency and the
//! in-memory Direct runtime must be *event-for-event identical* for
//! fully connected, static, lossless scenarios — same assignments, same
//! metrics, same timestamps, same message counts.
//!
//! This is the contract that makes `DirectRuntime` a legitimate fast
//! path: anything it computes (tests, property checks, benches) is
//! exactly what the full simulator would have computed with the network
//! effects turned off. Runs under `PROPTEST_CASES` (64 locally, 256 in
//! CI).
//!
//! The live `ActorRuntime` gets the weaker — but still strong — *outcome*
//! contract: its event log rides wall-clock timestamps and thread
//! interleavings, so it cannot be event-for-event identical, but the
//! winner maps and the formation message counts must match the Direct
//! runtime exactly (winner selection is arrival-order invariant and every
//! proposal beats the wall-clock deadlines by orders of magnitude).

use std::collections::BTreeMap;

use proptest::prelude::*;

use qosc_core::{NegoEvent, NegoId, Pid};
use qosc_netsim::{RadioModel, SimDuration, SimTime};
use qosc_spec::TaskId;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the shared scenario description: a dense static population
/// under an instant (zero-latency, lossless) radio, so connectivity and
/// timing cannot differ between the backends.
fn config(nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        radio: RadioModel::instant(),
        population: PopulationConfig::default(),
        ..ScenarioConfig::dense(nodes, seed)
    }
}

/// Runs the scenario on one backend and extracts everything observable:
/// the full event log (timestamps, nodes, metrics) and message count.
fn run_on(
    backend: Backend,
    nodes: usize,
    tasks: usize,
    organizer: u32,
    seed: u64,
) -> (Vec<qosc_core::LoggedEvent>, u64) {
    let mut rt = config(nodes, seed).build_backend(backend);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(organizer, svc, SimTime(1_000))
        .expect("submit targets an organizer node");
    rt.run(SimTime(5_000_000));
    (rt.events().to_vec(), rt.messages_sent())
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// DES-at-zero-latency and Direct agree exactly: identical event
    /// logs (hence identical assignments and metrics) and identical
    /// message counts, for any seed, pool size, task count and
    /// originating node.
    #[test]
    fn des_at_zero_latency_equals_direct(
        seed in 0u64..10_000,
        nodes in 2usize..20,
        tasks in 1usize..4,
        org_pick in 0usize..20,
    ) {
        let organizer = (org_pick % nodes) as u32;
        let (des_events, des_msgs) = run_on(Backend::Des, nodes, tasks, organizer, seed);
        let (dir_events, dir_msgs) = run_on(Backend::Direct, nodes, tasks, organizer, seed);
        prop_assert_eq!(&des_events, &dir_events,
            "event logs diverged (seed {}, {} nodes, {} tasks, organizer {})",
            seed, nodes, tasks, organizer);
        prop_assert_eq!(des_msgs, dir_msgs, "message counts diverged");
        // The scenario is not vacuous: something settled.
        prop_assert!(des_events.iter().any(|e| matches!(
            e.event,
            NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
        )));
    }
}

/// Scenario used for the Actor-outcome property: dense and instant like
/// [`config`], but with monitoring off and heartbeats pushed beyond any
/// horizon, so the message count is purely the formation protocol and is
/// stable the moment the negotiation settles (the actor threads keep
/// running wall-clock timers after settling; heartbeats would race the
/// observation).
fn outcome_config(nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        organizer: qosc_core::OrganizerConfig {
            monitor: false,
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: SimDuration::secs(3600),
            ..Default::default()
        },
        ..config(nodes, seed)
    }
}

/// Winner map of every settled negotiation: `nego → task → winning node`
/// (unassigned tasks appear with no entry; incomplete formations keep
/// their partial outcomes).
fn winner_maps(events: &[qosc_core::LoggedEvent]) -> BTreeMap<NegoId, BTreeMap<TaskId, Pid>> {
    let mut out = BTreeMap::new();
    for e in events {
        let (nego, metrics) = match &e.event {
            NegoEvent::Formed { nego, metrics } => (*nego, metrics),
            NegoEvent::FormationIncomplete { nego, metrics, .. } => (*nego, metrics),
            _ => continue,
        };
        out.insert(
            nego,
            metrics.outcomes.iter().map(|(t, o)| (*t, o.node)).collect(),
        );
    }
    out
}

/// Runs the outcome scenario on the Direct backend to a virtual horizon.
fn direct_outcome(
    nodes: usize,
    tasks: usize,
    seed: u64,
) -> (BTreeMap<NegoId, BTreeMap<TaskId, Pid>>, u64) {
    let mut rt = outcome_config(nodes, seed).build_backend(Backend::Direct);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAC_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(0, svc, SimTime(1_000))
        .expect("node 0 hosts the organizer");
    rt.run(SimTime(5_000_000));
    (winner_maps(rt.events()), rt.messages_sent())
}

/// Runs the same scenario live on actor threads, returning as soon as it
/// settles (generous 30 s wall-clock ceiling for loaded CI machines).
fn actor_outcome(
    nodes: usize,
    tasks: usize,
    seed: u64,
) -> (BTreeMap<NegoId, BTreeMap<TaskId, Pid>>, u64) {
    let mut rt = outcome_config(nodes, seed).build_backend(Backend::Actor);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xAC_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(0, svc, SimTime(1_000))
        .expect("node 0 hosts the organizer");
    let settled = rt.run_until_settled(1, SimTime(30_000_000));
    assert_eq!(settled, 1, "live negotiation failed to settle in 30 s");
    let out = (winner_maps(rt.events()), rt.messages_sent());
    rt.shutdown();
    out
}

proptest! {
    // Each case spins up real threads and waits out real proposal/award
    // deadlines (~200 ms wall), so this property runs a fixed handful of
    // cases rather than the PROPTEST_CASES-driven count.
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Actor-outcome equivalence: the live threaded backend forms the
    /// same coalitions as the Direct runtime — identical winner maps and
    /// identical formation message counts — even though its event log
    /// (wall-clock timestamps, interleavings) need not match.
    #[test]
    fn actor_outcomes_match_direct(
        seed in 0u64..10_000,
        nodes in 2usize..8,
        tasks in 1usize..4,
    ) {
        let (dir_winners, dir_msgs) = direct_outcome(nodes, tasks, seed);
        let (act_winners, act_msgs) = actor_outcome(nodes, tasks, seed);
        prop_assert_eq!(&act_winners, &dir_winners,
            "winner maps diverged (seed {}, {} nodes, {} tasks)", seed, nodes, tasks);
        prop_assert_eq!(act_msgs, dir_msgs,
            "formation message counts diverged (seed {}, {} nodes, {} tasks)",
            seed, nodes, tasks);
        prop_assert!(!dir_winners.is_empty(), "scenario was vacuous");
    }
}

/// A pinned (non-random) instance of the equivalence with the assignment
/// map surfaced explicitly, so a regression fails with a readable diff
/// even if the proptest shim's reporting is terse.
#[test]
fn pinned_seed_assignments_match_exactly() {
    for &(nodes, tasks, seed) in &[(6usize, 2usize, 42u64), (12, 3, 7), (3, 1, 0)] {
        let (des_events, des_msgs) = run_on(Backend::Des, nodes, tasks, 0, seed);
        let (dir_events, dir_msgs) = run_on(Backend::Direct, nodes, tasks, 0, seed);
        assert_eq!(des_events, dir_events, "seed {seed}");
        assert_eq!(des_msgs, dir_msgs, "seed {seed}");
        let assignments = |events: &[qosc_core::LoggedEvent]| {
            events.iter().find_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. } => Some(
                    metrics
                        .outcomes
                        .iter()
                        .map(|(t, o)| (*t, o.node))
                        .collect::<Vec<_>>(),
                ),
                _ => None,
            })
        };
        assert_eq!(
            assignments(&des_events),
            assignments(&dir_events),
            "winner maps diverged at seed {seed}"
        );
    }
}
