//! The same negotiation engines on the live threaded actor transport,
//! through the unified `Runtime` API: real concurrency, wall-clock
//! timers, process-local "radio".

use qosc_core::{NegoEvent, Runtime};
use qosc_netsim::SimTime;
use qosc_spec::TaskId;
use qosc_system_tests::{live_cluster, surveillance_service};

#[test]
fn live_negotiation_forms_a_coalition() {
    let mut rt = live_cluster(&[12.0, 60.0, 500.0]);
    rt.submit(0, surveillance_service("svc", 1), SimTime(1_000))
        .unwrap();
    let settled = rt.run_until_settled(1, SimTime(15_000_000));
    assert_eq!(settled, 1, "live coalition should form within 15 s");
    let metrics = rt
        .events()
        .iter()
        .find_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .expect("a Formed event");
    // Node 0 (12 MIPS) cannot serve preferred quality (~18.25 MIPS); one
    // of the capable remote nodes must win at distance 0 (they tie, and
    // the lowest id is selected).
    let winner = metrics.outcomes[&TaskId(0)].node;
    assert!(winner == 1 || winner == 2, "winner {winner}");
    assert_eq!(metrics.outcomes[&TaskId(0)].distance, 0.0);
    rt.shutdown();
}

#[test]
fn live_partial_connectivity_limits_candidates() {
    let mut rt = live_cluster(&[12.0, 60.0, 500.0]);
    // Node 0 can only reach node 1 (and itself — local proposals travel
    // the self-send path): the strong node 2 is "out of range".
    rt.directory().set_reachable(0, vec![0, 1]);
    rt.directory().set_reachable(1, vec![0, 1]);
    rt.directory().set_reachable(2, vec![2]);
    rt.submit(0, surveillance_service("svc", 1), SimTime(1_000))
        .unwrap();
    let settled = rt.run_until_settled(1, SimTime(15_000_000));
    assert_eq!(settled, 1, "coalition should still form via node 1");
    let m = rt
        .events()
        .iter()
        .find_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .expect("a Formed event");
    let winner = m.outcomes[&TaskId(0)].node;
    assert_ne!(winner, 2, "unreachable node must not win");
    rt.shutdown();
}
