//! The same negotiation engines on the live threaded actor transport:
//! real concurrency, wall-clock timers, process-local "radio".

use std::time::{Duration, Instant};

use qosc_core::NegoEvent;
use qosc_spec::TaskId;
use qosc_system_tests::live::{spawn_live_cluster, LiveMsg};
use qosc_system_tests::surveillance_service;

#[test]
fn live_negotiation_forms_a_coalition() {
    let (mut system, dir, rx) = spawn_live_cluster(&[12.0, 60.0, 500.0]);
    dir.send(0, 0, LiveMsg::Start(surveillance_service("svc", 1)));
    let deadline = Duration::from_secs(15);
    let mut formed = None;
    let start = Instant::now();
    while start.elapsed() < deadline {
        match rx.recv_timeout(Duration::from_millis(200)) {
            Ok((_, NegoEvent::Formed { metrics, .. })) => {
                formed = Some(metrics);
                break;
            }
            Ok(_) => {}
            Err(_) => {}
        }
    }
    let metrics = formed.expect("live coalition should form within 15 s");
    // Node 0 (12 MIPS) cannot serve preferred quality (~18.25 MIPS); one
    // of the capable remote nodes must win at distance 0 (they tie, and
    // the lowest id is selected).
    let winner = metrics.outcomes[&TaskId(0)].node;
    assert!(winner == 1 || winner == 2, "winner {winner}");
    assert_eq!(metrics.outcomes[&TaskId(0)].distance, 0.0);
    system.shutdown();
}

#[test]
fn live_partial_connectivity_limits_candidates() {
    let (mut system, dir, rx) = spawn_live_cluster(&[12.0, 60.0, 500.0]);
    // Node 0 can only reach node 1 (and itself — local proposals travel
    // the self-send path): the strong node 2 is "out of range".
    dir.set_reachable(0, vec![0, 1]);
    dir.set_reachable(1, vec![0, 1]);
    dir.set_reachable(2, vec![2]);
    dir.send(0, 0, LiveMsg::Start(surveillance_service("svc", 1)));
    let deadline = Duration::from_secs(15);
    let mut metrics = None;
    let start = Instant::now();
    while start.elapsed() < deadline {
        if let Ok((_, NegoEvent::Formed { metrics: m, .. })) =
            rx.recv_timeout(Duration::from_millis(200))
        {
            metrics = Some(m);
            break;
        }
    }
    let m = metrics.expect("coalition should still form via node 1");
    let winner = m.outcomes[&TaskId(0)].node;
    assert_ne!(winner, 2, "unreachable node must not win");
    system.shutdown();
}
