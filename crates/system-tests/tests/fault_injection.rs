//! The sampled side of the shared fault vocabulary: the same
//! [`FaultPlan`] the model checker branches over exhaustively is drawn
//! probabilistically by the DES and Direct backends. These tests pin the
//! two properties that make sampled fault runs usable evidence:
//! determinism (a fixed plan seed reproduces the run bit-for-bit) and
//! safety (the model checker's shipped invariants hold at settle even
//! under drops, duplicates and reorders).

use qosc_core::{NegoEvent, Runtime};
use qosc_mc::{default_invariants, verify_runtime};
use qosc_netsim::{FaultPlan, RadioModel, SimDuration, SimTime};
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn faulty_plan(seed: u64) -> FaultPlan {
    FaultPlan::sampled(seed)
        .with_drop(0.08)
        .with_duplicate(0.08)
        .with_reorder(0.15, SimDuration::millis(5))
}

/// Runs one faulted scenario to completion and returns the backend.
fn run_faulted(backend: Backend, nodes: usize, seed: u64, plan: FaultPlan) -> Box<dyn Runtime> {
    let config = ScenarioConfig {
        radio: RadioModel::instant(),
        population: PopulationConfig::default(),
        ..ScenarioConfig::dense(nodes, seed)
    };
    let mut rt = config.build_backend(backend);
    assert!(
        rt.set_fault_plan(plan),
        "{} must accept a fault plan",
        rt.backend_name()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xFA_0001);
    let svc = AppTemplate::Surveillance.service("svc", 3, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 organizes");
    rt.run(SimTime(20_000_000));
    rt
}

#[test]
fn des_fault_runs_are_deterministic_at_a_fixed_seed() {
    for seed in [7, 99, 4242] {
        let a = run_faulted(Backend::Des, 8, seed, faulty_plan(seed));
        let b = run_faulted(Backend::Des, 8, seed, faulty_plan(seed));
        assert_eq!(
            a.events(),
            b.events(),
            "two DES runs with the same fault-plan seed diverged (seed {seed})"
        );
        assert_eq!(a.messages_sent(), b.messages_sent());
    }
}

#[test]
fn des_fault_seeds_actually_perturb_the_run() {
    // Not a tautology check: different fault seeds must be able to
    // produce different histories, or the sampler is inert.
    let perturbed = (0..8u64).any(|s| {
        let base = run_faulted(Backend::Des, 8, 7, faulty_plan(1000 + s));
        let other = run_faulted(Backend::Des, 8, 7, faulty_plan(2000 + s));
        base.events() != other.events()
    });
    assert!(perturbed, "no fault seed changed the event log");
}

#[test]
fn des_invariants_hold_at_settle_under_sampled_faults() {
    for seed in 0..12u64 {
        let rt = run_faulted(Backend::Des, 10, seed, faulty_plan(seed));
        let ids: Vec<u32> = (0..10).collect();
        // The run has fully settled: no pending traffic, so the liveness
        // invariant (every negotiation Operating or Dissolved) applies.
        verify_runtime(&*rt, &ids, &default_invariants(), true)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
        // Faulted runs still make progress: the round concluded one way
        // or the other rather than hanging.
        assert!(
            rt.events().iter().any(|e| matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )),
            "seed {seed}: negotiation neither formed nor gave up"
        );
    }
}

#[test]
fn direct_backend_samples_the_same_plan() {
    for seed in [3, 17] {
        let a = run_faulted(Backend::Direct, 8, seed, faulty_plan(seed));
        let b = run_faulted(Backend::Direct, 8, seed, faulty_plan(seed));
        assert_eq!(
            a.events(),
            b.events(),
            "two Direct runs with the same fault-plan seed diverged (seed {seed})"
        );
        let ids: Vec<u32> = (0..8).collect();
        verify_runtime(&*a, &ids, &default_invariants(), true)
            .unwrap_or_else(|v| panic!("seed {seed}: {v}"));
    }
}

#[test]
fn a_budget_only_plan_is_inert_on_sampled_backends() {
    // Budget-only plans drive the exhaustive explorer; the sampled
    // backends draw nothing from them, so installing one must leave the
    // run identical to the fault-free baseline.
    let budget_only = run_faulted(Backend::Des, 8, 11, FaultPlan::exhaustive(1, 1));
    let baseline = run_faulted(Backend::Des, 8, 11, FaultPlan::none());
    assert_eq!(budget_only.events(), baseline.events());
    assert_eq!(budget_only.messages_sent(), baseline.messages_sent());
}
