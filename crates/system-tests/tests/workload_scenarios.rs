//! Scenario-level behaviour: dynamic Poisson arrivals, multiple
//! concurrent negotiations from different organizers, determinism.

use qosc_core::NegoEvent;
use qosc_load::PoissonArrivals;
use qosc_netsim::SimTime;
use qosc_system_tests::dense_scenario;
use qosc_workloads::{AppTemplate, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn poisson_stream_of_services_is_processed() {
    let mut s = dense_scenario(31, 8);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    let arrivals = PoissonArrivals::new(0.5); // one service every ~2 s
    let times = arrivals.sample_until(SimTime(1_000), SimTime(20_000_000), &mut rng);
    assert!(!times.is_empty());
    let n = times.len();
    for (i, t) in times.into_iter().enumerate() {
        let template = AppTemplate::ALL[i % AppTemplate::ALL.len()];
        // Transcode uses a different spec — still registered everywhere.
        let svc = template.service(format!("svc-{i}"), 1 + i % 2, &mut rng);
        let organizer = (i % 4) as u32; // rotate originating node
        s.submit(organizer, svc, t);
    }
    s.run_until(SimTime(60_000_000));
    let settled = s
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )
        })
        .count();
    assert_eq!(
        settled,
        n,
        "every negotiation must settle: {:?}",
        s.events()
    );
}

#[test]
fn concurrent_negotiations_do_not_overcommit_any_node() {
    let mut s = dense_scenario(77, 6);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    // Two organizers fire at the same instant.
    for org in [0u32, 1u32] {
        let svc = AppTemplate::Surveillance.service(format!("svc-{org}"), 2, &mut rng);
        s.submit(org, svc, SimTime(1_000));
    }
    s.run_until(SimTime(30_000_000));
    // Ledger invariant on every node: committed ≤ capacity per kind.
    for i in 0..6u32 {
        let ledger = s.provider(i).unwrap().ledger();
        let available = ledger.available();
        let capacity = ledger.capacity();
        for k in qosc_resources::ResourceKind::ALL {
            assert!(
                available.get(k) >= -1e-9 && available.get(k) <= capacity.get(k) + 1e-9,
                "node {i} kind {k}: {} of {}",
                available.get(k),
                capacity.get(k)
            );
        }
    }
    // Both negotiations settled.
    let settled = s
        .events()
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )
        })
        .count();
    assert!(settled >= 2);
}

#[test]
fn dense_256_node_population_forms_a_coalition() {
    // The scale the compiled batch evaluator opened: one negotiation in a
    // fully-connected 256-node population. Every capable node proposes,
    // so the organizer prices hundreds of proposals per task.
    let mut s = Scenario::build(&ScenarioConfig::dense(256, 0x256));
    let mut rng = ChaCha8Rng::seed_from_u64(0x256);
    let svc = AppTemplate::Surveillance.service("svc", 3, &mut rng);
    s.submit(0, svc, SimTime(1_000));
    s.run_until(SimTime(10_000_000));
    assert!(
        s.events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::Formed { .. })),
        "a 256-node dense population must form: {:?}",
        s.events()
    );
    // The CFP reached (essentially) the whole population: the message
    // count is dominated by the per-node proposal replies.
    assert!(
        s.net_stats().messages_sent() >= 200,
        "expected a population-wide proposal wave, got {} messages",
        s.net_stats().messages_sent()
    );
}

#[test]
fn identical_seeds_give_identical_event_logs() {
    let run = |seed: u64| {
        let mut s = dense_scenario(seed, 8);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for i in 0..4 {
            let svc = AppTemplate::Surveillance.service(format!("svc-{i}"), 2, &mut rng);
            s.submit(i as u32 % 3, svc, SimTime(1_000 + i as u64 * 500_000));
        }
        s.run_until(SimTime(30_000_000));
        (
            s.events().len(),
            s.net_stats().clone(),
            s.events()
                .iter()
                .map(|e| (e.at, e.node))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(5), run(5));
}
