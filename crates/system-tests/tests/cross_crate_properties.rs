//! Property-based tests spanning the whole stack: random instances,
//! random preferences, random capacities — the invariants that must hold
//! regardless.

use proptest::prelude::*;

use qosc_baselines::{
    builders::small_instance, exhaustive_optimal, protocol_emulation, protocol_emulation_with,
    single_node, ProposalStrategy,
};
use qosc_core::{
    formulate, formulate_prepared, formulate_shedding, Evaluator, LinearPenalty, PreparedTask,
    TaskInput, TieBreak,
};
use qosc_resources::{
    av_demand_model, AdmissionControl, ResourceKind, ResourceVector, SchedulingPolicy,
};
use qosc_spec::catalog;

fn cpu_vec() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(5.0f64..300.0, 2..6)
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// Whatever the capacities, a formulated configuration is schedulable
    /// and within the request's ladders, and its reward never exceeds the
    /// attribute count.
    #[test]
    fn formulation_outcomes_are_always_feasible(cpu in 6.0f64..500.0, tasks in 1usize..4) {
        let spec = catalog::av_spec();
        let req = catalog::surveillance_request().resolve(&spec).unwrap();
        let model = av_demand_model(&spec);
        let admission = AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        );
        let inputs: Vec<TaskInput<'_>> = (0..tasks)
            .map(|_| TaskInput { spec: &spec, request: &req, demand: &model })
            .collect();
        if let Ok(out) = formulate(&inputs, &admission, &LinearPenalty::default()) {
            prop_assert!(admission.schedulable(&out.demands));
            let ladders = req.ladder_lengths();
            for lv in &out.levels {
                for (l, len) in lv.iter().zip(ladders.iter()) {
                    prop_assert!(l < len);
                }
            }
            prop_assert!(out.reward <= (tasks * req.attr_count()) as f64 + 1e-9);
        }
    }

    /// The evaluator is zero exactly at the preferred configuration and
    /// positive elsewhere (absolute mode).
    #[test]
    fn distance_is_a_premetric_over_ladders(
        l0 in 0usize..10, l1 in 0usize..2,
    ) {
        let spec = catalog::av_spec();
        let req = catalog::surveillance_request().resolve(&spec).unwrap();
        let ev = Evaluator::default();
        let d = ev.distance_of_levels(&spec, &req, &[l0, l1, 0, 0]).unwrap();
        if l0 == 0 && l1 == 0 {
            prop_assert_eq!(d, 0.0);
        } else {
            prop_assert!(d > 0.0);
        }
        // Monotone in each coordinate.
        if l0 + 1 < 10 {
            let d2 = ev.distance_of_levels(&spec, &req, &[l0 + 1, l1, 0, 0]).unwrap();
            prop_assert!(d2 >= d);
        }
    }

    /// Allocation policies never invent placements: every placed node is a
    /// real node, every distance finite and non-negative, every placed
    /// task's demand fits the node's capacity in aggregate.
    #[test]
    fn allocations_are_structurally_sound(cpus in cpu_vec(), tasks in 1usize..5) {
        let inst = small_instance(&cpus, tasks);
        for alloc in [
            protocol_emulation(&inst, &TieBreak::default()),
            protocol_emulation_with(&inst, &TieBreak::default(), ProposalStrategy::Sequential),
            single_node(&inst),
        ] {
            let mut per_node: std::collections::BTreeMap<u32, ResourceVector> =
                Default::default();
            for (task, p) in &alloc.placements {
                prop_assert!((p.node as usize) < cpus.len());
                prop_assert!(p.distance.is_finite() && p.distance >= 0.0);
                prop_assert!(p.comm_cost.is_finite() && p.comm_cost >= 0.0);
                prop_assert!(inst.tasks.iter().any(|t| t.id == *task));
                *per_node.entry(p.node).or_default() += p.demand;
            }
            for (node, total) in per_node {
                let cap = inst.nodes[node as usize].capacity;
                prop_assert!(
                    total.get(ResourceKind::Cpu) <= cap.get(ResourceKind::Cpu) + 1e-6,
                    "node {node} overcommitted"
                );
            }
            // No task both placed and unassigned, and the counts add up.
            for t in &alloc.unassigned {
                prop_assert!(!alloc.placements.contains_key(t));
            }
            prop_assert_eq!(alloc.placements.len() + alloc.unassigned.len(), tasks);
        }
    }

    /// The provider's prefix-feasibility shedding picks a prefix that is
    /// (a) actually formulatable and schedulable, and (b) maximal: every
    /// longer prefix of the same bundle is infeasible.
    #[test]
    fn shedding_prefix_is_maximal_and_feasible(cpu in 1.0f64..200.0, tasks in 1usize..6) {
        use std::sync::Arc;
        let spec = catalog::av_spec();
        let resolved = catalog::surveillance_request().resolve(&spec).unwrap();
        let model: Arc<dyn qosc_resources::DemandModel> = Arc::new(av_demand_model(&spec));
        let prepared: Vec<PreparedTask> = (0..tasks)
            .map(|_| PreparedTask::compile(
                spec.clone(),
                Arc::new(resolved.clone()),
                &LinearPenalty::default(),
                Arc::clone(&model),
            ))
            .collect();
        let refs: Vec<&PreparedTask> = prepared.iter().collect();
        let admission = AdmissionControl::new(
            SchedulingPolicy::Edf,
            ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        );
        match formulate_shedding(&refs, &admission) {
            Some((count, out)) => {
                prop_assert!(count >= 1 && count <= tasks);
                prop_assert_eq!(out.levels.len(), count);
                prop_assert!(admission.schedulable(&out.demands));
                prop_assert_eq!(
                    &formulate_prepared(&refs[..count], &admission), &Ok(out)
                );
                for longer in (count + 1)..=tasks {
                    prop_assert!(formulate_prepared(&refs[..longer], &admission).is_err());
                }
            }
            None => {
                prop_assert!(formulate_prepared(&refs[..1], &admission).is_err());
            }
        }
    }

    /// On enumerable instances the exhaustive optimum lower-bounds the
    /// protocol whenever both are complete.
    #[test]
    fn optimum_is_lower_bound(cpus in proptest::collection::vec(10.0f64..120.0, 2..4)) {
        let inst = small_instance(&cpus, 2);
        let opt = exhaustive_optimal(&inst, 1_000_000).unwrap();
        let proto = protocol_emulation(&inst, &TieBreak::default());
        if opt.complete() && proto.complete() {
            prop_assert!(proto.total_distance() >= opt.total_distance() - 1e-9);
        }
        // And the optimum never places fewer tasks than the protocol.
        prop_assert!(opt.placements.len() >= proto.placements.len());
    }
}
