//! Coalition operation under churn: member failure detection, §4's
//! "coalition reconfiguration due to partial failures", and formation in
//! mobile topologies.

use qosc_core::NegoEvent;
use qosc_netsim::{Area, NodeId, RadioModel, SimDuration, SimTime};
use qosc_workloads::{pedestrian, AppTemplate, PopulationConfig, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn scenario(seed: u64, speed: Option<f64>, range: f64) -> Scenario {
    Scenario::build(&ScenarioConfig {
        nodes: 10,
        area: Area::new(100.0, 100.0),
        radio: RadioModel {
            range_m: range,
            ..Default::default()
        },
        mobility: speed.map(pedestrian),
        population: PopulationConfig::pure_adhoc(),
        seed,
        ..Default::default()
    })
}

#[test]
fn member_failure_triggers_reconfiguration_and_recovery() {
    let mut s = scenario(21, None, 200.0); // static, fully connected
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
    s.submit(0, svc, SimTime(1_000));
    s.run_until(SimTime(2_000_000));
    let first_formed = s
        .events()
        .iter()
        .find_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .expect("initial formation");
    // Kill one winning member (pick a remote one if any; else skip).
    let victim = first_formed
        .outcomes
        .values()
        .map(|o| o.node)
        .find(|n| *n != 0);
    let Some(victim) = victim else {
        // All local: force a remote by killing nothing; scenario-specific
        // seeds make this rare. Nothing to test then.
        return;
    };
    s.sim_mut()
        .schedule_down(NodeId(victim), SimDuration::millis(100));
    s.run_until(SimTime(30_000_000));
    assert!(
        s.events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::MemberFailed { node, .. } if node == victim)),
        "failure must be detected: {:?}",
        s.events()
    );
    // After reconfiguration the victim's tasks live somewhere else.
    let last_metrics =
        s.events()
            .iter()
            .rev()
            .find_map(|e| match &e.event {
                NegoEvent::Formed { metrics, .. }
                | NegoEvent::FormationIncomplete { metrics, .. } => Some(metrics.clone()),
                _ => None,
            })
            .expect("a settling event after reconfiguration");
    for o in last_metrics.outcomes.values() {
        assert_ne!(o.node, victim, "no task may remain on the dead node");
    }
    assert!(last_metrics.reconfigurations >= 1);
}

#[test]
fn formation_succeeds_across_mobility_levels() {
    for speed in [0.0, 5.0, 15.0] {
        let mut formed_any = false;
        for seed in 0..3u64 {
            let mut s = scenario(
                100 + seed,
                if speed > 0.0 { Some(speed) } else { None },
                60.0,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let svc = AppTemplate::Surveillance.service("svc", 2, &mut rng);
            s.submit(0, svc, SimTime(1_000));
            s.run_until(SimTime(20_000_000));
            formed_any |= s
                .events()
                .iter()
                .any(|e| matches!(e.event, NegoEvent::Formed { .. }));
        }
        assert!(
            formed_any,
            "formation should succeed at least once at {speed} m/s"
        );
    }
}

#[test]
fn sparse_disconnected_topology_fails_gracefully() {
    // A tiny radio range on a big field: the organizer hears nobody.
    let mut s = Scenario::build(&ScenarioConfig {
        nodes: 5,
        area: Area::new(2_000.0, 2_000.0),
        radio: RadioModel {
            range_m: 5.0,
            ..Default::default()
        },
        population: PopulationConfig {
            // Phones only: the requester cannot even serve itself at an
            // acceptable level for the demanding conference request.
            class_weights: [1.0, 0.0, 0.0, 0.0],
            jitter: 0.0,
        },
        seed: 7,
        ..Default::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let svc = AppTemplate::VideoConference.service("svc", 3, &mut rng);
    s.submit(0, svc, SimTime(1_000));
    s.run_until(SimTime(30_000_000));
    // The negotiation must settle (incomplete), never hang or panic.
    assert!(
        s.events()
            .iter()
            .any(|e| matches!(e.event, NegoEvent::FormationIncomplete { .. })),
        "events: {:?}",
        s.events()
    );
}
