//! Cross-backend equivalence for non-default strategy chains: a
//! reserve-price provider chain plus a reputation-weighted organizer
//! chain must behave identically on all three backends — the engines own
//! every decision, so plugging components in cannot introduce
//! backend-specific divergence.
//!
//! Same contract split as `runtime_equivalence`: DES at zero latency is
//! event-for-event identical to Direct; the live Actor backend matches
//! Direct on winner maps and formation message counts.

use std::collections::BTreeMap;

use proptest::prelude::*;

use qosc_core::strategy::{ReputationScorer, ReservePrice};
use qosc_core::{NegoEvent, NegoId, OrganizerStrategy, Pid, ProviderStrategy};
use qosc_netsim::{RadioModel, SimDuration, SimTime};
use qosc_spec::TaskId;
use qosc_workloads::{AppTemplate, Backend, PopulationConfig, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Distrust every even-id node outright; the weight is large enough to
/// override any distance/comm-cost advantage, so the chain demonstrably
/// flips winners rather than just nudging scores.
fn organizer_chain(nodes: usize) -> OrganizerStrategy {
    let reputations: BTreeMap<Pid, f64> = (0..nodes as u32)
        .map(|id| (id, if id % 2 == 0 { 0.0 } else { 1.0 }))
        .collect();
    OrganizerStrategy::new().with(ReputationScorer {
        reputations,
        default_reputation: 1.0,
        weight: 10.0,
    })
}

/// The chained scenario: dense static population, instant lossless
/// radio, monitoring off and heartbeats beyond the horizon (the same
/// observability discipline as `runtime_equivalence`), with a
/// reserve-price provider chain and the reputation organizer chain.
fn chained_config(nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        radio: RadioModel::instant(),
        population: PopulationConfig::default(),
        organizer: qosc_core::OrganizerConfig {
            monitor: false,
            chain: organizer_chain(nodes),
            ..Default::default()
        },
        provider: qosc_core::ProviderConfig {
            heartbeat_interval: SimDuration::secs(3600),
            chain: ProviderStrategy::new().with(ReservePrice { min_reward: 3.5 }),
            ..Default::default()
        },
        ..ScenarioConfig::dense(nodes, seed)
    }
}

fn submit_service(
    rt: &mut Box<dyn qosc_core::Runtime>,
    tasks: usize,
    seed: u64,
) -> Result<(), qosc_core::RuntimeError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5C_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).map(|_| ())
}

/// Full observable state on a virtual-time backend.
fn run_virtual(
    backend: Backend,
    nodes: usize,
    tasks: usize,
    seed: u64,
) -> (Vec<qosc_core::LoggedEvent>, u64) {
    let mut rt = chained_config(nodes, seed).build_backend(backend);
    submit_service(&mut rt, tasks, seed).expect("node 0 hosts the organizer");
    rt.run(SimTime(5_000_000));
    (rt.events().to_vec(), rt.messages_sent())
}

/// Winner map of every settled negotiation (`nego → task → node`).
fn winner_maps(events: &[qosc_core::LoggedEvent]) -> BTreeMap<NegoId, BTreeMap<TaskId, Pid>> {
    let mut out = BTreeMap::new();
    for e in events {
        let (nego, metrics) = match &e.event {
            NegoEvent::Formed { nego, metrics } => (*nego, metrics),
            NegoEvent::FormationIncomplete { nego, metrics, .. } => (*nego, metrics),
            _ => continue,
        };
        out.insert(
            nego,
            metrics.outcomes.iter().map(|(t, o)| (*t, o.node)).collect(),
        );
    }
    out
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// DES at zero latency and Direct stay event-for-event identical
    /// with both chains active.
    #[test]
    fn chained_des_at_zero_latency_equals_direct(
        seed in 0u64..10_000,
        nodes in 2usize..20,
        tasks in 1usize..4,
    ) {
        let (des_events, des_msgs) = run_virtual(Backend::Des, nodes, tasks, seed);
        let (dir_events, dir_msgs) = run_virtual(Backend::Direct, nodes, tasks, seed);
        prop_assert_eq!(&des_events, &dir_events,
            "chained event logs diverged (seed {}, {} nodes, {} tasks)", seed, nodes, tasks);
        prop_assert_eq!(des_msgs, dir_msgs, "chained message counts diverged");
        prop_assert!(des_events.iter().any(|e| matches!(
            e.event,
            NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
        )));
    }
}

/// Pinned cross-backend outcomes for the chained scenario, plus proof
/// that the chain actually bites: across the pinned cases the reputation
/// weighting must steer at least one task away from a distrusted node's
/// default-chain win.
#[test]
fn chained_outcomes_pin_across_all_three_backends() {
    let mut chain_changed_something = false;
    for &(nodes, tasks, seed) in &[(6usize, 2usize, 42u64), (5, 3, 7), (8, 2, 301)] {
        let (des_events, des_msgs) = run_virtual(Backend::Des, nodes, tasks, seed);
        let (dir_events, dir_msgs) = run_virtual(Backend::Direct, nodes, tasks, seed);
        assert_eq!(des_events, dir_events, "seed {seed}");
        assert_eq!(des_msgs, dir_msgs, "seed {seed}");
        let dir_winners = winner_maps(&dir_events);
        assert!(
            !dir_winners.is_empty(),
            "scenario was vacuous at seed {seed}"
        );

        // Live actor backend: winner maps and formation message counts
        // must match Direct exactly.
        let mut rt = chained_config(nodes, seed).build_backend(Backend::Actor);
        submit_service(&mut rt, tasks, seed).expect("node 0 hosts the organizer");
        let settled = rt.run_until_settled(1, SimTime(30_000_000));
        assert_eq!(settled, 1, "live chained negotiation failed to settle");
        let act_winners = winner_maps(rt.events());
        let act_msgs = rt.messages_sent();
        rt.shutdown();
        assert_eq!(
            act_winners, dir_winners,
            "actor winners diverged at seed {seed}"
        );
        assert_eq!(act_msgs, dir_msgs, "actor messages diverged at seed {seed}");

        // Same scenario with default (empty) chains for comparison.
        let mut rt = ScenarioConfig {
            radio: RadioModel::instant(),
            population: PopulationConfig::default(),
            organizer: qosc_core::OrganizerConfig {
                monitor: false,
                ..Default::default()
            },
            provider: qosc_core::ProviderConfig {
                heartbeat_interval: SimDuration::secs(3600),
                ..Default::default()
            },
            ..ScenarioConfig::dense(nodes, seed)
        }
        .build_backend(Backend::Direct);
        submit_service(&mut rt, tasks, seed).expect("node 0 hosts the organizer");
        rt.run(SimTime(5_000_000));
        if winner_maps(rt.events()) != dir_winners {
            chain_changed_something = true;
        }
    }
    assert!(
        chain_changed_something,
        "the reserve-price + reputation chain never altered an outcome — \
         the components are not wired through"
    );
}
