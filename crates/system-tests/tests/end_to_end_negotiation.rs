//! End-to-end negotiation through the DES: the full §4.2 message flow,
//! with message accounting checked against the protocol's analytic cost
//! and dissolution restoring every ledger.

use qosc_core::{
    single_organizer_scenario, NegoEvent, NegoId, OrganizerConfig, ProviderConfig, ProviderEngine,
    Runtime,
};
use qosc_netsim::{NodeId, SimDuration, SimTime};
use qosc_resources::ResourceKind;
use qosc_spec::{ServiceDef, TaskId};
use qosc_system_tests::{av_provider_with, dense_sim, quiet_provider, surveillance_service_sized};

/// Provider with heartbeats kept out of the message-accounting window.
fn provider(id: u32, cpu: f64) -> ProviderEngine {
    quiet_provider(id, cpu)
}

fn service(tasks: usize) -> ServiceDef {
    surveillance_service_sized("svc", tasks, 100_000, 10_000)
}

#[test]
fn coalition_forms_with_correct_winner_and_message_count() {
    let n = 5;
    let sim = dense_sim(n);
    // Node 3 is the only one able to serve at preferred quality (preferred
    // demand ≈ 18.25 MIPS); the rest must degrade.
    let cpus = [10.0, 12.0, 14.0, 500.0, 9.0];
    let providers = (0..n).map(|i| provider(i as u32, cpus[i])).collect();
    let organizer = OrganizerConfig {
        monitor: false,
        ..Default::default()
    };
    let mut rt = single_organizer_scenario(
        sim,
        organizer,
        providers,
        service(1),
        SimDuration::millis(1),
    );
    rt.run(SimTime(10_000_000));

    let formed: Vec<_> = rt
        .events()
        .iter()
        .filter_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .collect();
    assert_eq!(formed.len(), 1, "exactly one coalition: {:?}", rt.events());
    let m = &formed[0];
    assert_eq!(m.outcomes[&TaskId(0)].node, 3, "richest node must win");
    assert_eq!(m.outcomes[&TaskId(0)].distance, 0.0);
    assert!(m.unassigned.is_empty());
    assert_eq!(m.reconfigurations, 0);
    assert_eq!(m.proposal_bundles, n as u32, "every node proposes");

    // Analytic single-round count: 1 CFP + n proposals + 1 award + 1 accept.
    let expected = 1 + n as u64 + 1 + 1;
    assert_eq!(rt.messages_sent(), expected);
    // Formation latency is dominated by the proposal deadline (100 ms).
    let lat = m.formation_latency().unwrap();
    assert!(lat >= SimDuration::millis(100));
    assert!(lat < SimDuration::millis(200));
}

#[test]
fn multi_task_service_spreads_across_nodes_with_sequential_pricing() {
    let n = 4;
    let sim = dense_sim(n);
    // 20 MIPS fits one preferred task (~18.25) but not two. Sequential
    // pricing offers only what genuinely fits, so each retry round places
    // one task per node and the service spreads at full quality. (The
    // joint §5-literal strategy instead consolidates everything, degraded,
    // on the requester — covered by F4/EXPERIMENTS.md.)
    let providers = (0..n)
        .map(|i| {
            av_provider_with(
                i as u32,
                20.0,
                ProviderConfig {
                    strategy: qosc_core::ProposalStrategy::Sequential,
                    ..Default::default()
                },
            )
        })
        .collect();
    let mut rt = single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        service(3),
        SimDuration::millis(1),
    );
    rt.run(SimTime(30_000_000));

    let formed = rt
        .events()
        .iter()
        .find_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .unwrap_or_else(|| panic!("coalition should form: {:?}", rt.events()));
    assert_eq!(formed.outcomes.len(), 3);
    assert_eq!(
        formed.distinct_members(),
        3,
        "one node per task: {formed:?}"
    );
    for o in formed.outcomes.values() {
        assert_eq!(
            o.distance, 0.0,
            "sequential pricing keeps preferred quality"
        );
    }
}

#[test]
fn dissolution_releases_every_ledger() {
    let n = 3;
    let sim = dense_sim(n);
    let providers = (0..n).map(|i| provider(i as u32, 500.0)).collect();
    let mut rt = single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        service(2),
        SimDuration::millis(1),
    );
    rt.run(SimTime(2_000_000));
    assert!(rt
        .events()
        .iter()
        .any(|e| matches!(e.event, NegoEvent::Formed { .. })));

    let committed = |rt: &qosc_core::DesRuntime| -> f64 {
        (0..n as u32)
            .map(|i| {
                let l = rt.node(i).unwrap().provider().unwrap().ledger();
                l.capacity().get(ResourceKind::Cpu) - l.available().get(ResourceKind::Cpu)
            })
            .sum()
    };
    assert!(committed(&rt) > 0.0, "resources committed while operating");

    // Host-driven dissolution: the organizer sends Release to all members.
    let nego = NegoId {
        organizer: 0,
        seq: 0,
    };
    let at = rt.sim().now() + SimDuration::millis(1);
    rt.schedule_dissolve(nego, at).unwrap();
    rt.run(SimTime(5_000_000));

    assert!(rt
        .events()
        .iter()
        .any(|e| matches!(e.event, NegoEvent::Dissolved { .. })));
    assert_eq!(committed(&rt), 0.0, "all ledgers restored");
}

#[test]
fn organizer_retries_when_first_winner_dies_before_award() {
    let n = 3;
    let sim = dense_sim(n);
    // Node 1 is best; node 2 second-best. Kill node 1 right after it sends
    // its proposal (before the award can reach it): the organizer's award
    // times out and a retry round should land on node 2.
    let cpus = [10.0, 500.0, 400.0];
    let providers = (0..n).map(|i| provider(i as u32, cpus[i])).collect();
    let mut rt = single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        service(1),
        SimDuration::millis(1),
    );
    rt.sim_mut()
        .schedule_down(NodeId(1), SimDuration::millis(50));
    rt.run(SimTime(30_000_000));

    let formed = rt
        .events()
        .iter()
        .find_map(|e| match &e.event {
            NegoEvent::Formed { metrics, .. } => Some(metrics.clone()),
            _ => None,
        })
        .expect("retry round should still form a coalition");
    assert_eq!(formed.outcomes[&TaskId(0)].node, 2);
    // At least one award went unanswered.
    assert!(formed.declines >= 1);
}
