//! Cross-policy ordering properties on identical snapshots: the paper's
//! comparative claims as assertions.

use qosc_baselines::{
    builders::{conference_instance, small_instance},
    exhaustive_optimal, greedy_least_loaded, protocol_emulation, protocol_emulation_with,
    random_alloc, single_node, ProposalStrategy,
};
use qosc_core::TieBreak;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn coalition_never_loses_to_single_node_on_distance() {
    // §1/§4: a weak requester with strong neighbours must be served
    // strictly closer to preferences by the coalition.
    for cpus in [
        vec![20.0, 400.0, 300.0],
        vec![30.0, 100.0, 100.0, 100.0],
        vec![15.0, 80.0],
    ] {
        let inst = conference_instance(&cpus, 2);
        let coalition = protocol_emulation(&inst, &TieBreak::default());
        let single = single_node(&inst);
        // The coalition always serves at least as many tasks…
        assert!(coalition.placements.len() >= single.placements.len());
        // …and when both place the same set, at no worse total distance.
        // (A shedding single node has a vacuously small total distance, so
        // totals are only comparable at equal acceptance.)
        if coalition.placements.len() == single.placements.len() {
            assert!(
                coalition.total_distance() <= single.total_distance() + 1e-9,
                "coalition {:.4} vs single {:.4} on {cpus:?}",
                coalition.total_distance(),
                single.total_distance()
            );
        }
    }
}

#[test]
fn optimal_is_a_lower_bound_for_every_policy() {
    for seed in 0..5u64 {
        let cpus: Vec<f64> = (0..4)
            .map(|i| 30.0 + 37.0 * ((seed + i) % 5) as f64)
            .collect();
        let inst = conference_instance(&cpus, 3);
        let opt = exhaustive_optimal(&inst, 10_000_000).unwrap();
        if !opt.complete() {
            continue;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (name, alloc) in [
            ("joint", protocol_emulation(&inst, &TieBreak::default())),
            (
                "sequential",
                protocol_emulation_with(&inst, &TieBreak::default(), ProposalStrategy::Sequential),
            ),
            ("greedy", greedy_least_loaded(&inst)),
            ("random", random_alloc(&inst, &mut rng)),
        ] {
            if alloc.complete() {
                assert!(
                    alloc.total_distance() >= opt.total_distance() - 1e-9,
                    "{name} beat the optimum?! {:.4} < {:.4}",
                    alloc.total_distance(),
                    opt.total_distance()
                );
            }
        }
    }
}

#[test]
fn sequential_pricing_weakly_dominates_joint() {
    // Joint offers assume the node wins everything announced; sequential
    // offers cannot do worse in total distance on these instances.
    let mut seq_wins = 0;
    for seed in 0..8u64 {
        let cpus: Vec<f64> = (0..4)
            .map(|i| 25.0 + 31.0 * ((seed + i) % 4) as f64)
            .collect();
        let inst = conference_instance(&cpus, 3);
        let joint = protocol_emulation(&inst, &TieBreak::default());
        let seq =
            protocol_emulation_with(&inst, &TieBreak::default(), ProposalStrategy::Sequential);
        assert!(seq.placements.len() >= joint.placements.len());
        if seq.complete()
            && joint.complete()
            && seq.total_distance() < joint.total_distance() - 1e-9
        {
            seq_wins += 1;
        }
    }
    assert!(seq_wins > 0, "sequential should strictly win somewhere");
}

#[test]
fn under_light_load_everything_stays_local() {
    // With a rich requester there is no reason to ship tasks anywhere.
    let inst = small_instance(&[1000.0, 500.0, 500.0], 3);
    let a = protocol_emulation(&inst, &TieBreak::default());
    assert!(a.complete());
    assert_eq!(a.distinct_members(), 1);
    assert_eq!(a.total_comm_cost(), 0.0);
    assert_eq!(a.total_distance(), 0.0);
}

#[test]
fn acceptance_is_monotone_in_capacity() {
    // Doubling every node's CPU can only place more (or equally many)
    // tasks under every policy.
    let base: Vec<f64> = vec![8.0, 10.0, 12.0];
    let doubled: Vec<f64> = base.iter().map(|c| c * 2.0).collect();
    for policy in [
        protocol_emulation,
        |i: &qosc_baselines::Instance, t: &TieBreak| {
            protocol_emulation_with(i, t, ProposalStrategy::Sequential)
        },
    ] {
        let small = policy(&small_instance(&base, 4), &TieBreak::default());
        let big = policy(&small_instance(&doubled, 4), &TieBreak::default());
        assert!(big.placements.len() >= small.placements.len());
    }
}
