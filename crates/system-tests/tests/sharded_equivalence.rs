//! Sharded-DES equivalence: the region-partitioned parallel simulator
//! must not change what the simulation computes.
//!
//! Two contracts, in decreasing strictness:
//!
//! * **One worker ⇒ bit-equality.** `Backend::DesSharded { workers: 1 }`
//!   is the sequential engine run through the sharded machinery (one
//!   shard, one heap, identical keys and draws), so its full event log —
//!   timestamps, nodes, metrics, order — and message counters must equal
//!   `Backend::Des` exactly, for any seed, population, task count,
//!   mobility, or fault plan.
//! * **Many workers ⇒ outcome-pinning.** With real parallelism the event
//!   *log order* may legally differ (total-order keys depend on the
//!   partition), but the negotiation outcomes may not: identical winner
//!   maps, identical settled counts, identical network counters. Per-node
//!   RNG streams and per-node fault samplers make every draw a function
//!   of `(seed, node)` rather than of the schedule, which is what makes
//!   this pin achievable at all.
//!
//! Runs under `PROPTEST_CASES` (64 locally, 256 in CI).

use std::collections::BTreeMap;

use proptest::prelude::*;

use qosc_core::{NegoEvent, NegoId, Pid};
use qosc_netsim::{FaultPlan, PartitionPlan, SimDuration, SimTime};
use qosc_spec::TaskId;
use qosc_workloads::{pedestrian, AppTemplate, Backend, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Dense static population under the *default* radio (2 ms latency →
/// 2 ms conservative lookahead), so the parallel path genuinely runs on
/// multi-worker configurations.
fn config(nodes: usize, seed: u64) -> ScenarioConfig {
    ScenarioConfig::dense(nodes, seed)
}

/// Runs the scenario on one backend; returns the event log and the
/// message count.
fn run_on(
    backend: Backend,
    config: &ScenarioConfig,
    tasks: usize,
    organizer: u32,
    plan: Option<FaultPlan>,
) -> (Vec<qosc_core::LoggedEvent>, u64) {
    let mut rt = config.build_backend(backend);
    if let Some(plan) = plan {
        assert!(rt.set_fault_plan(plan), "{}", rt.backend_name());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(organizer, svc, SimTime(1_000))
        .expect("submit targets an organizer node");
    rt.run(SimTime(5_000_000));
    (rt.events().to_vec(), rt.messages_sent())
}

/// Same scenario, but with `plan` installed directly on the runtime
/// (bypassing `ScenarioConfig::partitions`, which skips inert plans), so
/// even a plan with no events is genuinely installed before the run.
fn run_with_installed_plan(
    backend: Backend,
    config: &ScenarioConfig,
    tasks: usize,
    plan: &PartitionPlan,
) -> (Vec<qosc_core::LoggedEvent>, u64) {
    let mut rt = config.build_backend(backend);
    assert!(
        rt.set_partition_plan(plan),
        "{} enforces partitions",
        rt.backend_name()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", tasks, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 organizes");
    rt.run(SimTime(5_000_000));
    (rt.events().to_vec(), rt.messages_sent())
}

/// Nodes `0..n` split into two halves (the canonical worst-case cut).
fn halves(nodes: usize) -> Vec<Vec<u32>> {
    let mid = (nodes / 2) as u32;
    vec![(0..mid).collect(), (mid..nodes as u32).collect()]
}

/// Winner map of every settled negotiation: `nego → task → winning node`.
fn winner_maps(events: &[qosc_core::LoggedEvent]) -> BTreeMap<NegoId, BTreeMap<TaskId, Pid>> {
    let mut out = BTreeMap::new();
    for e in events {
        let (nego, metrics) = match &e.event {
            NegoEvent::Formed { nego, metrics } => (*nego, metrics),
            NegoEvent::FormationIncomplete { nego, metrics, .. } => (*nego, metrics),
            _ => continue,
        };
        out.insert(
            nego,
            metrics.outcomes.iter().map(|(t, o)| (*t, o.node)).collect(),
        );
    }
    out
}

fn settled_count(events: &[qosc_core::LoggedEvent]) -> usize {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )
        })
        .count()
}

proptest! {
    // Default config: 64 cases locally, PROPTEST_CASES=256 in CI.
    #![proptest_config(ProptestConfig::default())]

    /// One worker is the sequential engine, bit for bit: identical event
    /// logs and message counts for any seed, pool, task count and
    /// originating node.
    #[test]
    fn one_worker_is_bit_equal_to_des(
        seed in 0u64..10_000,
        nodes in 2usize..20,
        tasks in 1usize..4,
        org_pick in 0usize..20,
    ) {
        let organizer = (org_pick % nodes) as u32;
        let cfg = config(nodes, seed);
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, tasks, organizer, None);
        let (sh_events, sh_msgs) =
            run_on(Backend::DesSharded { workers: 1 }, &cfg, tasks, organizer, None);
        prop_assert_eq!(&des_events, &sh_events,
            "event logs diverged (seed {}, {} nodes, {} tasks, organizer {})",
            seed, nodes, tasks, organizer);
        prop_assert_eq!(des_msgs, sh_msgs, "message counts diverged");
        prop_assert!(settled_count(&des_events) > 0, "scenario was vacuous");
    }

    /// Bit-equality survives the merged-path triggers: random-waypoint
    /// mobility (node table mutates mid-run) and a sampled fault plan
    /// (per-node fault streams) at once.
    #[test]
    fn one_worker_bit_equality_with_mobility_and_faults(
        seed in 0u64..10_000,
        nodes in 2usize..12,
        tasks in 1usize..3,
    ) {
        let cfg = ScenarioConfig {
            mobility: Some(pedestrian(2.0)),
            ..config(nodes, seed)
        };
        let plan = FaultPlan::sampled(seed ^ 0xFA_57)
            .with_drop(0.05)
            .with_duplicate(0.05)
            .with_reorder(0.10, SimDuration::millis(3));
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, tasks, 0, Some(plan));
        let (sh_events, sh_msgs) =
            run_on(Backend::DesSharded { workers: 1 }, &cfg, tasks, 0, Some(plan));
        prop_assert_eq!(&des_events, &sh_events,
            "faulted/mobile logs diverged (seed {}, {} nodes)", seed, nodes);
        prop_assert_eq!(des_msgs, sh_msgs);
    }

    /// Parallel workers pin the *outcome*: same winner maps, same settled
    /// count, same message counters as the sequential DES — the log order
    /// is the only thing allowed to differ.
    #[test]
    fn multi_worker_outcomes_match_des(
        seed in 0u64..10_000,
        nodes in 4usize..24,
        tasks in 1usize..4,
    ) {
        let cfg = config(nodes, seed);
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, tasks, 0, None);
        for workers in [2usize, 4] {
            let (sh_events, sh_msgs) =
                run_on(Backend::DesSharded { workers }, &cfg, tasks, 0, None);
            prop_assert_eq!(winner_maps(&des_events), winner_maps(&sh_events),
                "winner maps diverged (seed {}, {} nodes, {} workers)", seed, nodes, workers);
            prop_assert_eq!(settled_count(&des_events), settled_count(&sh_events),
                "settled counts diverged (seed {}, {} workers)", seed, workers);
            prop_assert_eq!(des_msgs, sh_msgs,
                "message counts diverged (seed {}, {} workers)", seed, workers);
        }
        prop_assert!(settled_count(&des_events) > 0, "scenario was vacuous");
    }

    /// Per-node fault streams make multi-worker fault runs outcome-equal
    /// to the sequential faulted run: the fault pattern is a function of
    /// `(plan seed, node)`, never of the thread schedule.
    #[test]
    fn multi_worker_fault_outcomes_match_des(
        seed in 0u64..10_000,
        nodes in 4usize..12,
    ) {
        let cfg = config(nodes, seed);
        let plan = FaultPlan::sampled(seed ^ 0x5EED)
            .with_drop(0.05)
            .with_duplicate(0.05);
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, 2, 0, Some(plan));
        let (sh_events, sh_msgs) =
            run_on(Backend::DesSharded { workers: 4 }, &cfg, 2, 0, Some(plan));
        prop_assert_eq!(winner_maps(&des_events), winner_maps(&sh_events),
            "faulted winner maps diverged (seed {}, {} nodes)", seed, nodes);
        prop_assert_eq!(des_msgs, sh_msgs, "faulted message counts diverged");
    }

    /// An installed partition plan that never cuts a delivery — no events
    /// at all, or a split healed before the first send — leaves every
    /// enforcing backend bit-identical to a run with no plan.
    #[test]
    fn inert_partition_plans_are_bit_identical(
        seed in 0u64..10_000,
        nodes in 2usize..12,
        tasks in 1usize..3,
    ) {
        let cfg = config(nodes, seed);
        // Split at t=0, healed at t=500 µs: the first send is the submit
        // at t=1 ms, so no delivery ever lands while a link is cut.
        let prehealed = PartitionPlan::none()
            .partition_at(SimTime(0), halves(nodes))
            .heal_at(SimTime(500));
        for backend in [Backend::Des, Backend::DesSharded { workers: 1 }, Backend::Direct] {
            let (plain_events, plain_msgs) = run_on(backend, &cfg, tasks, 0, None);
            for plan in [PartitionPlan::none(), prehealed.clone()] {
                let (cut_events, cut_msgs) =
                    run_with_installed_plan(backend, &cfg, tasks, &plan);
                prop_assert_eq!(&plain_events, &cut_events,
                    "inert plan changed the {:?} log (seed {}, {} nodes)",
                    backend, seed, nodes);
                prop_assert_eq!(plain_msgs, cut_msgs,
                    "inert plan changed {:?} message counts (seed {})", backend, seed);
            }
        }
    }

    /// Sharded vs sequential DES under the *same* partition schedule:
    /// one worker stays bit-equal while links are cut, and parallel
    /// workers stay outcome-pinned — a cut is a function of
    /// `(timeline, sender, receiver, delivery time)`, never of the
    /// thread schedule.
    #[test]
    fn multi_worker_partition_outcomes_match_des(
        seed in 0u64..10_000,
        nodes in 4usize..16,
        tasks in 1usize..3,
    ) {
        let cfg = ScenarioConfig {
            partitions: PartitionPlan::none()
                .partition_at(SimTime(50_000), halves(nodes))
                .heal_at(SimTime(400_000)),
            ..config(nodes, seed)
        };
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, tasks, 0, None);
        let (sh1_events, sh1_msgs) =
            run_on(Backend::DesSharded { workers: 1 }, &cfg, tasks, 0, None);
        prop_assert_eq!(&des_events, &sh1_events,
            "one-worker partitioned log diverged (seed {}, {} nodes)", seed, nodes);
        prop_assert_eq!(des_msgs, sh1_msgs);
        for workers in [2usize, 4] {
            let (sh_events, sh_msgs) =
                run_on(Backend::DesSharded { workers }, &cfg, tasks, 0, None);
            prop_assert_eq!(winner_maps(&des_events), winner_maps(&sh_events),
                "partitioned winner maps diverged (seed {}, {} workers)", seed, workers);
            prop_assert_eq!(settled_count(&des_events), settled_count(&sh_events),
                "partitioned settled counts diverged (seed {}, {} workers)", seed, workers);
            prop_assert_eq!(des_msgs, sh_msgs,
                "partitioned message counts diverged (seed {}, {} workers)", seed, workers);
        }
    }
}

/// A pinned (non-random) instance of both contracts with readable
/// failures, including capacity conservation on the sharded backend.
#[test]
fn pinned_seed_sharded_runs_match_des() {
    for &(nodes, tasks, seed) in &[(6usize, 2usize, 42u64), (16, 3, 7), (3, 1, 0)] {
        let cfg = config(nodes, seed);
        let (des_events, des_msgs) = run_on(Backend::Des, &cfg, tasks, 0, None);
        let (sh1_events, sh1_msgs) =
            run_on(Backend::DesSharded { workers: 1 }, &cfg, tasks, 0, None);
        assert_eq!(des_events, sh1_events, "seed {seed}: one-worker log");
        assert_eq!(des_msgs, sh1_msgs, "seed {seed}: one-worker messages");
        for workers in [2usize, 4] {
            let (sh_events, sh_msgs) =
                run_on(Backend::DesSharded { workers }, &cfg, tasks, 0, None);
            assert_eq!(
                winner_maps(&des_events),
                winner_maps(&sh_events),
                "seed {seed}, {workers} workers: winner maps"
            );
            assert_eq!(
                des_msgs, sh_msgs,
                "seed {seed}, {workers} workers: messages"
            );
        }
    }
}

/// Capacity conservation on the parallel path: after a formation settles,
/// every provider's committed resources stay within its capacity — the
/// same invariant the model checker ships, asserted here on the live
/// sharded backend at 4 workers.
#[test]
fn sharded_formation_conserves_capacity() {
    let cfg = config(12, 99);
    let mut rt = cfg.build_backend(Backend::DesSharded { workers: 4 });
    let mut rng = ChaCha8Rng::seed_from_u64(99 ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", 3, &mut rng);
    rt.submit(0, svc, SimTime(1_000)).expect("node 0 organizes");
    rt.run(SimTime(5_000_000));
    assert!(settled_count(rt.events()) > 0, "nothing settled");
    let winners = winner_maps(rt.events());
    for (_, tasks) in winners {
        for (_, pid) in tasks {
            let node = rt.node(pid).expect("winner is registered");
            let provider = node.provider().expect("winner has a provider engine");
            let ledger = provider.ledger();
            for kind in qosc_resources::ResourceKind::ALL {
                let cap = ledger.capacity().get(kind);
                let avail = ledger.available().get(kind);
                assert!(
                    (-1e-9..=cap + 1e-9).contains(&avail),
                    "node {pid}: {kind:?} available {avail} outside [0, {cap}]"
                );
            }
        }
    }
}
