//! Partition-tolerance acceptance: a link-level partition that strands a
//! CFP round mid-flight must not lose tasks. The organizer's
//! timeout/backoff layer keeps re-announcing, providers release the
//! reservations the dead round left behind, and once the partition heals
//! the negotiation settles with every announced task either assigned or
//! explicitly given up — never silently dropped.

use std::collections::BTreeSet;

use qosc_core::strategy::{OrganizerStrategy, TimeoutBackoff};
use qosc_core::{NegoEvent, OrganizerConfig, Runtime};
use qosc_mc::{partition_invariants, verify_runtime};
use qosc_netsim::{PartitionPlan, SimDuration, SimTime};
use qosc_spec::TaskId;
use qosc_workloads::{AppTemplate, Scenario, ScenarioConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const NODES: usize = 256;
/// The split lands at t = 4 ms: after the round-0 CFP reaches the
/// providers (default radio, ~2 ms latency, CFP arrives at ~3 ms) but
/// before their proposals reach the organizer (~5 ms) — a genuinely
/// mid-CFP cut that strands 255 in-flight proposals and the
/// reservations backing them.
const SPLIT_AT: SimTime = SimTime(4_000);
const HEAL_AT: SimTime = SimTime(1_500_000);

/// A 256-node dense population where node 0 (the organizer) is cut off
/// from everyone else until [`HEAL_AT`], with a doubling re-announce
/// backoff armed so the round budget survives the outage.
fn partitioned_config(seed: u64) -> ScenarioConfig {
    let organizer = OrganizerConfig {
        max_rounds: 12,
        chain: OrganizerStrategy::new().with(TimeoutBackoff::doubling(SimDuration::millis(50), 10)),
        ..OrganizerConfig::default()
    };
    let isolate_organizer = vec![vec![0u32], (1..NODES as u32).collect()];
    ScenarioConfig {
        organizer,
        partitions: PartitionPlan::none()
            .partition_at(SPLIT_AT, isolate_organizer)
            .heal_at(HEAL_AT),
        ..ScenarioConfig::dense(NODES, seed)
    }
}

#[test]
fn mid_cfp_partition_settles_after_heal_with_every_task_conserved() {
    let config = partitioned_config(42);
    let mut scenario = Scenario::build(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0xE0_0001);
    let svc = AppTemplate::Surveillance.service("svc", 4, &mut rng);
    scenario.submit(0, svc, SimTime(1_000));
    scenario.run_until(SimTime(8_000_000));

    // The cut was real: round-0 proposals (and the blocked re-announce
    // rounds) were discarded at delivery time.
    let cuts = scenario.net_stats().partition_cuts;
    assert!(cuts > 0, "the partition never cut a delivery");

    // The negotiation settled, and only after the heal: every pre-heal
    // round was starved of proposals, so recovery is attributable to the
    // retry layer re-announcing into the healed network.
    let settle = scenario
        .events()
        .iter()
        .find(|e| {
            matches!(
                e.event,
                NegoEvent::Formed { .. } | NegoEvent::FormationIncomplete { .. }
            )
        })
        .expect("negotiation neither formed nor gave up");
    assert!(
        settle.at > HEAL_AT,
        "settled at {:?}, before the heal at {HEAL_AT:?} — the partition never bit",
        settle.at
    );

    // Task conservation, explicitly: announced = assigned ∪ given_up,
    // with nothing left open or awaiting an award answer.
    let org = scenario
        .runtime
        .node(0)
        .and_then(|n| n.organizer())
        .expect("node 0 organizes");
    for nego in org.nego_ids() {
        let lc = org.task_lifecycle(nego).expect("live negotiation");
        assert!(
            lc.open.is_empty(),
            "{nego}: tasks still open: {:?}",
            lc.open
        );
        assert!(
            lc.pending.is_empty(),
            "{nego}: awards still pending: {:?}",
            lc.pending
        );
        let ended: BTreeSet<TaskId> = lc
            .assigned
            .keys()
            .chain(lc.given_up.iter())
            .copied()
            .collect();
        assert_eq!(
            lc.announced, ended,
            "{nego}: announced tasks not conserved (assigned {:?}, given up {:?})",
            lc.assigned, lc.given_up
        );
    }

    // And the model checker's partition invariants — including
    // no-split-brain-double-award and liveness-after-heal — hold on the
    // settled 256-node state.
    let ids: Vec<u32> = (0..NODES as u32).collect();
    verify_runtime(&scenario.runtime, &ids, &partition_invariants(), true)
        .unwrap_or_else(|v| panic!("{v}"));
}
