//! The negotiation protocol on the *live* threaded transport.
//!
//! The engines are sans-IO; here each node is an OS-thread actor
//! (`qosc-actors`) with real wall-clock timers, and the process-wide
//! `Directory` plays the radio's role. The same code drives the
//! deterministic simulator in every experiment — this example proves the
//! protocol also runs concurrently in real time. The cluster harness is
//! shared with the `live_actor_transport` integration test.
//!
//! ```text
//! cargo run -p qosc-system-tests --example live_actors
//! ```

use std::time::Duration;

use qosc_core::NegoEvent;
use qosc_spec::{catalog, ServiceDef, TaskDef};
use qosc_system_tests::live::{spawn_live_cluster, LiveMsg};

fn main() {
    let (mut system, dir, events_rx) = spawn_live_cluster(&[15.0, 60.0, 150.0, 400.0]);

    // Node 0 originates a two-camera surveillance service.
    let spec = catalog::av_spec();
    let service = ServiceDef::new(
        "live-demo",
        (0..2)
            .map(|i| TaskDef {
                name: format!("camera-{i}"),
                spec: spec.clone(),
                request: catalog::surveillance_request(),
                input_bytes: 80_000,
                output_bytes: 8_000,
            })
            .collect(),
    );
    dir.send(0, 0, LiveMsg::Start(service));

    // Wait (wall clock!) for the coalition to form.
    match events_rx.recv_timeout(Duration::from_secs(10)) {
        Ok((node, NegoEvent::Formed { metrics, .. })) => {
            println!("coalition formed (organizer node {node}):");
            for (task, o) in &metrics.outcomes {
                println!("  {task} -> node {} at distance {:.4}", o.node, o.distance);
            }
            println!(
                "  formation took {:.0} ms of real time",
                metrics
                    .formation_latency()
                    .map(|l| l.as_secs_f64() * 1000.0)
                    .unwrap_or(0.0)
            );
        }
        Ok((node, other)) => println!("node {node} reported: {other:?}"),
        Err(_) => eprintln!("no coalition within 10 s — check thread scheduling"),
    }
    system.shutdown();
}
