//! The negotiation protocol on the *live* threaded transport.
//!
//! The engines are sans-IO; here each node is an OS-thread actor behind
//! `qosc_core::ActorRuntime`, with real wall-clock timers and the
//! process-wide `Directory` playing the radio's role. The same scenario
//! code drives the deterministic simulator in every experiment — this
//! example proves the protocol also runs concurrently in real time,
//! through the exact same `Runtime` API.
//!
//! ```text
//! cargo run -p qosc-system-tests --example live_actors
//! ```

use qosc_core::{NegoEvent, Runtime};
use qosc_netsim::SimTime;
use qosc_spec::{catalog, ServiceDef, TaskDef};
use qosc_system_tests::live_cluster;

fn main() {
    let mut rt = live_cluster(&[15.0, 60.0, 150.0, 400.0]);

    // Node 0 originates a two-camera surveillance service.
    let spec = catalog::av_spec();
    let service = ServiceDef::new(
        "live-demo",
        (0..2)
            .map(|i| TaskDef {
                name: format!("camera-{i}"),
                spec: spec.clone(),
                request: catalog::surveillance_request(),
                input_bytes: 80_000,
                output_bytes: 8_000,
            })
            .collect(),
    );
    rt.submit(0, service, SimTime(1_000))
        .expect("node 0 hosts the organizer");

    // Wait (wall clock!) for the coalition to form.
    let settled = rt.run_until_settled(1, SimTime(10_000_000));
    match rt.events().iter().find_map(|e| match &e.event {
        NegoEvent::Formed { metrics, .. } => Some((e.node, metrics.clone())),
        _ => None,
    }) {
        Some((node, metrics)) => {
            println!("coalition formed (organizer node {node}):");
            for (task, o) in &metrics.outcomes {
                println!("  {task} -> node {} at distance {:.4}", o.node, o.distance);
            }
            println!(
                "  formation took {:.0} ms of real time",
                metrics
                    .formation_latency()
                    .map(|l| l.as_secs_f64() * 1000.0)
                    .unwrap_or(0.0)
            );
        }
        None => eprintln!("no coalition within 10 s ({settled} settled) — check thread scheduling"),
    }
    rt.shutdown();
}
