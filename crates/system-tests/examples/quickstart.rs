//! Quickstart: three wireless nodes negotiate a one-task coalition.
//!
//! ```text
//! cargo run -p qosc-system-tests --example quickstart
//! ```

use std::sync::Arc;

use qosc_core::{
    single_organizer_scenario, NegoEvent, OrganizerConfig, ProviderConfig, ProviderEngine, Runtime,
};
use qosc_netsim::{Mobility, Point, SimConfig, SimDuration, SimTime, Simulator};
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef};

fn main() {
    // A 3-node cluster, everyone in radio range.
    let mut sim = Simulator::new(SimConfig::default());
    for i in 0..3 {
        sim.add_node(Point::new(10.0 * i as f64, 0.0), Mobility::Static);
    }

    // Heterogeneous providers: node 0 (the requester) is weak, its
    // neighbours are progressively stronger.
    let spec = catalog::av_spec();
    let providers = (0..3u32)
        .map(|i| {
            let cpu = [12.0, 120.0, 400.0][i as usize];
            let mut p = ProviderEngine::new(
                i,
                ResourceVector::new(cpu, 256.0, 5000.0, 40.0, 4000.0),
                ProviderConfig::default(),
            );
            p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
            p
        })
        .collect();

    // The §3.1 remote-surveillance request as a one-task service.
    let service = ServiceDef::new(
        "quickstart",
        vec![TaskDef {
            name: "camera".into(),
            spec: spec.clone(),
            request: catalog::surveillance_request(),
            input_bytes: 50_000,
            output_bytes: 5_000,
        }],
    );

    let mut rt = single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        service,
        SimDuration::millis(1),
    );
    rt.run(SimTime(5_000_000));

    for e in rt.events() {
        match &e.event {
            NegoEvent::Formed { nego, metrics } => {
                println!("coalition {nego} formed at t={}", e.at);
                for (task, o) in &metrics.outcomes {
                    println!(
                        "  {task} -> node {} (distance {:.4}, comm {:.3}s)",
                        o.node, o.distance, o.comm_cost
                    );
                }
                println!(
                    "  members: {}, formation latency: {}",
                    metrics.distinct_members(),
                    metrics
                        .formation_latency()
                        .map(|l| l.to_string())
                        .unwrap_or_default()
                );
            }
            other => println!("event: {other:?}"),
        }
    }
    println!(
        "network: {} messages, mean latency {}",
        rt.net_stats().messages_sent(),
        rt.net_stats().mean_latency()
    );
}
