//! Video streaming under load: coalition vs going it alone.
//!
//! §1's motivating scenario — "a mobile client with limited CPU and memory
//! capacity ... can divide the computational intensive processing into
//! tasks and spread it among different neighbors". We sweep the number of
//! concurrent streams a weak requester tries to serve and compare the
//! coalition's outcome against local-only execution.
//!
//! ```text
//! cargo run -p qosc-system-tests --example video_streaming --release
//! ```

use qosc_baselines::{protocol_emulation, single_node, ProposalStrategy};
use qosc_bench::instances::population_instance;
use qosc_core::TieBreak;
use qosc_workloads::{AppTemplate, PopulationConfig};

fn main() {
    println!("streams | policy     | accepted | mean distance | members");
    println!("--------|------------|----------|---------------|--------");
    for streams in [1usize, 2, 4, 6, 8] {
        let inst = population_instance(
            &PopulationConfig::constrained(),
            8,
            AppTemplate::VideoConference,
            streams,
            0xE0 + streams as u64,
        );
        let coalition = qosc_baselines::protocol_emulation_with(
            &inst,
            &TieBreak::default(),
            ProposalStrategy::Sequential,
        );
        let local = single_node(&inst);
        let joint = protocol_emulation(&inst, &TieBreak::default());
        for (name, a) in [
            ("coalition", &coalition),
            ("joint-cfp", &joint),
            ("local-only", &local),
        ] {
            println!(
                "{streams:>7} | {name:<10} | {:>8.2} | {:>13.4} | {:>7}",
                a.acceptance_ratio(streams),
                a.mean_distance(),
                a.distinct_members()
            );
        }
    }
    println!(
        "\ncoalitions keep accepting streams (and at better quality) after \
         the local node saturates — the paper's §1 claim."
    );
}
