//! The paper's §3.1 running example, end to end.
//!
//! A remote-surveillance user prefers video over audio, frame rate over
//! colour depth, and accepts grey-scale low-rate video. We print the
//! request's expanded quality ladders, let a small heterogeneous cluster
//! negotiate, and show which quality the winning node actually offered —
//! including the eq. 2 evaluation that picked it.
//!
//! ```text
//! cargo run -p qosc-system-tests --example surveillance
//! ```

use std::sync::Arc;

use qosc_core::{
    single_organizer_scenario, Evaluator, NegoEvent, OrganizerConfig, ProviderConfig,
    ProviderEngine, Runtime,
};
use qosc_netsim::{Mobility, Point, SimConfig, SimDuration, SimTime, Simulator};
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef};

fn main() {
    let spec = catalog::av_spec();
    let request = catalog::surveillance_request();
    let resolved = request.resolve(&spec).expect("catalog request resolves");

    println!("=== §3.1 service request (decreasing importance) ===");
    for (k, dim) in resolved.dimensions.iter().enumerate() {
        println!("{}. {}", k + 1, dim.name);
        for (i, attr) in dim.attributes.iter().enumerate() {
            let ladder: Vec<String> = attr.levels.iter().map(|v| v.to_string()).collect();
            println!(
                "   {}.{} {}: [{}]",
                k + 1,
                i + 1,
                attr.name,
                ladder.join(", ")
            );
        }
    }

    // Four nodes: requester phone + two PDAs + one laptop, all in range.
    let mut sim = Simulator::new(SimConfig::default());
    let cpus = [10.0, 24.0, 40.0, 300.0];
    for i in 0..4 {
        sim.add_node(Point::new(8.0 * i as f64, 0.0), Mobility::Static);
    }
    let providers = (0..4u32)
        .map(|i| {
            let mut p = ProviderEngine::new(
                i,
                ResourceVector::new(cpus[i as usize], 128.0, 2000.0, 20.0, 1500.0),
                ProviderConfig {
                    link_kbps: [0.0f64, 400.0, 800.0, 5000.0][i as usize].max(1.0),
                    ..Default::default()
                },
            );
            p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
            p
        })
        .collect();

    let service = ServiceDef::new(
        "surveillance-feed",
        vec![TaskDef {
            name: "camera-decode".into(),
            spec: spec.clone(),
            request: request.clone(),
            input_bytes: 120_000,
            output_bytes: 12_000,
        }],
    );

    let mut rt = single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        service,
        SimDuration::millis(1),
    );
    rt.run(SimTime(5_000_000));

    println!("\n=== negotiation outcome ===");
    let evaluator = Evaluator::default();
    for e in rt.events() {
        if let NegoEvent::Formed { metrics, .. } = &e.event {
            for (task, o) in &metrics.outcomes {
                println!(
                    "{task}: node {} wins at distance {:.4} (comm {:.3}s)",
                    o.node, o.distance, o.comm_cost
                );
            }
        }
    }
    // Show what each quality ladder level would have scored, for intuition.
    println!("\n=== eq. 2 distance per frame-rate level (others preferred) ===");
    for lvl in 0..resolved.dimensions[0].attributes[0].levels.len() {
        let d = evaluator
            .distance_of_levels(&spec, &resolved, &[lvl, 0, 0, 0])
            .expect("ladder levels are in-domain");
        println!(
            "frame_rate = {:>2} -> distance {:.4}",
            resolved.dimensions[0].attributes[0].levels[lvl], d
        );
    }
}
