//! The §7 offload decision: transcode locally or ship it to a neighbour?
//!
//! "Playing downloaded movies may require decompression ... such a default
//! action may suffer time penalty and, possibly, battery energy loss. ...
//! processing on the server may require additional data communication."
//! The coalition's tie-break (quality ≻ communication cost) makes that
//! call per task; this example shows the crossover as the payload grows.
//!
//! ```text
//! cargo run -p qosc-system-tests --example transcode_offload
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use qosc_baselines::{protocol_emulation, Instance, OfflineNode, OfflineTask};
use qosc_core::{EvalConfig, OrganizerStrategy, ProviderStrategy, TieBreak};
use qosc_resources::{DeviceClass, ResourceKind, SchedulingPolicy};
use qosc_spec::{catalog, TaskId};
use qosc_workloads::transcode_demand_model;

fn node(id: u32, class: DeviceClass) -> OfflineNode {
    let spec = catalog::transcode_spec();
    let mut models: HashMap<String, Arc<dyn qosc_resources::DemandModel>> = HashMap::new();
    models.insert(
        spec.name().to_string(),
        Arc::new(transcode_demand_model(&spec)),
    );
    let capacity = class.capacity();
    OfflineNode {
        id,
        capacity,
        link_kbps: capacity.get(ResourceKind::NetBandwidth),
        policy: SchedulingPolicy::Edf,
        models,
        reward: None,
        chain: ProviderStrategy::default(),
    }
}

fn main() {
    let spec = catalog::transcode_spec();
    let request = catalog::transcode_request()
        .resolve(&spec)
        .expect("catalog request matches catalog spec");
    println!("payload_mb | winner        | distance | comm_cost_s");
    println!("-----------|---------------|----------|------------");
    for mb in [0.5, 1.0, 2.0, 5.0, 10.0, 40.0] {
        let bytes = (mb * 1_000_000.0) as u64;
        let inst = Instance {
            requester: 0,
            nodes: vec![
                node(0, DeviceClass::Phone),  // the requester
                node(1, DeviceClass::Laptop), // a strong neighbour
            ],
            tasks: vec![OfflineTask::new(
                TaskId(0),
                spec.clone(),
                request.clone(),
                bytes,
                bytes / 4,
            )],
            eval: EvalConfig::default(),
            chain: OrganizerStrategy::default(),
        };
        let a = protocol_emulation(&inst, &TieBreak::default());
        match a.placements.get(&TaskId(0)) {
            Some(p) => {
                let who = if p.node == 0 {
                    "local phone"
                } else {
                    "remote laptop"
                };
                println!(
                    "{mb:>10.1} | {who:<13} | {:>8.4} | {:>10.3}",
                    p.distance, p.comm_cost
                );
            }
            None => println!("{mb:>10.1} | unplaceable    |        - |          -"),
        }
    }
    println!(
        "\nthe laptop wins on quality whenever the phone must degrade; \
         quality dominates comm cost in the §4.2 tie-break, so the offload \
         persists even as shipping grows — exactly the paper's trade-off."
    );
}
