//! placeholder
