//! Shared scenario builders for the cross-crate integration tests and
//! examples.
//!
//! Every integration test in `tests/` assembles the same three
//! ingredients: AV-capable [`ProviderEngine`]s, a multi-task
//! [`ServiceDef`] over the paper's surveillance request, and a runtime
//! backend to execute them on. The builders here keep those assemblies in
//! one place so the tests state only what they vary (capacities, byte
//! sizes, mobility, seeds, backend).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::Arc;

use qosc_core::{
    single_organizer_scenario, ActorRuntime, CoalitionNode, DesRuntime, Msg, OrganizerConfig,
    OrganizerEngine, ProviderConfig, ProviderEngine, Runtime,
};
use qosc_netsim::{Area, Mobility, Point, SimConfig, SimDuration, Simulator};
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef, TaskDef};
use qosc_workloads::{PopulationConfig, Scenario, ScenarioConfig};

/// Builds an AV-capable provider with the standard ancillary resources
/// (512 MB memory, 10 GB storage, 60% battery, 10 Mbit/s) and the given
/// CPU capacity and engine configuration.
pub fn av_provider_with(id: u32, cpu: f64, config: ProviderConfig) -> ProviderEngine {
    let spec = catalog::av_spec();
    let mut p = ProviderEngine::new(
        id,
        ResourceVector::new(cpu, 512.0, 10_000.0, 60.0, 10_000.0),
        config,
    );
    p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
    p
}

/// [`av_provider_with`] using the default [`ProviderConfig`].
pub fn av_provider(id: u32, cpu: f64) -> ProviderEngine {
    av_provider_with(id, cpu, ProviderConfig::default())
}

/// A provider whose heartbeat is pushed out of any reasonable test
/// window (1 h), for tests that do exact message accounting.
pub fn quiet_provider(id: u32, cpu: f64) -> ProviderEngine {
    av_provider_with(
        id,
        cpu,
        ProviderConfig {
            heartbeat_interval: SimDuration::secs(3600),
            ..Default::default()
        },
    )
}

/// A `tasks`-task service over the §3.1 surveillance request with
/// explicit per-task transfer sizes.
pub fn surveillance_service_sized(
    name: &str,
    tasks: usize,
    input_bytes: u64,
    output_bytes: u64,
) -> ServiceDef {
    ServiceDef::new(
        name,
        (0..tasks)
            .map(|i| TaskDef {
                name: format!("t{i}"),
                spec: catalog::av_spec(),
                request: catalog::surveillance_request(),
                input_bytes,
                output_bytes,
            })
            .collect(),
    )
}

/// A surveillance service with the default light transfer sizes
/// (50 kB in, 5 kB out per task).
pub fn surveillance_service(name: &str, tasks: usize) -> ServiceDef {
    surveillance_service_sized(name, tasks, 50_000, 5_000)
}

/// A simulator whose `n` static nodes sit on a 3 m-spaced line inside a
/// 40 m square — everyone in radio range of everyone.
pub fn dense_sim(n: usize) -> Simulator<Msg> {
    let mut sim = Simulator::new(SimConfig {
        area: Area::new(40.0, 40.0),
        seed: 99,
        ..Default::default()
    });
    for i in 0..n {
        sim.add_node(Point::new(3.0 * i as f64, 0.0), Mobility::Static);
    }
    sim
}

/// A dense workload [`Scenario`]: `nodes` devices from the default
/// population packed into a 50 m square, fully connected.
pub fn dense_scenario(seed: u64, nodes: usize) -> Scenario {
    Scenario::build(&ScenarioConfig {
        nodes,
        area: Area::new(50.0, 50.0),
        population: PopulationConfig::default(),
        seed,
        ..Default::default()
    })
}

/// The `qosc_core` lib.rs quickstart, as a function: three static nodes,
/// heterogeneous CPUs (100/250/400), one single-task demo service
/// kicked off after 1 ms, on the DES backend. Run it with
/// `rt.run(..)` and a coalition forms.
pub fn quickstart_scenario() -> DesRuntime {
    let mut sim = Simulator::new(SimConfig::default());
    for i in 0..3 {
        sim.add_node(Point::new(10.0 * i as f64, 0.0), Mobility::Static);
    }
    let providers = (0..3u32)
        .map(|i| av_provider_with(i, 100.0 + 150.0 * i as f64, ProviderConfig::default()))
        .collect();
    single_organizer_scenario(
        sim,
        OrganizerConfig::default(),
        providers,
        quickstart_service(),
        SimDuration::millis(1),
    )
}

/// The quickstart's one-task demo service.
pub fn quickstart_service() -> ServiceDef {
    let spec = catalog::av_spec();
    ServiceDef::new(
        "demo",
        vec![TaskDef {
            name: "camera".into(),
            spec: spec.clone(),
            request: catalog::surveillance_request(),
            input_bytes: 50_000,
            output_bytes: 5_000,
        }],
    )
}

/// The quickstart's node set as a backend-agnostic description: three
/// AV-capable providers with CPUs 100/250/400, node 0 organizing.
pub fn quickstart_nodes() -> Vec<CoalitionNode> {
    (0..3u32)
        .map(|i| {
            let spec = catalog::av_spec();
            let mut p = ProviderEngine::new(
                i,
                ResourceVector::new(100.0 + 150.0 * i as f64, 256.0, 5000.0, 40.0, 4000.0),
                ProviderConfig::default(),
            );
            p.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
            let node = CoalitionNode::new(i).with_provider(p);
            if i == 0 {
                node.with_organizer(OrganizerEngine::new(i, OrganizerConfig::default()))
            } else {
                node
            }
        })
        .collect()
}

/// Spawns one AV-capable live node per entry of `cpus` (256 MB memory,
/// 4 GB storage, 40% battery, 4 Mbit/s each) on the threaded actor
/// backend; every node both provides and organizes. Kick things off with
/// `rt.submit(0, service, at)` and wait with `rt.run_until_settled(..)`.
pub fn live_cluster(cpus: &[f64]) -> ActorRuntime {
    let spec = catalog::av_spec();
    let mut rt = ActorRuntime::new();
    for (id, cpu) in cpus.iter().enumerate() {
        let id = id as u32;
        let mut provider = ProviderEngine::new(
            id,
            ResourceVector::new(*cpu, 256.0, 4000.0, 40.0, 4000.0),
            ProviderConfig::default(),
        );
        provider.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
        let node = CoalitionNode::new(id)
            .with_provider(provider)
            .with_organizer(OrganizerEngine::new(id, OrganizerConfig::default()));
        rt.add_node(node).expect("cluster ids are sequential");
    }
    rt
}
