//! Shared harness for running the negotiation engines on the *live*
//! threaded actor transport (`qosc-actors`): real concurrency,
//! wall-clock timers, and a process-wide [`Directory`] playing the
//! radio's role. Used by both the `live_actor_transport` integration
//! test and the `live_actors` example.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};

use qosc_actors::{Actor, ActorCtx, ActorSystem, Directory};
use qosc_core::{
    decode_timer, Action, Msg, NegoEvent, OrganizerConfig, OrganizerEngine, Pid, ProviderConfig,
    ProviderEngine, TimerKind,
};
use qosc_netsim::SimTime;
use qosc_resources::{av_demand_model, ResourceVector};
use qosc_spec::{catalog, ServiceDef};

/// Messages a live node actor consumes (Clone: broadcasts fan copies).
#[derive(Clone)]
pub enum LiveMsg {
    /// A protocol message from a peer.
    Proto {
        /// Sending node.
        from: Pid,
        /// The protocol payload.
        msg: Msg,
    },
    /// A timer armed by one of the engines fired.
    Timer(u64),
    /// Host bootstrap: originate a service negotiation.
    Start(ServiceDef),
}

/// One node of the live cluster: organizer + provider engines sharing a
/// wall-clock epoch, wired to peers through the [`Directory`].
pub struct LiveNode {
    id: Pid,
    organizer: OrganizerEngine,
    provider: ProviderEngine,
    dir: Directory<LiveMsg>,
    epoch: Instant,
    events: Sender<(Pid, NegoEvent)>,
}

impl LiveNode {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    fn apply(&mut self, ctx: &ActorCtx<LiveMsg>, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Broadcast(msg) => {
                    // Broadcasts do not echo to the sender; the paper lets
                    // the organizer's node compete, so feed it directly.
                    if matches!(msg, Msg::CallForProposals { .. }) {
                        let local = self.provider.on_message(self.now(), self.id, &msg);
                        self.apply(ctx, local);
                    }
                    self.dir
                        .broadcast(self.id, &LiveMsg::Proto { from: self.id, msg });
                }
                Action::Send { to, msg } => {
                    self.dir
                        .send(self.id, to, LiveMsg::Proto { from: self.id, msg });
                }
                Action::Timer { delay, token } => {
                    let addr = ctx.myself();
                    let d = Duration::from_micros(delay.as_micros());
                    std::thread::spawn(move || {
                        std::thread::sleep(d);
                        let _ = addr.send(LiveMsg::Timer(token));
                    });
                }
                Action::Event(e) => {
                    let _ = self.events.send((self.id, e));
                }
            }
        }
    }
}

impl Actor for LiveNode {
    type Msg = LiveMsg;

    fn handle(&mut self, ctx: &ActorCtx<LiveMsg>, msg: LiveMsg) {
        let now = self.now();
        match msg {
            LiveMsg::Start(service) => match self.organizer.start_service(now, &service) {
                Ok((_, actions)) => self.apply(ctx, actions),
                Err(e) => eprintln!("node {}: bad service: {e}", self.id),
            },
            LiveMsg::Proto { from, msg } => {
                let actions = match &msg {
                    Msg::CallForProposals { .. } | Msg::Award { .. } | Msg::Release { .. } => {
                        self.provider.on_message(now, from, &msg)
                    }
                    _ => self.organizer.on_message(now, from, &msg),
                };
                self.apply(ctx, actions);
            }
            LiveMsg::Timer(token) => {
                let Some((nego, kind)) = decode_timer(token) else {
                    return;
                };
                let actions = match kind {
                    TimerKind::ProposalDeadline
                    | TimerKind::AwardDeadline
                    | TimerKind::HeartbeatCheck => self.organizer.on_timer(now, nego, kind),
                    TimerKind::HeartbeatSend | TimerKind::HoldExpiry => {
                        self.provider.on_timer(now, nego, kind)
                    }
                    TimerKind::Kickoff | TimerKind::Dissolve => Vec::new(),
                };
                self.apply(ctx, actions);
            }
        }
    }
}

/// Spawns one AV-capable live node per entry of `cpus` (256 MB memory,
/// 4 GB storage, 40% battery, 4 Mbit/s each) and registers them all in
/// a fresh [`Directory`]. Negotiation events from every node arrive on
/// the returned receiver. Kick things off with
/// `dir.send(0, 0, LiveMsg::Start(service))`.
pub fn spawn_live_cluster(
    cpus: &[f64],
) -> (ActorSystem, Directory<LiveMsg>, Receiver<(Pid, NegoEvent)>) {
    let spec = catalog::av_spec();
    let mut system = ActorSystem::new();
    let dir: Directory<LiveMsg> = Directory::new();
    let (tx, rx) = unbounded();
    let epoch = Instant::now();
    for (id, cpu) in cpus.iter().enumerate() {
        let id = id as u32;
        let mut provider = ProviderEngine::new(
            id,
            ResourceVector::new(*cpu, 256.0, 4000.0, 40.0, 4000.0),
            ProviderConfig::default(),
        );
        provider.register_demand_model(spec.name(), Arc::new(av_demand_model(&spec)));
        let node = LiveNode {
            id,
            organizer: OrganizerEngine::new(id, OrganizerConfig::default()),
            provider,
            dir: dir.clone(),
            epoch,
            events: tx.clone(),
        };
        let addr = system.spawn(format!("node-{id}"), node);
        dir.register(id, addr);
    }
    (system, dir, rx)
}
