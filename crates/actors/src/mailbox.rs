//! Mailboxes and addresses.
//!
//! An [`Addr<M>`] is a cheap, clonable handle for sending `M`-typed
//! messages into an actor's mailbox (an unbounded crossbeam channel). The
//! mailbox side is private to the runtime.

use crossbeam::channel::{unbounded, Receiver, Sender, TrySendError};

/// Control wrapper around user messages.
#[derive(Debug)]
pub(crate) enum Envelope<M> {
    /// An application message.
    User(M),
    /// Graceful-stop request; the actor drains nothing further.
    Stop,
}

/// Sending handle to one actor's mailbox.
#[derive(Debug)]
pub struct Addr<M> {
    pub(crate) tx: Sender<Envelope<M>>,
}

impl<M> Clone for Addr<M> {
    fn clone(&self) -> Self {
        Self {
            tx: self.tx.clone(),
        }
    }
}

impl<M> Addr<M> {
    /// Sends a message; returns `false` if the actor has terminated.
    pub fn send(&self, msg: M) -> bool {
        match self.tx.try_send(Envelope::User(msg)) {
            Ok(()) => true,
            Err(TrySendError::Disconnected(_)) => false,
            // Unbounded channels never report Full.
            Err(TrySendError::Full(_)) => unreachable!("unbounded mailbox"),
        }
    }

    /// Requests a graceful stop.
    pub fn stop(&self) -> bool {
        self.tx.try_send(Envelope::Stop).is_ok()
    }
}

/// Creates a mailbox pair.
pub(crate) fn mailbox<M>() -> (Addr<M>, Receiver<Envelope<M>>) {
    let (tx, rx) = unbounded();
    (Addr { tx }, rx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_receive() {
        let (addr, rx) = mailbox::<u32>();
        assert!(addr.send(7));
        match rx.recv().unwrap() {
            Envelope::User(v) => assert_eq!(v, 7),
            Envelope::Stop => panic!("expected user message"),
        }
    }

    #[test]
    fn clone_shares_mailbox() {
        let (addr, rx) = mailbox::<u32>();
        let addr2 = addr.clone();
        addr.send(1);
        addr2.send(2);
        let mut got = vec![];
        for _ in 0..2 {
            if let Envelope::User(v) = rx.recv().unwrap() {
                got.push(v);
            }
        }
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn send_to_dropped_mailbox_fails() {
        let (addr, rx) = mailbox::<u32>();
        drop(rx);
        assert!(!addr.send(1));
        assert!(!addr.stop());
    }
}
