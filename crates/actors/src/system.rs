//! The actor system: spawning, scheduling and shutdown.

use std::thread::{self, JoinHandle};
use std::time::Duration;

use parking_lot::Mutex;

use crate::mailbox::{mailbox, Addr, Envelope};

/// Behaviour of one actor. Runs on a dedicated OS thread; `handle` is
/// invoked for every message in mailbox order, so `&mut self` state needs
/// no further synchronisation — the actor model's usual guarantee.
pub trait Actor: Send + 'static {
    /// The message type this actor consumes.
    type Msg: Send + 'static;

    /// Called once before the first message.
    fn on_start(&mut self, _ctx: &ActorCtx<Self::Msg>) {}

    /// Handles one message.
    fn handle(&mut self, ctx: &ActorCtx<Self::Msg>, msg: Self::Msg);

    /// Called after a stop request, before the thread exits.
    fn on_stop(&mut self) {}
}

/// Per-actor context: the actor's own address plus a stop flag it may set
/// to terminate itself after the current message.
pub struct ActorCtx<M> {
    myself: Addr<M>,
    stop_requested: Mutex<bool>,
}

impl<M> ActorCtx<M> {
    /// The actor's own address (for self-sends or handing out).
    pub fn myself(&self) -> Addr<M> {
        self.myself.clone()
    }

    /// Terminate after the current message.
    pub fn stop_self(&self) {
        *self.stop_requested.lock() = true;
    }

    fn stopping(&self) -> bool {
        *self.stop_requested.lock()
    }
}

/// Per-actor stop closure kept alongside its join handle.
type StopFn = Box<dyn Fn() + Send>;

/// Owns every spawned actor thread; joining happens on
/// [`ActorSystem::shutdown`] (or drop, which also joins).
pub struct ActorSystem {
    handles: Vec<(String, JoinHandle<()>, StopFn)>,
}

impl ActorSystem {
    /// Creates an empty system.
    pub fn new() -> Self {
        Self {
            handles: Vec::new(),
        }
    }

    /// Spawns `actor` on its own thread; returns its address.
    pub fn spawn<A: Actor>(&mut self, name: impl Into<String>, mut actor: A) -> Addr<A::Msg> {
        let name = name.into();
        let (addr, rx) = mailbox::<A::Msg>();
        let ctx_addr = addr.clone();
        let thread_name = name.clone();
        let handle = thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                let ctx = ActorCtx {
                    myself: ctx_addr,
                    stop_requested: Mutex::new(false),
                };
                actor.on_start(&ctx);
                while let Ok(env) = rx.recv() {
                    match env {
                        Envelope::User(m) => {
                            actor.handle(&ctx, m);
                            if ctx.stopping() {
                                break;
                            }
                        }
                        Envelope::Stop => break,
                    }
                }
                actor.on_stop();
            })
            .expect("failed to spawn actor thread");
        let stop_addr = addr.clone();
        self.handles.push((
            name,
            handle,
            Box::new(move || {
                let _ = stop_addr.stop();
            }),
        ));
        addr
    }

    /// Sends `msg` to `addr` after `delay`, from a detached timer thread.
    /// Fire-and-forget: if the actor died meanwhile the send is dropped.
    pub fn send_after<M: Send + 'static>(&self, addr: Addr<M>, msg: M, delay: Duration) {
        thread::spawn(move || {
            thread::sleep(delay);
            let _ = addr.send(msg);
        });
    }

    /// Number of actors spawned (dead or alive).
    pub fn actor_count(&self) -> usize {
        self.handles.len()
    }

    /// Requests every actor to stop and joins all threads.
    pub fn shutdown(&mut self) {
        for (_, _, stop) in &self.handles {
            stop();
        }
        for (name, handle, _) in self.handles.drain(..) {
            if handle.join().is_err() {
                eprintln!("actor `{name}` panicked");
            }
        }
    }
}

impl Default for ActorSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for ActorSystem {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::{unbounded, Sender};

    struct Counter {
        total: u64,
        report: Sender<u64>,
    }

    impl Actor for Counter {
        type Msg = u64;
        fn handle(&mut self, _ctx: &ActorCtx<u64>, msg: u64) {
            self.total += msg;
            let _ = self.report.send(self.total);
        }
    }

    #[test]
    fn actor_processes_messages_in_order() {
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn(
            "counter",
            Counter {
                total: 0,
                report: tx,
            },
        );
        for i in 1..=5 {
            addr.send(i);
        }
        let totals: Vec<u64> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(totals, vec![1, 3, 6, 10, 15]);
        sys.shutdown();
    }

    #[test]
    fn shutdown_joins_and_further_sends_fail() {
        let (tx, _rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn(
            "counter",
            Counter {
                total: 0,
                report: tx,
            },
        );
        sys.shutdown();
        assert!(!addr.send(1));
        assert_eq!(sys.actor_count(), 0);
    }

    struct Stopper {
        report: Sender<&'static str>,
    }
    impl Actor for Stopper {
        type Msg = ();
        fn on_start(&mut self, _ctx: &ActorCtx<()>) {
            let _ = self.report.send("start");
        }
        fn handle(&mut self, ctx: &ActorCtx<()>, _msg: ()) {
            let _ = self.report.send("msg");
            ctx.stop_self();
        }
        fn on_stop(&mut self) {
            let _ = self.report.send("stop");
        }
    }

    #[test]
    fn lifecycle_hooks_and_self_stop() {
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn("stopper", Stopper { report: tx });
        addr.send(());
        assert_eq!(rx.recv().unwrap(), "start");
        assert_eq!(rx.recv().unwrap(), "msg");
        assert_eq!(rx.recv().unwrap(), "stop");
        // Actor thread has exited; sends now fail (may take a moment).
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while addr.send(()) {
            assert!(std::time::Instant::now() < deadline, "actor did not stop");
            thread::sleep(Duration::from_millis(1));
        }
        sys.shutdown();
    }

    #[test]
    fn send_after_delivers_later() {
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn(
            "counter",
            Counter {
                total: 0,
                report: tx,
            },
        );
        sys.send_after(addr, 42, Duration::from_millis(20));
        let v = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(v, 42);
        sys.shutdown();
    }

    #[test]
    fn send_after_timers_fire_in_delay_order() {
        // The runtime backends encode protocol deadlines as send_after
        // timers; a 10 ms timer must beat a 150 ms one regardless of the
        // order they were armed in.
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn(
            "counter",
            Counter {
                total: 0,
                report: tx,
            },
        );
        sys.send_after(addr.clone(), 100, Duration::from_millis(150));
        sys.send_after(addr.clone(), 1, Duration::from_millis(10));
        sys.send_after(addr, 10, Duration::from_millis(60));
        // Counter reports its running total: 1, then 1+10, then 1+10+100.
        let totals: Vec<u64> = (0..3)
            .map(|_| rx.recv_timeout(Duration::from_secs(2)).unwrap())
            .collect();
        assert_eq!(totals, vec![1, 11, 111]);
        sys.shutdown();
    }

    #[test]
    fn shutdown_with_pending_timers_neither_blocks_nor_panics() {
        // Timers outliving the system must not stall shutdown (the timer
        // threads are detached) and their late sends must be dropped
        // silently once the mailbox is gone.
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        let addr = sys.spawn(
            "counter",
            Counter {
                total: 0,
                report: tx,
            },
        );
        sys.send_after(addr.clone(), 7, Duration::from_millis(80));
        let begun = std::time::Instant::now();
        sys.shutdown();
        assert!(
            begun.elapsed() < Duration::from_millis(80),
            "shutdown must not wait for pending timers"
        );
        assert_eq!(sys.actor_count(), 0);
        // The timer fires into a dead mailbox: nothing is delivered and
        // nothing panics.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(200)),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected)
        );
        assert!(!addr.send(1));
    }

    #[test]
    fn actors_can_message_each_other() {
        // Ping-pong between two actors until 10, then report.
        struct Pong {
            peer: Option<Addr<u32>>,
            done: Sender<u32>,
        }
        impl Actor for Pong {
            type Msg = u32;
            fn handle(&mut self, _ctx: &ActorCtx<u32>, msg: u32) {
                if msg >= 10 {
                    let _ = self.done.send(msg);
                } else if let Some(p) = &self.peer {
                    p.send(msg + 1);
                }
            }
        }
        let (tx, rx) = unbounded();
        let mut sys = ActorSystem::new();
        // Two-phase wiring: spawn b first with no peer, then a, then set
        // b's peer via a wiring message… instead keep it simple: a knows b,
        // b knows a through a bootstrap actor. Simplest: spawn b, then a
        // pointing at b, then tell b about a via a control enum. Here we
        // just let `a` both start and finish the rally (peer = b, b's peer
        // = a is unnecessary since a's handler does the increment too).
        let b = sys.spawn(
            "b",
            Pong {
                peer: None,
                done: tx.clone(),
            },
        );
        let a = sys.spawn(
            "a",
            Pong {
                peer: Some(b.clone()),
                done: tx,
            },
        );
        // a increments and forwards to b; b only terminates at >= 10, so
        // drive several rounds through a.
        for i in 0..12 {
            a.send(i);
        }
        let v = rx.recv_timeout(Duration::from_secs(2)).unwrap();
        assert!(v >= 10);
        sys.shutdown();
    }
}
