//! A shared peer directory — the "who is in radio range" analogue for the
//! live runtime.
//!
//! In the DES the simulator derives connectivity from geometry; in the
//! threaded runtime every node actor registers here, and a broadcast is a
//! clone-to-all. Tests can restrict visibility with
//! [`Directory::set_reachable`] to emulate partial connectivity.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::mailbox::Addr;

/// Clonable, thread-safe registry of peer addresses keyed by `u32` node id.
pub struct Directory<M> {
    inner: Arc<RwLock<Inner<M>>>,
}

struct Inner<M> {
    peers: HashMap<u32, Addr<M>>,
    /// Optional reachability restriction: `reachable[a]` is the set of ids
    /// `a` may talk to. Absent key = unrestricted.
    reachable: HashMap<u32, Vec<u32>>,
}

impl<M> Clone for Directory<M> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M: Send + 'static> Directory<M> {
    /// Creates an empty directory.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(RwLock::new(Inner {
                peers: HashMap::new(),
                reachable: HashMap::new(),
            })),
        }
    }

    /// Registers (or replaces) a peer.
    pub fn register(&self, id: u32, addr: Addr<M>) {
        self.inner.write().peers.insert(id, addr);
    }

    /// Removes a peer (e.g. node failure in tests).
    pub fn deregister(&self, id: u32) {
        self.inner.write().peers.remove(&id);
    }

    /// Address of a peer, if registered and reachable from `from`.
    pub fn lookup(&self, from: u32, id: u32) -> Option<Addr<M>> {
        let g = self.inner.read();
        if let Some(allowed) = g.reachable.get(&from) {
            if !allowed.contains(&id) {
                return None;
            }
        }
        g.peers.get(&id).cloned()
    }

    /// Restricts which ids `from` can reach (emulated topology).
    pub fn set_reachable(&self, from: u32, ids: Vec<u32>) {
        self.inner.write().reachable.insert(from, ids);
    }

    /// Sends `msg` to `to` if reachable; returns success.
    pub fn send(&self, from: u32, to: u32, msg: M) -> bool {
        match self.lookup(from, to) {
            Some(addr) => addr.send(msg),
            None => false,
        }
    }

    /// Number of registered peers.
    pub fn len(&self) -> usize {
        self.inner.read().peers.len()
    }

    /// True when no peer is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids currently reachable from `from` (excludes `from` itself).
    pub fn reachable_ids(&self, from: u32) -> Vec<u32> {
        let g = self.inner.read();
        let mut ids: Vec<u32> = match g.reachable.get(&from) {
            Some(allowed) => allowed
                .iter()
                .filter(|id| g.peers.contains_key(id))
                .copied()
                .collect(),
            None => g.peers.keys().copied().collect(),
        };
        ids.retain(|&id| id != from);
        ids.sort_unstable();
        ids
    }
}

impl<M: Clone + Send + 'static> Directory<M> {
    /// Clone-delivers `msg` to every peer reachable from `from` (not to
    /// `from` itself). Returns the number of deliveries.
    pub fn broadcast(&self, from: u32, msg: &M) -> usize {
        let targets = self.reachable_ids(from);
        let mut n = 0;
        for id in targets {
            if self.send(from, id, msg.clone()) {
                n += 1;
            }
        }
        n
    }
}

impl<M: Send + 'static> Default for Directory<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Actor, ActorCtx, ActorSystem};
    use crossbeam::channel::{unbounded, Sender};

    struct Sink {
        id: u32,
        out: Sender<(u32, u32)>,
    }
    impl Actor for Sink {
        type Msg = u32;
        fn handle(&mut self, _ctx: &ActorCtx<u32>, msg: u32) {
            let _ = self.out.send((self.id, msg));
        }
    }

    fn three_sinks() -> (
        ActorSystem,
        Directory<u32>,
        crossbeam::channel::Receiver<(u32, u32)>,
    ) {
        let mut sys = ActorSystem::new();
        let dir = Directory::new();
        let (tx, rx) = unbounded();
        for id in 0..3 {
            let addr = sys.spawn(
                format!("sink-{id}"),
                Sink {
                    id,
                    out: tx.clone(),
                },
            );
            dir.register(id, addr);
        }
        (sys, dir, rx)
    }

    #[test]
    fn broadcast_excludes_sender() {
        let (mut sys, dir, rx) = three_sinks();
        let n = dir.broadcast(0, &42);
        assert_eq!(n, 2);
        let mut got: Vec<u32> = (0..2).map(|_| rx.recv().unwrap().0).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        sys.shutdown();
    }

    #[test]
    fn reachability_restriction_applies() {
        let (mut sys, dir, rx) = three_sinks();
        dir.set_reachable(0, vec![2]);
        assert!(!dir.send(0, 1, 7));
        assert!(dir.send(0, 2, 7));
        assert_eq!(rx.recv().unwrap(), (2, 7));
        assert_eq!(dir.broadcast(0, &9), 1);
        assert_eq!(rx.recv().unwrap(), (2, 9));
        // Node 1 is unrestricted.
        assert_eq!(dir.reachable_ids(1), vec![0, 2]);
        sys.shutdown();
    }

    #[test]
    fn deregister_removes_target() {
        let (mut sys, dir, _rx) = three_sinks();
        assert_eq!(dir.len(), 3);
        dir.deregister(1);
        assert_eq!(dir.len(), 2);
        assert!(!dir.send(0, 1, 5));
        sys.shutdown();
    }
}
