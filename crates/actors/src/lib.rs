//! # qosc-actors — a minimal threaded actor runtime
//!
//! The negotiation protocol of `qosc-core` is written sans-IO; this crate
//! is its *live* transport, complementing the deterministic DES of
//! `qosc-netsim`. Each node becomes an [`Actor`] on its own OS thread with
//! an unbounded crossbeam mailbox; a process-wide [`Directory`] plays the
//! role the radio plays in simulation (lookup = "in range", broadcast =
//! clone-to-all, with an optional reachability restriction for emulating
//! partial topologies).
//!
//! Guarantees: per-actor messages are handled in mailbox (FIFO) order on a
//! single thread, so actor state needs no locks; [`ActorSystem::shutdown`]
//! (and `Drop`) stops and joins every thread, so tests cannot leak threads.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod directory;
mod mailbox;
mod system;

pub use directory::Directory;
pub use mailbox::Addr;
pub use system::{Actor, ActorCtx, ActorSystem};
