//! # qosc-netsim — deterministic ad-hoc wireless network simulator
//!
//! The paper evaluates coalition formation in "a local ad-hoc network
//! \[that\] forms spontaneously, as nodes move in range of each other" (§1).
//! Lacking 2005-era handhelds and radios, this crate substitutes a
//! discrete-event simulator that reproduces exactly what the protocol
//! observes: connectivity (unit-disc radio over 2-D positions), message
//! latency (base MAC latency + serialisation at a bitrate), optional
//! message loss (grey-zone edge model), topology churn (random-waypoint
//! mobility) and node failures.
//!
//! * [`SimTime`] / [`SimDuration`] — integer-µs simulated clock.
//! * [`Point`] / [`Area`] — placement geometry.
//! * [`Mobility`] / [`MobilityState`] — static & random-waypoint walks.
//! * [`RadioModel`] — range, bitrate, latency, loss.
//! * [`NeighbourIndex`] — spatial grid behind neighbour queries and
//!   broadcast fan-out (rebuilt on each mobility tick).
//! * [`Simulator`] + [`NetApp`] — the event loop and the sans-IO protocol
//!   hook; applications send via [`Ctx`]. Payloads ride the heap behind
//!   `Arc<M>`: a broadcast allocates once regardless of fan-out.
//! * [`NetStats`] — message/latency counters for the T1 experiment.
//! * [`FaultPlan`] / [`FaultSampler`] — drop/duplicate/reorder fault
//!   injection, sharing one vocabulary with the `qosc-mc` model checker.
//! * [`PartitionPlan`] / [`PartitionTimeline`] — link-level partition
//!   and heal schedules (scripted or sampled), enforced identically at
//!   delivery time by every backend.
//! * [`ShardedSimulator`] — the same event loop partitioned into spatial
//!   shards and run on worker threads under a conservative-lookahead
//!   horizon protocol (see the [`shard`](crate::ShardedSimulator) docs).
//!
//! Determinism: every node owns a private `ChaCha8Rng` stream seeded from
//! `(run seed, node id)` (placement and mobility draw from a separate
//! control stream), events are totally ordered by `(time, origin shard,
//! sequence)` with keys assigned at schedule time, and the clock is
//! integral — equal seeds give bit-identical traces on the sequential
//! engine and on the sharded engine at any worker count that preserves
//! the run shape (asserted by tests, including a sequential-vs-sharded
//! bit-equality pin at one worker).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod fault;
mod geometry;
mod grid;
mod mobility;
mod radio;
mod shard;
mod sim;
mod stats;
mod time;

pub use fault::{
    DeliveryFault, FaultPlan, FaultSampler, PartitionEvent, PartitionPlan, PartitionTimeline,
    SampledPartitions,
};
pub use geometry::{Area, Point};
pub use grid::NeighbourIndex;
pub use mobility::{Mobility, MobilityState};
pub use radio::RadioModel;
pub use shard::ShardedSimulator;
pub use sim::{Ctx, NetApp, NodeId, SimConfig, Simulator};
pub use stats::NetStats;
pub use time::{SimDuration, SimTime};
