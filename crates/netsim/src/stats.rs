//! Network observability counters.
//!
//! T1 of the experiment suite reports protocol message counts and latency;
//! these counters are maintained by the simulator so harness code never has
//! to instrument the protocol by hand.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Unicast messages submitted.
    pub unicasts_sent: u64,
    /// Unicast messages delivered.
    pub unicasts_delivered: u64,
    /// Unicasts dropped: destination out of range or down at send time.
    pub unicasts_unreachable: u64,
    /// Unicasts dropped by the loss model.
    pub unicasts_lost: u64,
    /// Broadcast messages submitted.
    pub broadcasts_sent: u64,
    /// Per-neighbour broadcast deliveries.
    pub broadcast_deliveries: u64,
    /// Per-neighbour broadcast copies dropped by the loss model.
    pub broadcasts_lost: u64,
    /// Per-neighbour broadcast copies whose target died in flight.
    pub broadcasts_undelivered: u64,
    /// Total payload bytes delivered (unicast + broadcast copies).
    pub bytes_delivered: u64,
    /// Deliveries dropped by the fault layer (not the radio loss model).
    pub faults_dropped: u64,
    /// Deliveries duplicated by the fault layer.
    pub faults_duplicated: u64,
    /// Delivery copies delayed (reordered) by the fault layer.
    pub faults_reordered: u64,
    /// Delivery copies cut by a network partition (link down between
    /// sender and receiver at the delivery timestamp).
    pub partition_cuts: u64,
    /// Sum of delivery latencies (for the mean).
    latency_sum_us: u64,
    /// Number of latency samples.
    latency_samples: u64,
}

impl NetStats {
    /// Records one delivered message's latency and size.
    pub(crate) fn record_delivery(&mut self, latency: SimDuration, bytes: u64) {
        self.latency_sum_us += latency.as_micros();
        self.latency_samples += 1;
        self.bytes_delivered += bytes;
    }

    /// Mean delivery latency over all delivered messages.
    pub fn mean_latency(&self) -> SimDuration {
        self.latency_sum_us
            .checked_div(self.latency_samples)
            .map_or(SimDuration::ZERO, SimDuration::micros)
    }

    /// All messages that entered the medium (unicasts + broadcasts).
    pub fn messages_sent(&self) -> u64 {
        self.unicasts_sent + self.broadcasts_sent
    }

    /// Delivery ratio over unicasts (1.0 when none were sent).
    ///
    /// Only genuine unicast deliveries count: broadcast copies keep their
    /// own counters (`broadcast_deliveries`, `broadcasts_lost`,
    /// `broadcasts_undelivered`), so this ratio is no longer inflated by
    /// broadcast traffic.
    pub fn unicast_delivery_ratio(&self) -> f64 {
        if self.unicasts_sent == 0 {
            1.0
        } else {
            self.unicasts_delivered as f64 / self.unicasts_sent as f64
        }
    }

    /// Adds `other`'s counters into `self`. Every field is a sum (the
    /// mean latency is carried as sum + sample count), so merging the
    /// per-shard counters of a sharded run yields exactly the stats an
    /// equivalent sequential run would have accumulated.
    pub fn merge(&mut self, other: &NetStats) {
        self.unicasts_sent += other.unicasts_sent;
        self.unicasts_delivered += other.unicasts_delivered;
        self.unicasts_unreachable += other.unicasts_unreachable;
        self.unicasts_lost += other.unicasts_lost;
        self.broadcasts_sent += other.broadcasts_sent;
        self.broadcast_deliveries += other.broadcast_deliveries;
        self.broadcasts_lost += other.broadcasts_lost;
        self.broadcasts_undelivered += other.broadcasts_undelivered;
        self.bytes_delivered += other.bytes_delivered;
        self.faults_dropped += other.faults_dropped;
        self.faults_duplicated += other.faults_duplicated;
        self.faults_reordered += other.faults_reordered;
        self.partition_cuts += other.partition_cuts;
        self.latency_sum_us += other.latency_sum_us;
        self.latency_samples += other.latency_samples;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_latency_averages() {
        let mut s = NetStats::default();
        s.record_delivery(SimDuration::millis(2), 10);
        s.record_delivery(SimDuration::millis(4), 20);
        assert_eq!(s.mean_latency(), SimDuration::millis(3));
        assert_eq!(s.bytes_delivered, 30);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = NetStats::default();
        assert_eq!(s.mean_latency(), SimDuration::ZERO);
        assert_eq!(s.unicast_delivery_ratio(), 1.0);
        assert_eq!(s.messages_sent(), 0);
    }

    #[test]
    fn merge_sums_everything_including_latency() {
        let mut a = NetStats {
            unicasts_sent: 2,
            unicasts_delivered: 1,
            broadcast_deliveries: 3,
            broadcasts_lost: 1,
            ..Default::default()
        };
        a.record_delivery(SimDuration::millis(2), 10);
        let mut b = NetStats {
            unicasts_sent: 1,
            unicasts_delivered: 1,
            broadcasts_undelivered: 2,
            ..Default::default()
        };
        b.record_delivery(SimDuration::millis(4), 20);
        a.merge(&b);
        assert_eq!(a.unicasts_sent, 3);
        assert_eq!(a.unicasts_delivered, 2);
        assert_eq!(a.broadcast_deliveries, 3);
        assert_eq!(a.broadcasts_lost, 1);
        assert_eq!(a.broadcasts_undelivered, 2);
        assert_eq!(a.bytes_delivered, 30);
        assert_eq!(a.mean_latency(), SimDuration::millis(3));
    }

    #[test]
    fn delivery_ratio() {
        let s = NetStats {
            unicasts_sent: 4,
            unicasts_delivered: 3,
            ..Default::default()
        };
        assert!((s.unicast_delivery_ratio() - 0.75).abs() < 1e-12);
    }
}
