//! The discrete-event simulator core.
//!
//! [`Simulator`] owns the node table (positions, mobility, liveness), the
//! radio model, a seeded RNG and a totally ordered event heap. Application
//! logic — the negotiation protocol — lives *outside* the simulator behind
//! the sans-IO [`NetApp`] trait: handlers receive events plus a [`Ctx`]
//! through which they emit unicast/broadcast/timer commands. The simulator
//! applies the commands after each handler returns, which keeps handlers
//! free of borrow entanglement and makes every run bit-reproducible for a
//! given seed (events are ordered by `(time, sequence-number)`).
//!
//! # The zero-copy delivery plane
//!
//! Message payloads travel the heap behind [`Arc`]: a broadcast allocates
//! its payload once and every per-recipient delivery event clones the
//! pointer, not the message (`M` needs no `Clone` bound at all). Fan-out
//! targets come from the [`NeighbourIndex`] spatial grid — rebuilt on
//! each mobility tick, extended on `add_node` — so a broadcast scans only
//! the 3×3 cell block around the sender instead of the whole node table.
//! Handlers see borrowed views throughout: `&M` payloads and a [`Ctx`]
//! that reads the live node table directly instead of copying positions
//! per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::fault::{DeliveryFault, FaultPlan, FaultSampler};
use crate::geometry::{Area, Point};
use crate::grid::NeighbourIndex;
use crate::mobility::{Mobility, MobilityState};
use crate::radio::RadioModel;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The plane nodes live on.
    pub area: Area,
    /// Radio/link model shared by all nodes.
    pub radio: RadioModel,
    /// Interval at which node positions are advanced. Mobility between
    /// ticks is piecewise linear; 100 ms is plenty for pedestrian speeds.
    pub mobility_tick: SimDuration,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            area: Area::new(200.0, 200.0),
            radio: RadioModel::default(),
            mobility_tick: SimDuration::millis(100),
            seed: 0,
        }
    }
}

/// Application protocol plugged into the simulator (sans-IO).
pub trait NetApp<M> {
    /// A message from `from` arrived at `at`.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, at: NodeId, from: NodeId, msg: &M);
    /// A timer armed by `at` (token chosen by the app) fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, at: NodeId, token: u64);
    /// `node` was killed (failure injection).
    fn on_node_down(&mut self, _ctx: &mut Ctx<'_, M>, _node: NodeId) {}
    /// `node` came back up.
    fn on_node_up(&mut self, _ctx: &mut Ctx<'_, M>, _node: NodeId) {}
}

enum EventKind<M> {
    Deliver {
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        sent_at: SimTime,
        /// Shared payload: all deliveries of one broadcast point at the
        /// same allocation.
        msg: Arc<M>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    MobilityTick,
    Down(NodeId),
    Up(NodeId),
}

struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct NodeSlot {
    pos: Point,
    mobility: MobilityState,
    up: bool,
}

/// Commands an application handler may emit through [`Ctx`].
enum Command<M> {
    Unicast {
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        msg: Arc<M>,
    },
    Broadcast {
        src: NodeId,
        bytes: u64,
        msg: Arc<M>,
    },
    Timer {
        node: NodeId,
        delay: SimDuration,
        token: u64,
    },
}

/// Handler-side view of the simulation: current time, RNG, connectivity
/// queries, and the command sink. Borrows the live node table — nothing
/// is copied per event.
pub struct Ctx<'a, M> {
    /// Current simulated time.
    pub now: SimTime,
    /// Deterministic per-run RNG, shared with the simulator.
    pub rng: &'a mut ChaCha8Rng,
    cmds: Vec<Command<M>>,
    nodes: &'a [NodeSlot],
    index: &'a NeighbourIndex,
    radio: &'a RadioModel,
}

impl<'a, M> Ctx<'a, M> {
    /// Sends `msg` from `src` to `dst` (single hop). Delivery, loss and
    /// latency are decided by the simulator from the topology at *send*
    /// time. Accepts an owned payload or an already-shared `Arc<M>`.
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64, msg: impl Into<Arc<M>>) {
        self.cmds.push(Command::Unicast {
            src,
            dst,
            bytes,
            msg: msg.into(),
        });
    }

    /// Broadcasts `msg` from `src` to every in-range, live neighbour.
    /// The payload is allocated (or shared) once; every delivery clones
    /// the `Arc`, never the message.
    pub fn broadcast(&mut self, src: NodeId, bytes: u64, msg: impl Into<Arc<M>>) {
        self.cmds.push(Command::Broadcast {
            src,
            bytes,
            msg: msg.into(),
        });
    }

    /// Arms a one-shot timer at `node` after `delay`.
    pub fn timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.cmds.push(Command::Timer { node, delay, token });
    }

    /// Live single-hop neighbours of `node` under the current topology,
    /// in ascending id order (answered from the spatial index).
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return Vec::new();
        };
        if !slot.up {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.index.candidates_into(slot.pos, &mut out);
        out.retain(|&c| {
            c != node && {
                let s = &self.nodes[c.0 as usize];
                s.up && self.radio.in_range(slot.pos.distance(&s.pos))
            }
        });
        out.sort_unstable();
        out
    }

    /// Whether two nodes currently share a live link.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        match (self.nodes.get(a.0 as usize), self.nodes.get(b.0 as usize)) {
            (Some(sa), Some(sb)) => sa.up && sb.up && self.radio.in_range(sa.pos.distance(&sb.pos)),
            _ => false,
        }
    }
}

/// The deterministic discrete-event network simulator.
pub struct Simulator<M> {
    config: SimConfig,
    nodes: Vec<NodeSlot>,
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    rng: ChaCha8Rng,
    stats: NetStats,
    mobility_armed: bool,
    /// Spatial grid over the node positions; rebuilt on every mobility
    /// tick, extended in place by `add_node`. Queries filter liveness
    /// against `nodes`, so up/down events never touch the index.
    index: NeighbourIndex,
    /// Reused per-broadcast target buffer: broadcast fan-out is the
    /// 256-node hot path, and a fresh `Vec` per delivery showed up in
    /// profiles.
    bcast_scratch: Vec<(NodeId, f64)>,
    /// Reused grid-candidate buffer for the same reason.
    cand_scratch: Vec<NodeId>,
    /// Reused handler command buffer (one per event otherwise).
    cmd_scratch: Vec<Command<M>>,
    /// Probabilistic fault injection; `None` keeps the delivery path
    /// bit-identical to a simulator without a fault layer.
    fault: Option<FaultSampler>,
}

impl<M> Simulator<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let index = NeighbourIndex::new(&config.area, config.radio.range_m);
        Self {
            config,
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            stats: NetStats::default(),
            mobility_armed: false,
            index,
            bcast_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            cmd_scratch: Vec::new(),
            fault: None,
        }
    }

    /// Installs a [`FaultPlan`] whose drop/duplicate/reorder faults are
    /// sampled on every subsequent delivery, from a dedicated RNG seeded
    /// by `plan.seed`. A plan that samples nothing uninstalls the layer,
    /// restoring the exact no-fault event stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = plan.samples_anything().then(|| FaultSampler::new(plan));
    }

    /// Decides how many copies of a delivery to schedule and at what
    /// times, consulting the fault sampler if one is installed. Returns
    /// delivery times; an empty result means the message was dropped.
    fn fault_delivery_times(&mut self, base_at: SimTime) -> [Option<SimTime>; 2] {
        let Some(f) = self.fault.as_mut() else {
            return [Some(base_at), None];
        };
        let mut times = match f.on_delivery() {
            DeliveryFault::Drop => {
                self.stats.faults_dropped += 1;
                [None, None]
            }
            DeliveryFault::None => [Some(base_at), None],
            DeliveryFault::Duplicate => {
                self.stats.faults_duplicated += 1;
                [Some(base_at), Some(base_at)]
            }
        };
        for slot in times.iter_mut().flatten() {
            if let Some(jitter) = f.reorder() {
                self.stats.faults_reordered += 1;
                *slot += jitter;
            }
        }
        times
    }

    /// Adds a node at `pos` with the given mobility; returns its id.
    pub fn add_node(&mut self, pos: Point, mobility: Mobility) -> NodeId {
        let pos = self.config.area.clamp(pos);
        let id = NodeId(self.nodes.len() as u32);
        let mobile = !matches!(mobility, Mobility::Static);
        self.nodes.push(NodeSlot {
            pos,
            mobility: MobilityState::new(mobility, pos),
            up: true,
        });
        self.index.insert(id, pos);
        if mobile && !self.mobility_armed {
            self.mobility_armed = true;
            let at = self.now + self.config.mobility_tick;
            self.push(at, EventKind::MobilityTick);
        }
        id
    }

    /// Adds a node at a uniformly random position.
    pub fn add_node_random(&mut self, mobility: Mobility) -> NodeId {
        let p = self.config.area.sample(&mut self.rng);
        self.add_node(p, mobility)
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Option<Point> {
        self.nodes.get(n.0 as usize).map(|s| s.pos)
    }

    /// Liveness of a node.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.nodes.get(n.0 as usize).map(|s| s.up).unwrap_or(false)
    }

    /// Network counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The radio model in force.
    pub fn radio(&self) -> &RadioModel {
        &self.config.radio
    }

    /// Schedules a timer for the application (e.g. to bootstrap it).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedules a failure: `node` goes down at `now + delay`.
    pub fn schedule_down(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.push(at, EventKind::Down(node));
    }

    /// Schedules a recovery: `node` comes back at `now + delay`.
    pub fn schedule_up(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.push(at, EventKind::Up(node));
    }

    /// Live single-hop neighbours of `node`.
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbours_into(node, &mut out);
        out
    }

    /// Buffer-reusing variant of [`Simulator::neighbours`]: clears `out`
    /// and appends the live single-hop neighbours of `node` in ascending
    /// id order. Answered from the [`NeighbourIndex`] — only the 3×3 cell
    /// block around the node is scanned; callers on hot paths keep one
    /// scratch `Vec` alive across queries instead of allocating per call.
    pub fn neighbours_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return;
        };
        if !slot.up {
            return;
        }
        self.index.candidates_into(slot.pos, out);
        out.retain(|&c| {
            c != node && {
                let s = &self.nodes[c.0 as usize];
                s.up && self.config.radio.in_range(slot.pos.distance(&s.pos))
            }
        });
        out.sort_unstable();
    }

    /// All nodes reachable from `node` over live multi-hop paths
    /// (including itself). Used by connectivity statistics.
    pub fn reachable_set(&self, node: NodeId) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut queue = vec![node];
        if node.0 as usize >= n || !self.nodes[node.0 as usize].up {
            return Vec::new();
        }
        seen[node.0 as usize] = true;
        let mut out = Vec::new();
        // One neighbour buffer for the whole traversal instead of a fresh
        // allocation per visited node.
        let mut nbuf = Vec::new();
        while let Some(u) = queue.pop() {
            out.push(u);
            self.neighbours_into(u, &mut nbuf);
            for &v in &nbuf {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push(v);
                }
            }
        }
        out.sort();
        out
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, kind });
    }

    fn apply_commands(&mut self, cmds: &mut Vec<Command<M>>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Unicast {
                    src,
                    dst,
                    bytes,
                    msg,
                } => self.submit_unicast(src, dst, bytes, msg),
                Command::Broadcast { src, bytes, msg } => self.submit_broadcast(src, bytes, msg),
                Command::Timer { node, delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node, token });
                }
            }
        }
    }

    fn submit_unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64, msg: Arc<M>) {
        self.stats.unicasts_sent += 1;
        let (Some(s), Some(d)) = (
            self.nodes.get(src.0 as usize),
            self.nodes.get(dst.0 as usize),
        ) else {
            self.stats.unicasts_unreachable += 1;
            return;
        };
        if !s.up || !d.up {
            self.stats.unicasts_unreachable += 1;
            return;
        }
        let dist = s.pos.distance(&d.pos);
        if !self.config.radio.in_range(dist) {
            self.stats.unicasts_unreachable += 1;
            return;
        }
        if self.config.radio.drops(dist, &mut self.rng) {
            self.stats.unicasts_lost += 1;
            return;
        }
        let latency = self.config.radio.latency(bytes);
        let sent_at = self.now;
        for at in self
            .fault_delivery_times(sent_at + latency)
            .into_iter()
            .flatten()
        {
            self.push(
                at,
                EventKind::Deliver {
                    src,
                    dst,
                    bytes,
                    sent_at,
                    msg: Arc::clone(&msg),
                },
            );
        }
    }

    fn submit_broadcast(&mut self, src: NodeId, bytes: u64, msg: Arc<M>) {
        self.stats.broadcasts_sent += 1;
        let Some(s) = self.nodes.get(src.0 as usize) else {
            return;
        };
        if !s.up {
            return;
        }
        let src_pos = s.pos;
        let latency = self.config.radio.latency(bytes);
        // Candidates from the spatial index, sorted so the per-target
        // loss draws (and delivery sequence numbers) happen in ascending
        // id order — the order the full-table scan used to produce.
        let mut cands = std::mem::take(&mut self.cand_scratch);
        self.index.candidates_into(src_pos, &mut cands);
        cands.sort_unstable();
        let mut targets = std::mem::take(&mut self.bcast_scratch);
        targets.clear();
        targets.extend(
            cands
                .iter()
                .filter(|&&c| c != src && self.nodes[c.0 as usize].up)
                .map(|&c| (c, src_pos.distance(&self.nodes[c.0 as usize].pos)))
                .filter(|(_, dist)| self.config.radio.in_range(*dist)),
        );
        self.cand_scratch = cands;
        for &(dst, dist) in &targets {
            if self.config.radio.drops(dist, &mut self.rng) {
                self.stats.unicasts_lost += 1;
                continue;
            }
            let sent_at = self.now;
            for at in self
                .fault_delivery_times(sent_at + latency)
                .into_iter()
                .flatten()
            {
                self.push(
                    at,
                    EventKind::Deliver {
                        src,
                        dst,
                        bytes,
                        sent_at,
                        // Shared payload: the broadcast's one allocation.
                        msg: Arc::clone(&msg),
                    },
                );
            }
        }
        self.bcast_scratch = targets;
    }

    /// Processes the next event through `app`. Returns the new time, or
    /// `None` when the heap is empty.
    pub fn step<A: NetApp<M>>(&mut self, app: &mut A) -> Option<SimTime> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        // Handlers run against a borrowed Ctx view of the node table and
        // fill the reused command buffer; commands are applied after the
        // handler returns and the buffer goes back into the scratch slot.
        macro_rules! with_ctx {
            (|$ctx:ident| $call:expr) => {{
                let cmds = std::mem::take(&mut self.cmd_scratch);
                let mut $ctx = Ctx {
                    now: self.now,
                    rng: &mut self.rng,
                    cmds,
                    nodes: &self.nodes,
                    index: &self.index,
                    radio: &self.config.radio,
                };
                $call;
                let mut cmds = $ctx.cmds;
                self.apply_commands(&mut cmds);
                self.cmd_scratch = cmds;
            }};
        }
        match ev.kind {
            EventKind::MobilityTick => {
                let dt = self.config.mobility_tick;
                let area = self.config.area;
                for slot in &mut self.nodes {
                    slot.pos = slot.mobility.advance(slot.pos, dt, &area, &mut self.rng);
                }
                // Positions changed: re-bin the spatial index.
                self.index.rebuild(self.nodes.iter().map(|s| s.pos));
                let at = self.now + dt;
                self.push(at, EventKind::MobilityTick);
            }
            EventKind::Deliver {
                src,
                dst,
                bytes,
                sent_at,
                msg,
            } => {
                // The destination may have died in flight.
                if self.is_up(dst) {
                    self.stats.unicasts_delivered += 1;
                    self.stats.broadcast_deliveries += 1;
                    let latency = self.now.since(sent_at);
                    self.stats.record_delivery(latency, bytes);
                    with_ctx!(|ctx| app.on_message(&mut ctx, dst, src, &msg));
                } else {
                    self.stats.unicasts_unreachable += 1;
                }
            }
            EventKind::Timer { node, token } => {
                if self.is_up(node) {
                    with_ctx!(|ctx| app.on_timer(&mut ctx, node, token));
                }
            }
            EventKind::Down(node) => {
                if let Some(s) = self.nodes.get_mut(node.0 as usize) {
                    s.up = false;
                }
                with_ctx!(|ctx| app.on_node_down(&mut ctx, node));
            }
            EventKind::Up(node) => {
                if let Some(s) = self.nodes.get_mut(node.0 as usize) {
                    s.up = true;
                }
                with_ctx!(|ctx| app.on_node_up(&mut ctx, node));
            }
        }
        Some(self.now)
    }

    /// Runs until the heap drains or `deadline` passes. Returns the number
    /// of events processed. The perpetual mobility tick does not count as
    /// progress, so a simulation with only mobile nodes and no protocol
    /// activity still terminates at the deadline.
    pub fn run_until<A: NetApp<M>>(&mut self, app: &mut A, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(&Scheduled { at, .. }) = self.heap.peek().map(|s| s as &Scheduled<M>) {
            if at > deadline {
                self.now = deadline;
                break;
            }
            if self.step(app).is_none() {
                break;
            }
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An app that floods a counter message one hop and records receipts.
    struct Echo {
        received: Vec<(NodeId, NodeId, u32)>,
        reply: bool,
    }

    impl NetApp<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, from: NodeId, msg: &u32) {
            self.received.push((at, from, *msg));
            if self.reply && *msg < 10 {
                ctx.unicast(at, from, 100, *msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, token: u64) {
            if token == 1 {
                ctx.broadcast(at, 100, 0);
            }
        }
    }

    fn two_node_sim(distance: f64) -> (Simulator<u32>, NodeId, NodeId) {
        let mut sim = Simulator::new(SimConfig {
            area: Area::new(1000.0, 1000.0),
            ..Default::default()
        });
        let a = sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        let b = sim.add_node(Point::new(distance, 0.0), Mobility::Static);
        (sim, a, b)
    }

    #[test]
    fn broadcast_reaches_in_range_nodes_only() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        let far = sim.add_node(Point::new(500.0, 0.0), Mobility::Static);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert_eq!(app.received.len(), 1);
        assert_eq!(app.received[0].0 .0, 1); // node b
        assert!(app.received.iter().all(|(at, _, _)| *at != far));
        assert_eq!(sim.stats().broadcasts_sent, 1);
    }

    #[test]
    fn unicast_ping_pong_terminates() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: true,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        // Broadcast 0 → b; replies 1..=10 alternate a/b: 11 receipts total.
        assert_eq!(app.received.len(), 11);
        let msgs: Vec<u32> = app.received.iter().map(|r| r.2).collect();
        assert_eq!(msgs, (0..=10).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_unicast_is_unreachable() {
        let (mut sim, a, b) = two_node_sim(500.0);
        struct Once;
        impl NetApp<u32> for Once {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _: u64) {
                ctx.unicast(at, NodeId(1), 50, 7);
            }
        }
        let _ = b;
        sim.schedule_timer(a, SimDuration::millis(1), 0);
        sim.run_until(&mut Once, SimTime(10_000_000));
        assert_eq!(sim.stats().unicasts_sent, 1);
        assert_eq!(sim.stats().unicasts_unreachable, 1);
        assert_eq!(sim.stats().unicasts_delivered, 0);
    }

    #[test]
    fn dead_node_neither_sends_nor_receives() {
        let (mut sim, a, b) = two_node_sim(30.0);
        sim.schedule_down(b, SimDuration::micros(1));
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert!(app.received.is_empty());
        assert!(!sim.is_up(b));
        assert!(sim.is_up(a));
    }

    #[test]
    fn node_recovery_restores_delivery() {
        let (mut sim, a, b) = two_node_sim(30.0);
        sim.schedule_down(b, SimDuration::micros(1));
        sim.schedule_up(b, SimDuration::millis(5));
        sim.schedule_timer(a, SimDuration::millis(10), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert_eq!(app.received.len(), 1);
    }

    #[test]
    fn in_flight_message_to_dying_node_is_dropped() {
        let (mut sim, a, b) = two_node_sim(30.0);
        // Message latency is ~2 ms; kill b at 1.5 ms, send at 1 ms.
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        sim.schedule_down(b, SimDuration::micros(1500));
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert!(app.received.is_empty());
    }

    #[test]
    fn neighbours_and_reachability() {
        let mut sim: Simulator<u32> = Simulator::new(SimConfig {
            area: Area::new(1000.0, 1000.0),
            radio: RadioModel {
                range_m: 50.0,
                ..Default::default()
            },
            ..Default::default()
        });
        // Chain: a - b - c, with c out of a's direct range.
        let a = sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        let b = sim.add_node(Point::new(40.0, 0.0), Mobility::Static);
        let c = sim.add_node(Point::new(80.0, 0.0), Mobility::Static);
        assert_eq!(sim.neighbours(a), vec![b]);
        assert_eq!(sim.neighbours(b), vec![a, c]);
        assert_eq!(sim.reachable_set(a), vec![a, b, c]);
        sim.schedule_down(b, SimDuration::micros(1));
        struct Noop;
        impl NetApp<u32> for Noop {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u64) {}
        }
        sim.run_until(&mut Noop, SimTime(1_000));
        assert_eq!(sim.reachable_set(a), vec![a]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig {
                seed,
                area: Area::new(100.0, 100.0),
                ..Default::default()
            });
            for _ in 0..10 {
                sim.add_node_random(Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 3.0,
                    pause: SimDuration::millis(500),
                });
            }
            sim.schedule_timer(NodeId(0), SimDuration::millis(1), 1);
            let mut app = Echo {
                received: vec![],
                reply: false,
            };
            sim.run_until(&mut app, SimTime(5_000_000));
            (app.received, sim.stats().clone())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn mobility_changes_topology_over_time() {
        let mut sim: Simulator<u32> = Simulator::new(SimConfig {
            area: Area::new(300.0, 300.0),
            radio: RadioModel {
                range_m: 40.0,
                ..Default::default()
            },
            seed: 5,
            ..Default::default()
        });
        for _ in 0..12 {
            sim.add_node_random(Mobility::RandomWaypoint {
                min_speed: 5.0,
                max_speed: 10.0,
                pause: SimDuration::ZERO,
            });
        }
        struct Noop;
        impl NetApp<u32> for Noop {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u64) {}
        }
        let before: Vec<_> = (0..12).map(|i| sim.neighbours(NodeId(i))).collect();
        sim.run_until(&mut Noop, SimTime(60_000_000)); // 60 s
        let after: Vec<_> = (0..12).map(|i| sim.neighbours(NodeId(i))).collect();
        assert_ne!(before, after, "60 s at 5-10 m/s must change neighbourhoods");
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        sim.schedule_timer(a, SimDuration::secs(100), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        let n = sim.run_until(&mut app, SimTime(1_000_000));
        assert_eq!(n, 0);
        assert_eq!(sim.now(), SimTime(1_000_000));
        assert!(app.received.is_empty());
    }
}
