//! The discrete-event simulator core.
//!
//! [`Simulator`] owns the node table (positions, mobility, liveness), the
//! radio model, a seeded RNG and a totally ordered event heap. Application
//! logic — the negotiation protocol — lives *outside* the simulator behind
//! the sans-IO [`NetApp`] trait: handlers receive events plus a [`Ctx`]
//! through which they emit unicast/broadcast/timer commands. The simulator
//! applies the commands after each handler returns, which keeps handlers
//! free of borrow entanglement and makes every run bit-reproducible for a
//! given seed. Events are totally ordered by `(time, origin shard,
//! sequence number)`; the sequential simulator always stamps shard 0, so
//! its order is the classic `(time, seq)` one, while the sharded engine
//! ([`crate::ShardedSimulator`]) reuses the same key with real shard ids.
//!
//! Randomness is split into **per-node streams**: every node owns a
//! `ChaCha8Rng` seeded from `(run seed, node id)`, and all draws made
//! while handling an event anchored at node *n* — the handler's
//! `ctx.rng`, radio loss draws for the messages it sends, fault-plan
//! sampling — come from node *n*'s stream. A node's randomness therefore
//! depends only on the sequence of events it handles, not on how events
//! at *other* nodes interleave, which is what lets the sharded engine
//! run regions concurrently without perturbing any draw. A separate
//! control RNG (seeded from the run seed) drives placement
//! ([`Simulator::add_node_random`]) and mobility ticks.
//!
//! # The zero-copy delivery plane
//!
//! Message payloads travel the heap behind [`Arc`]: a broadcast allocates
//! its payload once and every per-recipient delivery event clones the
//! pointer, not the message (`M` needs no `Clone` bound at all). Fan-out
//! targets come from the [`NeighbourIndex`] spatial grid — rebuilt on
//! each mobility tick, extended on `add_node` — so a broadcast scans only
//! the 3×3 cell block around the sender instead of the whole node table.
//! Handlers see borrowed views throughout: `&M` payloads and a [`Ctx`]
//! that reads the live node table directly instead of copying positions
//! per event.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::fault::{DeliveryFault, FaultPlan, FaultSampler, PartitionPlan, PartitionTimeline};
use crate::geometry::{Area, Point};
use crate::grid::NeighbourIndex;
use crate::mobility::{Mobility, MobilityState};
use crate::radio::RadioModel;
use crate::stats::NetStats;
use crate::time::{SimDuration, SimTime};

/// Identifier of a simulated node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Derives the seed of a node's private RNG stream from the run seed.
/// Splitmix-style odd multiplier keeps neighbouring node ids far apart
/// in seed space; `node + 1` keeps node 0 off the raw run seed.
pub(crate) fn node_stream_seed(seed: u64, node: u32) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(node) + 1)
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The plane nodes live on.
    pub area: Area,
    /// Radio/link model shared by all nodes.
    pub radio: RadioModel,
    /// Interval at which node positions are advanced. Mobility between
    /// ticks is piecewise linear; 100 ms is plenty for pedestrian speeds.
    pub mobility_tick: SimDuration,
    /// RNG seed; equal seeds give bit-identical runs.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            area: Area::new(200.0, 200.0),
            radio: RadioModel::default(),
            mobility_tick: SimDuration::millis(100),
            seed: 0,
        }
    }
}

/// Application protocol plugged into the simulator (sans-IO).
pub trait NetApp<M> {
    /// A message from `from` arrived at `at`.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, at: NodeId, from: NodeId, msg: &M);
    /// A timer armed by `at` (token chosen by the app) fired.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, at: NodeId, token: u64);
    /// `node` was killed (failure injection).
    fn on_node_down(&mut self, _ctx: &mut Ctx<'_, M>, _node: NodeId) {}
    /// `node` came back up.
    fn on_node_up(&mut self, _ctx: &mut Ctx<'_, M>, _node: NodeId) {}
}

/// Whether a delivery event originated as a unicast or as one copy of a
/// broadcast fan-out; drives which [`NetStats`] counters it touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SendKind {
    Unicast,
    Broadcast,
}

pub(crate) enum EventKind<M> {
    Deliver {
        kind: SendKind,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        sent_at: SimTime,
        /// Shared payload: all deliveries of one broadcast point at the
        /// same allocation.
        msg: Arc<M>,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
    MobilityTick,
    Down(NodeId),
    Up(NodeId),
}

/// A heap entry. Events are totally ordered by `(at, shard, seq)`:
/// `shard` is the shard that *scheduled* the event (always 0 in the
/// sequential simulator) and `seq` its per-shard sequence number, both
/// assigned at push time — so the order is a pure function of what was
/// scheduled, never of heap internals or thread interleaving.
pub(crate) struct Scheduled<M> {
    pub(crate) at: SimTime,
    pub(crate) shard: u32,
    pub(crate) seq: u64,
    pub(crate) kind: EventKind<M>,
}

impl<M> Scheduled<M> {
    /// The event's total-order key.
    pub(crate) fn key(&self) -> (SimTime, u32, u64) {
        (self.at, self.shard, self.seq)
    }
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.key().cmp(&self.key())
    }
}

pub(crate) struct NodeSlot {
    pub(crate) pos: Point,
    pub(crate) mobility: MobilityState,
    pub(crate) up: bool,
}

/// Commands an application handler may emit through [`Ctx`].
pub(crate) enum Command<M> {
    Unicast {
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        msg: Arc<M>,
    },
    Broadcast {
        src: NodeId,
        bytes: u64,
        msg: Arc<M>,
    },
    Timer {
        node: NodeId,
        delay: SimDuration,
        token: u64,
    },
}

/// Handler-side view of the simulation: current time, RNG, connectivity
/// queries, and the command sink. Borrows the live node table — nothing
/// is copied per event.
pub struct Ctx<'a, M> {
    /// Current simulated time.
    pub now: SimTime,
    /// The *anchor node's* deterministic RNG stream: the private
    /// `ChaCha8Rng` of the node this event is anchored at (delivery
    /// destination, timer owner, …), seeded from `(run seed, node id)`.
    /// Draws here depend only on this node's own event sequence.
    pub rng: &'a mut ChaCha8Rng,
    pub(crate) cmds: Vec<Command<M>>,
    pub(crate) nodes: &'a [NodeSlot],
    pub(crate) index: &'a NeighbourIndex,
    pub(crate) radio: &'a RadioModel,
    /// Total-order key of the event being handled.
    pub(crate) key: (SimTime, u32, u64),
}

impl<'a, M> Ctx<'a, M> {
    /// Total-order key `(time, origin shard, sequence)` of the event
    /// currently being handled. Identical seeds give identical keys, on
    /// the sequential and the sharded engine alike (the sequential one
    /// always reports shard 0), so runtimes can tag log entries with it
    /// and later merge per-shard logs into one deterministic order.
    pub fn order_key(&self) -> (SimTime, u32, u64) {
        self.key
    }
    /// Sends `msg` from `src` to `dst` (single hop). Delivery, loss and
    /// latency are decided by the simulator from the topology at *send*
    /// time. Accepts an owned payload or an already-shared `Arc<M>`.
    pub fn unicast(&mut self, src: NodeId, dst: NodeId, bytes: u64, msg: impl Into<Arc<M>>) {
        self.cmds.push(Command::Unicast {
            src,
            dst,
            bytes,
            msg: msg.into(),
        });
    }

    /// Broadcasts `msg` from `src` to every in-range, live neighbour.
    /// The payload is allocated (or shared) once; every delivery clones
    /// the `Arc`, never the message.
    pub fn broadcast(&mut self, src: NodeId, bytes: u64, msg: impl Into<Arc<M>>) {
        self.cmds.push(Command::Broadcast {
            src,
            bytes,
            msg: msg.into(),
        });
    }

    /// Arms a one-shot timer at `node` after `delay`.
    pub fn timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.cmds.push(Command::Timer { node, delay, token });
    }

    /// Live single-hop neighbours of `node` under the current topology,
    /// in ascending id order (answered from the spatial index).
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return Vec::new();
        };
        if !slot.up {
            return Vec::new();
        }
        let mut out = Vec::new();
        self.index.candidates_into(slot.pos, &mut out);
        out.retain(|&c| {
            c != node && {
                let s = &self.nodes[c.0 as usize];
                s.up && self.radio.in_range(slot.pos.distance(&s.pos))
            }
        });
        out.sort_unstable();
        out
    }

    /// Whether two nodes currently share a live link.
    pub fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        match (self.nodes.get(a.0 as usize), self.nodes.get(b.0 as usize)) {
            (Some(sa), Some(sb)) => sa.up && sb.up && self.radio.in_range(sa.pos.distance(&sb.pos)),
            _ => false,
        }
    }
}

/// The deterministic discrete-event network simulator.
pub struct Simulator<M> {
    config: SimConfig,
    nodes: Vec<NodeSlot>,
    heap: BinaryHeap<Scheduled<M>>,
    seq: u64,
    now: SimTime,
    /// Control RNG: node placement and mobility advancement only. All
    /// event-handling draws come from the per-node `streams`.
    rng: ChaCha8Rng,
    /// Per-node RNG streams, indexed by `NodeId`; see the module docs.
    streams: Vec<ChaCha8Rng>,
    stats: NetStats,
    mobility_armed: bool,
    /// Spatial grid over the node positions; rebuilt on every mobility
    /// tick, extended in place by `add_node`. Queries filter liveness
    /// against `nodes`, so up/down events never touch the index.
    index: NeighbourIndex,
    /// Reused per-broadcast target buffer: broadcast fan-out is the
    /// 256-node hot path, and a fresh `Vec` per delivery showed up in
    /// profiles.
    bcast_scratch: Vec<(NodeId, f64)>,
    /// Reused grid-candidate buffer for the same reason.
    cand_scratch: Vec<NodeId>,
    /// Reused handler command buffer (one per event otherwise).
    cmd_scratch: Vec<Command<M>>,
    /// The installed fault plan, if it samples anything; kept so nodes
    /// added after [`Simulator::set_fault_plan`] get samplers too.
    fault_plan: Option<FaultPlan>,
    /// Per-node fault samplers (parallel to `nodes` when a plan is
    /// installed, empty otherwise); each seeded from `(plan.seed, node)`
    /// so fault draws, like all other draws, are independent of how
    /// events at different nodes interleave. An empty table keeps the
    /// delivery path bit-identical to a simulator without a fault layer.
    fault: Vec<FaultSampler>,
    /// Expanded partition schedule, if one cuts anything; consulted at
    /// delivery-planning time as a pure timestamp lookup.
    partition: Option<PartitionTimeline>,
}

impl<M> Simulator<M> {
    /// Creates an empty simulation.
    pub fn new(config: SimConfig) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(config.seed);
        let index = NeighbourIndex::new(&config.area, config.radio.range_m);
        Self {
            config,
            nodes: Vec::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            streams: Vec::new(),
            stats: NetStats::default(),
            mobility_armed: false,
            index,
            bcast_scratch: Vec::new(),
            cand_scratch: Vec::new(),
            cmd_scratch: Vec::new(),
            fault_plan: None,
            fault: Vec::new(),
            partition: None,
        }
    }

    /// Installs a [`FaultPlan`] whose drop/duplicate/reorder faults are
    /// sampled on every subsequent delivery, from per-node sampler
    /// streams seeded by `(plan.seed, node)`. A plan that samples
    /// nothing uninstalls the layer, restoring the exact no-fault event
    /// stream.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan.samples_anything().then_some(plan);
        self.fault = match self.fault_plan {
            Some(p) => (0..self.nodes.len() as u32)
                .map(|n| FaultSampler::for_node(p, n))
                .collect(),
            None => Vec::new(),
        };
    }

    /// Installs a [`PartitionPlan`], expanded against the current node
    /// count: deliveries whose timestamp falls while the link is cut are
    /// discarded. Install after every node has been added. A plan whose
    /// timeline never changes connectivity uninstalls the layer,
    /// restoring the exact no-partition event stream.
    pub fn set_partition_plan(&mut self, plan: &PartitionPlan) {
        let tl = plan.expand(self.nodes.len());
        self.partition = (!tl.is_empty()).then_some(tl);
    }

    /// Adds a node at `pos` with the given mobility; returns its id.
    pub fn add_node(&mut self, pos: Point, mobility: Mobility) -> NodeId {
        let pos = self.config.area.clamp(pos);
        let id = NodeId(self.nodes.len() as u32);
        let mobile = !matches!(mobility, Mobility::Static);
        self.nodes.push(NodeSlot {
            pos,
            mobility: MobilityState::new(mobility, pos),
            up: true,
        });
        self.streams
            .push(ChaCha8Rng::seed_from_u64(node_stream_seed(
                self.config.seed,
                id.0,
            )));
        if let Some(p) = self.fault_plan {
            self.fault.push(FaultSampler::for_node(p, id.0));
        }
        self.index.insert(id, pos);
        if mobile && !self.mobility_armed {
            self.mobility_armed = true;
            let at = self.now + self.config.mobility_tick;
            self.push(at, EventKind::MobilityTick);
        }
        id
    }

    /// Adds a node at a uniformly random position.
    pub fn add_node_random(&mut self, mobility: Mobility) -> NodeId {
        let p = self.config.area.sample(&mut self.rng);
        self.add_node(p, mobility)
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> Option<Point> {
        self.nodes.get(n.0 as usize).map(|s| s.pos)
    }

    /// Liveness of a node.
    pub fn is_up(&self, n: NodeId) -> bool {
        self.nodes.get(n.0 as usize).map(|s| s.up).unwrap_or(false)
    }

    /// Network counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The radio model in force.
    pub fn radio(&self) -> &RadioModel {
        &self.config.radio
    }

    /// Schedules a timer for the application (e.g. to bootstrap it).
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }

    /// Schedules a failure: `node` goes down at `now + delay`.
    pub fn schedule_down(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.push(at, EventKind::Down(node));
    }

    /// Schedules a recovery: `node` comes back at `now + delay`.
    pub fn schedule_up(&mut self, node: NodeId, delay: SimDuration) {
        let at = self.now + delay;
        self.push(at, EventKind::Up(node));
    }

    /// Live single-hop neighbours of `node`.
    pub fn neighbours(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbours_into(node, &mut out);
        out
    }

    /// Buffer-reusing variant of [`Simulator::neighbours`]: clears `out`
    /// and appends the live single-hop neighbours of `node` in ascending
    /// id order. Answered from the [`NeighbourIndex`] — only the 3×3 cell
    /// block around the node is scanned; callers on hot paths keep one
    /// scratch `Vec` alive across queries instead of allocating per call.
    pub fn neighbours_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let Some(slot) = self.nodes.get(node.0 as usize) else {
            return;
        };
        if !slot.up {
            return;
        }
        self.index.candidates_into(slot.pos, out);
        out.retain(|&c| {
            c != node && {
                let s = &self.nodes[c.0 as usize];
                s.up && self.config.radio.in_range(slot.pos.distance(&s.pos))
            }
        });
        out.sort_unstable();
    }

    /// All nodes reachable from `node` over live multi-hop paths
    /// (including itself). Used by connectivity statistics.
    pub fn reachable_set(&self, node: NodeId) -> Vec<NodeId> {
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut queue = vec![node];
        if node.0 as usize >= n || !self.nodes[node.0 as usize].up {
            return Vec::new();
        }
        seen[node.0 as usize] = true;
        let mut out = Vec::new();
        // One neighbour buffer for the whole traversal instead of a fresh
        // allocation per visited node.
        let mut nbuf = Vec::new();
        while let Some(u) = queue.pop() {
            out.push(u);
            self.neighbours_into(u, &mut nbuf);
            for &v in &nbuf {
                if !seen[v.0 as usize] {
                    seen[v.0 as usize] = true;
                    queue.push(v);
                }
            }
        }
        out.sort();
        out
    }

    fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled {
            at,
            shard: 0,
            seq,
            kind,
        });
    }

    /// Applies the commands a handler emitted. `anchor` is the node the
    /// handled event was anchored at: its RNG stream and fault sampler
    /// make every draw the sends below need.
    fn apply_commands(&mut self, anchor: NodeId, cmds: &mut Vec<Command<M>>) {
        for cmd in cmds.drain(..) {
            match cmd {
                Command::Unicast {
                    src,
                    dst,
                    bytes,
                    msg,
                } => self.submit_unicast(anchor, src, dst, bytes, msg),
                Command::Broadcast { src, bytes, msg } => {
                    self.submit_broadcast(anchor, src, bytes, msg);
                }
                Command::Timer { node, delay, token } => {
                    let at = self.now + delay;
                    self.push(at, EventKind::Timer { node, token });
                }
            }
        }
    }

    fn submit_unicast(
        &mut self,
        anchor: NodeId,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        msg: Arc<M>,
    ) {
        let times = Medium {
            radio: &self.config.radio,
            nodes: &self.nodes,
            index: &self.index,
            cuts: self.partition.as_ref(),
        }
        .plan_unicast(
            &mut Draws {
                rng: &mut self.streams[anchor.0 as usize],
                fault: self.fault.get_mut(anchor.0 as usize),
                stats: &mut self.stats,
            },
            src,
            dst,
            self.now,
            bytes,
        );
        let sent_at = self.now;
        for at in times.into_iter().flatten() {
            self.push(
                at,
                EventKind::Deliver {
                    kind: SendKind::Unicast,
                    src,
                    dst,
                    bytes,
                    sent_at,
                    msg: Arc::clone(&msg),
                },
            );
        }
    }

    fn submit_broadcast(&mut self, anchor: NodeId, src: NodeId, bytes: u64, msg: Arc<M>) {
        let mut cands = std::mem::take(&mut self.cand_scratch);
        let mut targets = std::mem::take(&mut self.bcast_scratch);
        Medium {
            radio: &self.config.radio,
            nodes: &self.nodes,
            index: &self.index,
            cuts: self.partition.as_ref(),
        }
        .collect_broadcast_targets(&mut self.stats, src, &mut cands, &mut targets);
        self.cand_scratch = cands;
        let latency = self.config.radio.latency(bytes);
        let sent_at = self.now;
        for &(dst, dist) in &targets {
            let times = Medium {
                radio: &self.config.radio,
                nodes: &self.nodes,
                index: &self.index,
                cuts: self.partition.as_ref(),
            }
            .plan_broadcast_copy(
                &mut Draws {
                    rng: &mut self.streams[anchor.0 as usize],
                    fault: self.fault.get_mut(anchor.0 as usize),
                    stats: &mut self.stats,
                },
                src,
                dst,
                dist,
                sent_at + latency,
            );
            for at in times.into_iter().flatten() {
                self.push(
                    at,
                    EventKind::Deliver {
                        kind: SendKind::Broadcast,
                        src,
                        dst,
                        bytes,
                        sent_at,
                        // Shared payload: the broadcast's one allocation.
                        msg: Arc::clone(&msg),
                    },
                );
            }
        }
        self.bcast_scratch = targets;
    }

    /// Processes the next event through `app`. Returns the new time, or
    /// `None` when the heap is empty.
    pub fn step<A: NetApp<M>>(&mut self, app: &mut A) -> Option<SimTime> {
        let ev = self.heap.pop()?;
        self.now = ev.at;
        let key = ev.key();
        // Handlers run against a borrowed Ctx view of the node table and
        // fill the reused command buffer; commands are applied after the
        // handler returns and the buffer goes back into the scratch slot.
        // `$anchor` is the node the event is anchored at: its RNG stream
        // backs `ctx.rng` and every draw the emitted commands need.
        macro_rules! with_ctx {
            ($anchor:expr, |$ctx:ident| $call:expr) => {{
                let anchor: NodeId = $anchor;
                let cmds = std::mem::take(&mut self.cmd_scratch);
                let mut $ctx = Ctx {
                    now: self.now,
                    rng: &mut self.streams[anchor.0 as usize],
                    cmds,
                    nodes: &self.nodes,
                    index: &self.index,
                    radio: &self.config.radio,
                    key,
                };
                $call;
                let mut cmds = $ctx.cmds;
                self.apply_commands(anchor, &mut cmds);
                self.cmd_scratch = cmds;
            }};
        }
        match ev.kind {
            EventKind::MobilityTick => {
                let dt = self.config.mobility_tick;
                let area = self.config.area;
                for slot in &mut self.nodes {
                    slot.pos = slot.mobility.advance(slot.pos, dt, &area, &mut self.rng);
                }
                // Positions changed: re-bin the spatial index.
                self.index.rebuild(self.nodes.iter().map(|s| s.pos));
                let at = self.now + dt;
                self.push(at, EventKind::MobilityTick);
            }
            EventKind::Deliver {
                kind,
                src,
                dst,
                bytes,
                sent_at,
                msg,
            } => {
                // The destination may have died in flight.
                if self.is_up(dst) {
                    match kind {
                        SendKind::Unicast => self.stats.unicasts_delivered += 1,
                        SendKind::Broadcast => self.stats.broadcast_deliveries += 1,
                    }
                    let latency = self.now.since(sent_at);
                    self.stats.record_delivery(latency, bytes);
                    with_ctx!(dst, |ctx| app.on_message(&mut ctx, dst, src, &msg));
                } else {
                    match kind {
                        SendKind::Unicast => self.stats.unicasts_unreachable += 1,
                        SendKind::Broadcast => self.stats.broadcasts_undelivered += 1,
                    }
                }
            }
            EventKind::Timer { node, token } => {
                if self.is_up(node) {
                    with_ctx!(node, |ctx| app.on_timer(&mut ctx, node, token));
                }
            }
            EventKind::Down(node) => {
                if node.0 as usize >= self.nodes.len() {
                    return Some(self.now);
                }
                self.nodes[node.0 as usize].up = false;
                with_ctx!(node, |ctx| app.on_node_down(&mut ctx, node));
            }
            EventKind::Up(node) => {
                if node.0 as usize >= self.nodes.len() {
                    return Some(self.now);
                }
                self.nodes[node.0 as usize].up = true;
                with_ctx!(node, |ctx| app.on_node_up(&mut ctx, node));
            }
        }
        Some(self.now)
    }

    /// Runs until the heap drains or `deadline` passes. Returns the number
    /// of events processed. The perpetual mobility tick does not count as
    /// progress, so a simulation with only mobile nodes and no protocol
    /// activity still terminates at the deadline.
    pub fn run_until<A: NetApp<M>>(&mut self, app: &mut A, deadline: SimTime) -> u64 {
        let mut n = 0;
        while let Some(&Scheduled { at, .. }) = self.heap.peek().map(|s| s as &Scheduled<M>) {
            if at > deadline {
                self.now = deadline;
                break;
            }
            if self.step(app).is_none() {
                break;
            }
            n += 1;
        }
        n
    }
}

/// Immutable view of the transmission medium — radio model, node table,
/// spatial index — shared by the send paths of the sequential and the
/// sharded engine. Having exactly one implementation of the loss / fault
/// / fan-out decisions is what makes the workers=1 bit-equality pin
/// between the two engines meaningful rather than aspirational.
pub(crate) struct Medium<'a> {
    pub(crate) radio: &'a RadioModel,
    pub(crate) nodes: &'a [NodeSlot],
    pub(crate) index: &'a NeighbourIndex,
    /// Expanded partition schedule, if one is installed. Consulted as a
    /// pure timestamp lookup *after* all loss/fault draws, so installing
    /// a schedule that never cuts is bit-identical to none at all.
    pub(crate) cuts: Option<&'a PartitionTimeline>,
}

/// Mutable draw state of the node anchoring the current event: its RNG
/// stream, its fault sampler (if a plan is installed), and the stats
/// block the engine is accumulating into.
pub(crate) struct Draws<'a> {
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) fault: Option<&'a mut FaultSampler>,
    pub(crate) stats: &'a mut NetStats,
}

impl Medium<'_> {
    /// Decides one unicast send at `now`: bumps the sent/unreachable/
    /// lost counters, draws loss and faults from `draws`, and returns
    /// the delivery times to schedule (none when the message dies).
    pub(crate) fn plan_unicast(
        &self,
        draws: &mut Draws<'_>,
        src: NodeId,
        dst: NodeId,
        now: SimTime,
        bytes: u64,
    ) -> [Option<SimTime>; 2] {
        draws.stats.unicasts_sent += 1;
        let (Some(s), Some(d)) = (
            self.nodes.get(src.0 as usize),
            self.nodes.get(dst.0 as usize),
        ) else {
            draws.stats.unicasts_unreachable += 1;
            return [None, None];
        };
        if !s.up || !d.up {
            draws.stats.unicasts_unreachable += 1;
            return [None, None];
        }
        let dist = s.pos.distance(&d.pos);
        if !self.radio.in_range(dist) {
            draws.stats.unicasts_unreachable += 1;
            return [None, None];
        }
        if self.radio.drops(dist, draws.rng) {
            draws.stats.unicasts_lost += 1;
            return [None, None];
        }
        let times = fault_times(
            draws.fault.as_deref_mut(),
            now + self.radio.latency(bytes),
            draws.stats,
        );
        self.cut_partitioned(times, src, dst, draws.stats)
    }

    /// Resolves a broadcast's fan-out: bumps `broadcasts_sent`, then
    /// fills `targets` with the `(neighbour, distance)` pairs the copies
    /// go to, in ascending id order (the order the per-target loss draws
    /// and sequence numbers are consumed in). `cands` is the reused grid
    /// candidate buffer. Leaves `targets` empty when `src` is missing or
    /// down.
    pub(crate) fn collect_broadcast_targets(
        &self,
        stats: &mut NetStats,
        src: NodeId,
        cands: &mut Vec<NodeId>,
        targets: &mut Vec<(NodeId, f64)>,
    ) {
        stats.broadcasts_sent += 1;
        targets.clear();
        let Some(s) = self.nodes.get(src.0 as usize) else {
            return;
        };
        if !s.up {
            return;
        }
        let src_pos = s.pos;
        self.index.candidates_into(src_pos, cands);
        cands.sort_unstable();
        targets.extend(
            cands
                .iter()
                .filter(|&&c| c != src && self.nodes[c.0 as usize].up)
                .map(|&c| (c, src_pos.distance(&self.nodes[c.0 as usize].pos)))
                .filter(|(_, dist)| self.radio.in_range(*dist)),
        );
    }

    /// Decides one broadcast copy from `src` to `dst` at distance `dist`:
    /// draws loss (a lost copy counts as `broadcasts_lost`) and faults,
    /// returning the delivery times to schedule.
    pub(crate) fn plan_broadcast_copy(
        &self,
        draws: &mut Draws<'_>,
        src: NodeId,
        dst: NodeId,
        dist: f64,
        base_at: SimTime,
    ) -> [Option<SimTime>; 2] {
        if self.radio.drops(dist, draws.rng) {
            draws.stats.broadcasts_lost += 1;
            return [None, None];
        }
        let times = fault_times(draws.fault.as_deref_mut(), base_at, draws.stats);
        self.cut_partitioned(times, src, dst, draws.stats)
    }

    /// Applies the partition schedule to planned delivery copies: any
    /// copy whose *delivery* timestamp falls while `src ↔ dst` is cut is
    /// discarded (counted in `partition_cuts`). Runs after every random
    /// draw and consumes none itself, so the sequential DES, the sharded
    /// DES, and the direct runtime cut exactly the same links on the
    /// same draws.
    fn cut_partitioned(
        &self,
        mut times: [Option<SimTime>; 2],
        src: NodeId,
        dst: NodeId,
        stats: &mut NetStats,
    ) -> [Option<SimTime>; 2] {
        let Some(cuts) = self.cuts else {
            return times;
        };
        for slot in &mut times {
            if slot.is_some_and(|at| cuts.cuts_at(at, src.0, dst.0)) {
                *slot = None;
                stats.partition_cuts += 1;
            }
        }
        times
    }
}

/// Expands one nominal delivery into its post-fault copies: `[None,
/// None]` when dropped, one time normally, two on duplication, each
/// possibly jittered by reordering. No sampler installed means exactly
/// one on-time copy and zero randomness consumed.
pub(crate) fn fault_times(
    fault: Option<&mut FaultSampler>,
    base_at: SimTime,
    stats: &mut NetStats,
) -> [Option<SimTime>; 2] {
    let Some(f) = fault else {
        return [Some(base_at), None];
    };
    let mut times = match f.on_delivery() {
        DeliveryFault::Drop => {
            stats.faults_dropped += 1;
            [None, None]
        }
        DeliveryFault::None => [Some(base_at), None],
        DeliveryFault::Duplicate => {
            stats.faults_duplicated += 1;
            [Some(base_at), Some(base_at)]
        }
    };
    for slot in times.iter_mut().flatten() {
        if let Some(jitter) = f.reorder() {
            stats.faults_reordered += 1;
            *slot += jitter;
        }
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An app that floods a counter message one hop and records receipts.
    struct Echo {
        received: Vec<(NodeId, NodeId, u32)>,
        reply: bool,
    }

    impl NetApp<u32> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, from: NodeId, msg: &u32) {
            self.received.push((at, from, *msg));
            if self.reply && *msg < 10 {
                ctx.unicast(at, from, 100, *msg + 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, token: u64) {
            if token == 1 {
                ctx.broadcast(at, 100, 0);
            }
        }
    }

    fn two_node_sim(distance: f64) -> (Simulator<u32>, NodeId, NodeId) {
        let mut sim = Simulator::new(SimConfig {
            area: Area::new(1000.0, 1000.0),
            ..Default::default()
        });
        let a = sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        let b = sim.add_node(Point::new(distance, 0.0), Mobility::Static);
        (sim, a, b)
    }

    #[test]
    fn broadcast_reaches_in_range_nodes_only() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        let far = sim.add_node(Point::new(500.0, 0.0), Mobility::Static);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert_eq!(app.received.len(), 1);
        assert_eq!(app.received[0].0 .0, 1); // node b
        assert!(app.received.iter().all(|(at, _, _)| *at != far));
        assert_eq!(sim.stats().broadcasts_sent, 1);
    }

    #[test]
    fn unicast_ping_pong_terminates() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: true,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        // Broadcast 0 → b; replies 1..=10 alternate a/b: 11 receipts total.
        assert_eq!(app.received.len(), 11);
        let msgs: Vec<u32> = app.received.iter().map(|r| r.2).collect();
        assert_eq!(msgs, (0..=10).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_range_unicast_is_unreachable() {
        let (mut sim, a, b) = two_node_sim(500.0);
        struct Once;
        impl NetApp<u32> for Once {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _: u64) {
                ctx.unicast(at, NodeId(1), 50, 7);
            }
        }
        let _ = b;
        sim.schedule_timer(a, SimDuration::millis(1), 0);
        sim.run_until(&mut Once, SimTime(10_000_000));
        assert_eq!(sim.stats().unicasts_sent, 1);
        assert_eq!(sim.stats().unicasts_unreachable, 1);
        assert_eq!(sim.stats().unicasts_delivered, 0);
    }

    #[test]
    fn dead_node_neither_sends_nor_receives() {
        let (mut sim, a, b) = two_node_sim(30.0);
        sim.schedule_down(b, SimDuration::micros(1));
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert!(app.received.is_empty());
        assert!(!sim.is_up(b));
        assert!(sim.is_up(a));
    }

    #[test]
    fn node_recovery_restores_delivery() {
        let (mut sim, a, b) = two_node_sim(30.0);
        sim.schedule_down(b, SimDuration::micros(1));
        sim.schedule_up(b, SimDuration::millis(5));
        sim.schedule_timer(a, SimDuration::millis(10), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert_eq!(app.received.len(), 1);
    }

    #[test]
    fn in_flight_message_to_dying_node_is_dropped() {
        let (mut sim, a, b) = two_node_sim(30.0);
        // Message latency is ~2 ms; kill b at 1.5 ms, send at 1 ms.
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        sim.schedule_down(b, SimDuration::micros(1500));
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        assert!(app.received.is_empty());
    }

    #[test]
    fn neighbours_and_reachability() {
        let mut sim: Simulator<u32> = Simulator::new(SimConfig {
            area: Area::new(1000.0, 1000.0),
            radio: RadioModel {
                range_m: 50.0,
                ..Default::default()
            },
            ..Default::default()
        });
        // Chain: a - b - c, with c out of a's direct range.
        let a = sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        let b = sim.add_node(Point::new(40.0, 0.0), Mobility::Static);
        let c = sim.add_node(Point::new(80.0, 0.0), Mobility::Static);
        assert_eq!(sim.neighbours(a), vec![b]);
        assert_eq!(sim.neighbours(b), vec![a, c]);
        assert_eq!(sim.reachable_set(a), vec![a, b, c]);
        sim.schedule_down(b, SimDuration::micros(1));
        struct Noop;
        impl NetApp<u32> for Noop {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u64) {}
        }
        sim.run_until(&mut Noop, SimTime(1_000));
        assert_eq!(sim.reachable_set(a), vec![a]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut sim = Simulator::new(SimConfig {
                seed,
                area: Area::new(100.0, 100.0),
                ..Default::default()
            });
            for _ in 0..10 {
                sim.add_node_random(Mobility::RandomWaypoint {
                    min_speed: 1.0,
                    max_speed: 3.0,
                    pause: SimDuration::millis(500),
                });
            }
            sim.schedule_timer(NodeId(0), SimDuration::millis(1), 1);
            let mut app = Echo {
                received: vec![],
                reply: false,
            };
            sim.run_until(&mut app, SimTime(5_000_000));
            (app.received, sim.stats().clone())
        };
        assert_eq!(run(99), run(99));
    }

    #[test]
    fn mobility_changes_topology_over_time() {
        let mut sim: Simulator<u32> = Simulator::new(SimConfig {
            area: Area::new(300.0, 300.0),
            radio: RadioModel {
                range_m: 40.0,
                ..Default::default()
            },
            seed: 5,
            ..Default::default()
        });
        for _ in 0..12 {
            sim.add_node_random(Mobility::RandomWaypoint {
                min_speed: 5.0,
                max_speed: 10.0,
                pause: SimDuration::ZERO,
            });
        }
        struct Noop;
        impl NetApp<u32> for Noop {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: u64) {}
        }
        let before: Vec<_> = (0..12).map(|i| sim.neighbours(NodeId(i))).collect();
        sim.run_until(&mut Noop, SimTime(60_000_000)); // 60 s
        let after: Vec<_> = (0..12).map(|i| sim.neighbours(NodeId(i))).collect();
        assert_ne!(before, after, "60 s at 5-10 m/s must change neighbourhoods");
    }

    #[test]
    fn broadcast_deliveries_do_not_inflate_unicast_counters() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        let stats = sim.stats();
        assert_eq!(stats.broadcast_deliveries, 1);
        assert_eq!(stats.unicasts_sent, 0);
        assert_eq!(stats.unicasts_delivered, 0);
        assert_eq!(stats.unicast_delivery_ratio(), 1.0);
    }

    #[test]
    fn unicast_deliveries_do_not_touch_broadcast_counters() {
        let (mut sim, a, b) = two_node_sim(30.0);
        struct Once;
        impl NetApp<u32> for Once {
            fn on_message(&mut self, _: &mut Ctx<'_, u32>, _: NodeId, _: NodeId, _: &u32) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, at: NodeId, _: u64) {
                ctx.unicast(at, NodeId(1), 50, 7);
            }
        }
        let _ = b;
        sim.schedule_timer(a, SimDuration::millis(1), 0);
        sim.run_until(&mut Once, SimTime(10_000_000));
        let stats = sim.stats();
        assert_eq!(stats.unicasts_delivered, 1);
        assert_eq!(stats.broadcast_deliveries, 0);
        assert_eq!(stats.broadcasts_sent, 0);
        assert!((stats.unicast_delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn broadcast_copy_to_node_dying_in_flight_counts_undelivered() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        // Broadcast latency is ~2 ms; kill b at 1.5 ms, send at 1 ms.
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        sim.schedule_down(NodeId(1), SimDuration::micros(1500));
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        let stats = sim.stats();
        assert_eq!(stats.broadcasts_undelivered, 1);
        assert_eq!(stats.unicasts_unreachable, 0);
        assert_eq!(stats.broadcast_deliveries, 0);
    }

    #[test]
    fn lossy_broadcast_counts_broadcasts_lost() {
        let mut sim: Simulator<u32> = Simulator::new(SimConfig {
            area: Area::new(1000.0, 1000.0),
            radio: RadioModel {
                loss_floor: 1.0,
                loss_at_edge: 1.0,
                ..Default::default()
            },
            ..Default::default()
        });
        let a = sim.add_node(Point::new(0.0, 0.0), Mobility::Static);
        sim.add_node(Point::new(10.0, 0.0), Mobility::Static);
        sim.schedule_timer(a, SimDuration::millis(1), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        sim.run_until(&mut app, SimTime(10_000_000));
        let stats = sim.stats();
        assert_eq!(stats.broadcasts_lost, 1);
        assert_eq!(stats.unicasts_lost, 0);
        assert_eq!(stats.broadcast_deliveries, 0);
    }

    #[test]
    fn run_until_respects_deadline() {
        let (mut sim, a, _b) = two_node_sim(30.0);
        sim.schedule_timer(a, SimDuration::secs(100), 1);
        let mut app = Echo {
            received: vec![],
            reply: false,
        };
        let n = sim.run_until(&mut app, SimTime(1_000_000));
        assert_eq!(n, 0);
        assert_eq!(sim.now(), SimTime(1_000_000));
        assert!(app.received.is_empty());
    }
}
