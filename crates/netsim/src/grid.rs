//! Spatial neighbour index for the broadcast/neighbour hot path.
//!
//! [`NeighbourIndex`] is a uniform grid over the simulation area whose
//! cell edge is at least the radio range, so every node within range of a
//! point lies in the 3×3 block of cells around it. Broadcast fan-out and
//! neighbour queries scan those cells instead of the whole node table —
//! O(local density) instead of O(N) per query at 256+ nodes.
//!
//! Rebuild discipline: positions only change on the simulator's mobility
//! tick, so the index is rebuilt exactly there (and extended in place by
//! `insert` when a node is added). Liveness is *not* tracked here — cells
//! hold every node regardless of up/down state and callers filter against
//! the node table, which keeps failure injection from invalidating the
//! index.

use crate::geometry::{Area, Point};
use crate::sim::NodeId;

/// Grids never grow beyond this many cells per axis: past a few thousand
/// cells the per-query constant dominates any candidate-set savings for
/// the population sizes the simulator targets.
const MAX_CELLS_PER_AXIS: usize = 64;

/// Uniform spatial grid answering "who could be within radio range of
/// this point" with a 3×3 cell scan.
#[derive(Debug, Clone)]
pub struct NeighbourIndex {
    cell_w: f64,
    cell_h: f64,
    cols: usize,
    rows: usize,
    cells: Vec<Vec<NodeId>>,
}

impl NeighbourIndex {
    /// Builds an empty index over `area` for a radio disc of `range`
    /// metres. A non-finite or non-positive range degrades to a single
    /// cell (every query scans everything — correct, just unindexed).
    pub fn new(area: &Area, range: f64) -> Self {
        let axis = |extent: f64| -> usize {
            if !range.is_finite() || range <= 0.0 || extent <= range {
                1
            } else {
                // floor keeps cell edge ≥ range, which is what makes the
                // 3×3 query block sufficient.
                ((extent / range).floor() as usize).clamp(1, MAX_CELLS_PER_AXIS)
            }
        };
        let cols = axis(area.width);
        let rows = axis(area.height);
        Self {
            cell_w: if cols > 1 {
                area.width / cols as f64
            } else {
                f64::INFINITY
            },
            cell_h: if rows > 1 {
                area.height / rows as f64
            } else {
                f64::INFINITY
            },
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let clamp = |coord: f64, cell: f64, n: usize| -> usize {
            if cell.is_finite() {
                ((coord.max(0.0) / cell) as usize).min(n - 1)
            } else {
                0
            }
        };
        (
            clamp(p.x, self.cell_w, self.cols),
            clamp(p.y, self.cell_h, self.rows),
        )
    }

    /// Adds one node at `pos` without rebuilding (new nodes only —
    /// a *moved* node requires [`NeighbourIndex::rebuild`]).
    pub fn insert(&mut self, id: NodeId, pos: Point) {
        let (cx, cy) = self.cell_of(pos);
        self.cells[cy * self.cols + cx].push(id);
    }

    /// Re-bins every node from scratch. Called on each mobility tick;
    /// node ids are the positions' indexes.
    pub fn rebuild(&mut self, positions: impl IntoIterator<Item = Point>) {
        for c in &mut self.cells {
            c.clear();
        }
        for (i, pos) in positions.into_iter().enumerate() {
            self.insert(NodeId(i as u32), pos);
        }
    }

    /// Clears `out` and appends every node whose cell is within one cell
    /// of `pos`'s — a superset of the nodes within radio range (including
    /// the querying node itself). Callers filter by exact distance,
    /// liveness and identity, and sort if they need id order.
    pub fn candidates_into(&self, pos: Point, out: &mut Vec<NodeId>) {
        out.clear();
        let (cx, cy) = self.cell_of(pos);
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.rows - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                out.extend_from_slice(&self.cells[gy * self.cols + gx]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(n: usize, area: &Area, seed: u64) -> Vec<Point> {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| area.sample(&mut rng)).collect()
    }

    /// Brute-force in-range set ⊆ grid candidate set, for every node.
    #[test]
    fn candidates_cover_the_in_range_set() {
        let area = Area::new(500.0, 300.0);
        let range = 50.0;
        let pts = positions(200, &area, 9);
        let mut index = NeighbourIndex::new(&area, range);
        index.rebuild(pts.iter().copied());
        let mut cand = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            index.candidates_into(*p, &mut cand);
            for (j, q) in pts.iter().enumerate() {
                if p.distance(q) <= range {
                    assert!(
                        cand.contains(&NodeId(j as u32)),
                        "node {j} in range of {i} but missing from candidates"
                    );
                }
            }
        }
    }

    #[test]
    fn insert_matches_rebuild() {
        let area = Area::new(400.0, 400.0);
        let pts = positions(64, &area, 3);
        let mut incremental = NeighbourIndex::new(&area, 50.0);
        for (i, p) in pts.iter().enumerate() {
            incremental.insert(NodeId(i as u32), *p);
        }
        let mut rebuilt = NeighbourIndex::new(&area, 50.0);
        rebuilt.rebuild(pts.iter().copied());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for p in &pts {
            incremental.candidates_into(*p, &mut a);
            rebuilt.candidates_into(*p, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn degenerate_ranges_fall_back_to_one_cell() {
        for range in [f64::INFINITY, 0.0, -1.0, f64::NAN] {
            let area = Area::new(100.0, 100.0);
            let mut index = NeighbourIndex::new(&area, range);
            index.rebuild([Point::new(0.0, 0.0), Point::new(99.0, 99.0)]);
            let mut cand = Vec::new();
            index.candidates_into(Point::new(50.0, 50.0), &mut cand);
            assert_eq!(cand, vec![NodeId(0), NodeId(1)]);
        }
    }

    #[test]
    fn range_larger_than_area_still_sees_everyone() {
        // 30 m square, 50 m range: the dense-preset shape.
        let area = Area::new(30.0, 30.0);
        let pts = positions(32, &area, 1);
        let mut index = NeighbourIndex::new(&area, 50.0);
        index.rebuild(pts.iter().copied());
        let mut cand = Vec::new();
        index.candidates_into(pts[0], &mut cand);
        assert_eq!(cand.len(), 32);
    }
}
