//! Simulated time.
//!
//! [`SimTime`] is an absolute instant in simulated microseconds;
//! [`SimDuration`] a non-negative span. Microsecond resolution comfortably
//! covers both radio latencies (hundreds of µs) and negotiation deadlines
//! (hundreds of ms) without floating-point drift — the event queue orders
//! on integers only, which keeps runs bit-reproducible.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// An absolute simulated instant (µs since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A non-negative span of simulated time (µs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since epoch, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From whole microseconds.
    pub const fn micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From whole milliseconds.
    pub const fn millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From whole seconds.
    pub const fn secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From fractional seconds (rounds to µs; negative clamps to zero).
    pub fn secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// Microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::millis(1), SimDuration::micros(1000));
        assert_eq!(SimDuration::secs(1), SimDuration::millis(1000));
        assert_eq!(SimDuration::secs_f64(0.5), SimDuration::micros(500_000));
        assert_eq!(SimDuration::secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::millis(3);
        assert_eq!(t.as_micros(), 3000);
        assert_eq!(
            (t + SimDuration::millis(2)).since(t),
            SimDuration::millis(2)
        );
        // Saturating difference never panics.
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
        assert_eq!(t - SimTime::ZERO, SimDuration::millis(3));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime(5) < SimTime(6));
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
    }
}
